//! End-to-end integration tests: the whole stack from fleet generation
//! through training to evaluation, checking the paper-shaped outcomes
//! the reproduction stands on.

use std::sync::OnceLock;

use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig, SplitStrategy};
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};

fn fleet() -> &'static SimulatedFleet {
    static FLEET: OnceLock<SimulatedFleet> = OnceLock::new();
    FLEET.get_or_init(|| SimulatedFleet::generate(&FleetConfig::tiny(31)))
}

#[test]
fn sfwb_beats_smart_only_on_fpr() {
    let sfwb = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest))
        .run(fleet())
        .expect("sfwb run");
    let smart = Mfpa::new(MfpaConfig::new(FeatureGroup::S, Algorithm::RandomForest))
        .run(fleet())
        .expect("smart run");
    // The paper's headline: the multidimensional model dominates the
    // SMART-only model on false alarms without losing recall.
    assert!(
        sfwb.drive.fpr() < smart.drive.fpr(),
        "SFWB FPR {} !< S FPR {}",
        sfwb.drive.fpr(),
        smart.drive.fpr()
    );
    assert!(sfwb.drive.tpr() >= smart.drive.tpr() - 0.02);
    assert!(sfwb.drive.auc > 0.95, "SFWB AUC {}", sfwb.drive.auc);
}

#[test]
fn every_feature_group_runs() {
    for group in FeatureGroup::ALL {
        let r = Mfpa::new(MfpaConfig::new(group, Algorithm::RandomForest))
            .run(fleet())
            .unwrap_or_else(|e| panic!("{group} failed: {e}"));
        assert!(r.n_test_drives > 0, "{group}");
        assert!(r.drive.auc > 0.5, "{group} AUC {}", r.drive.auc);
    }
}

#[test]
fn every_algorithm_runs_on_sfwb() {
    for algo in Algorithm::LEARNED {
        let mut cfg = MfpaConfig::new(FeatureGroup::Sfwb, algo);
        // Keep the NN tiny for test speed.
        cfg.window.seq_len = 3;
        let r = Mfpa::new(cfg)
            .run(fleet())
            .unwrap_or_else(|e| panic!("{algo} failed: {e}"));
        assert!(r.drive.auc > 0.6, "{algo} AUC {}", r.drive.auc);
    }
}

#[test]
fn pipeline_is_deterministic() {
    let mk = || {
        Mfpa::new(MfpaConfig::new(FeatureGroup::Sfb, Algorithm::RandomForest).with_seed(5))
            .run(fleet())
            .expect("run")
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.drive.cm, b.drive.cm);
    assert_eq!(a.sample.cm, b.sample.cm);
    assert_eq!(a.drive.auc, b.drive.auc);
}

#[test]
fn report_counts_are_consistent() {
    let r = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest))
        .run(fleet())
        .expect("run");
    let drive_total = r.drive.cm.total() as usize;
    assert_eq!(drive_total, r.n_test_drives);
    assert_eq!(
        (r.drive.cm.tp + r.drive.cm.fn_) as usize,
        r.n_failed_test_drives
    );
    let sample_total = r.sample.cm.total() as usize;
    assert_eq!(sample_total, r.timings.n_test_rows);
}

#[test]
fn vendor_restricted_runs_are_subsets() {
    let all = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest))
        .run(fleet())
        .expect("all");
    let one = Mfpa::new(
        MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest)
            .with_vendor(mfpa_telemetry::Vendor::I),
    )
    .run(fleet())
    .expect("vendor I");
    assert!(one.n_test_drives < all.n_test_drives);
}

#[test]
fn lookahead_degrades_recall() {
    // Fig 19's claim, at sample granularity: predicting farther ahead of
    // the failure is harder. Drive-level TPR can't show it on a tiny
    // fleet — pushing the lookahead out also pushes failing drives'
    // positive windows out of the test range, so the drive denominator
    // shrinks and recall over the survivors stays saturated at 1.0.
    // Per-sample recall keeps a fixed-population denominator.
    let run = |n: i64| {
        Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest).with_lookahead(n))
            .run(fleet())
            .unwrap_or_else(|e| panic!("N={n}: {e}"))
    };
    let near = run(0);
    let far = run(10);
    let pos = |r: &mfpa_core::EvalReport| r.sample.cm.tp + r.sample.cm.fn_;
    assert!(pos(&near) > 100, "N=0 positives {}", pos(&near));
    assert!(pos(&far) > 100, "N=10 positives {}", pos(&far));
    assert!(
        far.sample.tpr() < near.sample.tpr(),
        "N=10 sample TPR {} !< N=0 sample TPR {}",
        far.sample.tpr(),
        near.sample.tpr()
    );
}

#[test]
fn ratio_split_and_thresholds_work() {
    let cfg = MfpaConfig::new(FeatureGroup::Sf, Algorithm::Gbdt)
        .with_split(SplitStrategy::Ratio {
            test_fraction: 0.25,
        })
        .with_threshold(0.7);
    let r = Mfpa::new(cfg).run(fleet()).expect("run");
    assert!(r.timings.n_test_rows > 0);
}

#[test]
fn vendor_threshold_detector_is_a_weak_floor() {
    let r = Mfpa::new(MfpaConfig::new(FeatureGroup::S, Algorithm::VendorThreshold))
        .run(fleet())
        .expect("threshold run");
    // The vendor detector catches some drive-level failures at near-zero
    // FPR, but far fewer than the learned models (§II: 3-10% TPR).
    assert!(r.drive.fpr() < 0.02, "FPR {}", r.drive.fpr());
    assert!(
        r.drive.tpr() < 0.8,
        "TPR {} suspiciously high",
        r.drive.tpr()
    );
}

#[test]
fn training_on_later_window_still_works() {
    let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
    let prepared = mfpa.prepare(fleet()).expect("prepare");
    let horizon = fleet().config().horizon_days;
    let train = prepared.rows_in_window(0, horizon / 2);
    let test = prepared.rows_in_window(horizon / 2, horizon);
    let trained = mfpa.train_rows(&prepared, &train).expect("train");
    let r = trained
        .evaluate_rows(&prepared, &test, "late window")
        .expect("eval");
    assert!(r.n_test_drives > 0);
    assert!(r.drive.auc > 0.7, "AUC {}", r.drive.auc);
}
