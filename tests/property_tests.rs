//! Property-based tests (proptest) over the core data structures and
//! algorithms: metrics, splits, samplers, encoders, preprocessing and
//! day arithmetic.

use std::collections::HashSet;

use mfpa_core::deploy::DriveMonitor;
use mfpa_core::preprocess::{preprocess, PreprocessConfig};
use mfpa_core::sanitize::sanitize;
use mfpa_core::SanitizeConfig;
use mfpa_dataset::cv::{folds_chronologically_sound, kfold, time_series_cv};
use mfpa_dataset::split::{is_chronologically_sound, ratio_split, timepoint_split};
use mfpa_dataset::{LabelEncoder, Matrix, RandomUnderSampler, StandardScaler};
use mfpa_ml::metrics::{auc, roc_curve, ConfusionMatrix};
use mfpa_telemetry::{
    DailyRecord, DayStamp, DriveHistory, DriveModel, FirmwareVersion, SerialNumber, SmartAttr,
    SmartValues, Vendor,
};
use proptest::prelude::*;

/// Decodes one drawn corruption code into a SMART value: mostly
/// plausible counters, with NaNs, sentinels, zero pages, negatives and
/// absurd magnitudes mixed in — the fault menu of
/// `mfpa_fleetsim::faults` plus worse.
fn smart_value(code: u8, day: i64, ix: usize) -> f64 {
    match code {
        0 => f64::NAN,
        1 => 0.0,
        2 => u32::MAX as f64,
        3 => u64::MAX as f64,
        4 => -3.5,
        5 => 1e19,
        _ => (day.max(0) as f64) * 2.0 + ix as f64,
    }
}

/// Builds an arbitrary (possibly heavily corrupted) emission stream
/// from drawn day stamps and per-attribute corruption codes.
fn corrupt_stream(days: &[i64], codes: &[Vec<u8>]) -> Vec<DailyRecord> {
    days.iter()
        .zip(codes)
        .map(|(&day, rec_codes)| {
            let mut values = [0.0f64; 16];
            for (ix, v) in values.iter_mut().enumerate() {
                *v = smart_value(rec_codes[ix], day, ix);
            }
            DailyRecord {
                day: DayStamp::new(day),
                smart: SmartValues::from_array(values),
                firmware: FirmwareVersion::new(Vendor::II, 1),
                w_counts: [0; 9],
                b_counts: [0; 23],
            }
        })
        .collect()
}

/// Canonical NaN-proof form of a record stream (`f64::to_bits`).
fn record_bits(records: &[DailyRecord]) -> Vec<(i64, Vec<u64>)> {
    records
        .iter()
        .map(|r| {
            (
                r.day - DayStamp::new(0),
                r.smart.as_slice().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

proptest! {
    #[test]
    fn auc_is_bounded_and_flip_symmetric(
        scores in prop::collection::vec(0.0f64..1.0, 2..60),
        labels in prop::collection::vec(any::<bool>(), 2..60),
    ) {
        let n = scores.len().min(labels.len());
        let scores = &scores[..n];
        let labels = &labels[..n];
        let a = auc(labels, scores);
        prop_assert!((0.0..=1.0).contains(&a));
        // Negating scores mirrors the AUC around 0.5 (when both classes
        // are present).
        let n_pos = labels.iter().filter(|&&l| l).count();
        if n_pos > 0 && n_pos < n {
            let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
            prop_assert!((auc(labels, &neg) - (1.0 - a)).abs() < 1e-9);
        }
    }

    #[test]
    fn confusion_matrix_rates_consistent(
        y_true in prop::collection::vec(any::<bool>(), 1..80),
        y_pred in prop::collection::vec(any::<bool>(), 1..80),
    ) {
        let n = y_true.len().min(y_pred.len());
        let cm = ConfusionMatrix::from_labels(&y_true[..n], &y_pred[..n]);
        prop_assert_eq!(cm.total() as usize, n);
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.tpr()));
        prop_assert!((0.0..=1.0).contains(&cm.fpr()));
        // TPR + miss rate over positives is exactly 1 when positives exist.
        if cm.tp + cm.fn_ > 0 {
            let miss = cm.fn_ as f64 / (cm.tp + cm.fn_) as f64;
            prop_assert!((cm.tpr() + miss - 1.0).abs() < 1e-12);
        }
        // PDR is between FPR-share and TPR-share bounds.
        prop_assert!(cm.pdr() <= 1.0);
    }

    #[test]
    fn roc_curve_monotone(
        scores in prop::collection::vec(0.0f64..1.0, 2..50),
        labels in prop::collection::vec(any::<bool>(), 2..50),
    ) {
        let n = scores.len().min(labels.len());
        let curve = roc_curve(&labels[..n], &scores[..n]);
        prop_assert_eq!(curve.first().copied(), Some((0.0, 0.0)));
        for w in curve.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 - 1e-12);
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn ratio_split_partitions_indices(n in 2usize..200, frac in 0.05f64..0.95, seed: u64) {
        let s = ratio_split(n, frac, seed).unwrap();
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        prop_assert!(!s.train.is_empty() && !s.test.is_empty());
    }

    #[test]
    fn timepoint_split_is_always_sound(
        times in prop::collection::vec(-500i64..500, 1..120),
        boundary in -500i64..500,
    ) {
        let s = timepoint_split(&times, boundary);
        prop_assert!(is_chronologically_sound(&s, &times));
        prop_assert_eq!(s.train.len() + s.test.len(), times.len());
    }

    #[test]
    fn time_series_cv_never_trains_on_future(
        times in prop::collection::vec(0i64..300, 8..100),
        k in 1usize..4,
    ) {
        prop_assume!(times.len() >= 2 * k);
        let folds = time_series_cv(&times, k).unwrap();
        prop_assert_eq!(folds.len(), k);
        prop_assert!(folds_chronologically_sound(&folds, &times));
    }

    #[test]
    fn kfold_validation_sets_partition(n in 4usize..120, k in 2usize..4, seed: u64) {
        prop_assume!(k <= n);
        let folds = kfold(n, k, seed).unwrap();
        let mut seen: Vec<usize> = folds.iter().flat_map(|f| f.validate.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn undersampler_respects_ratio(
        pos in 1usize..40,
        neg in 0usize..400,
        ratio in 0.5f64..8.0,
        seed: u64,
    ) {
        let mut labels = vec![true; pos];
        labels.extend(vec![false; neg]);
        let kept = RandomUnderSampler::new(ratio, seed).unwrap().sample(&labels);
        let kept_pos = kept.iter().filter(|&&i| labels[i]).count();
        let kept_neg = kept.len() - kept_pos;
        prop_assert_eq!(kept_pos, pos);
        let want = ((pos as f64) * ratio).round() as usize;
        prop_assert_eq!(kept_neg, want.min(neg));
        // No duplicates.
        let unique: HashSet<usize> = kept.iter().copied().collect();
        prop_assert_eq!(unique.len(), kept.len());
    }

    #[test]
    fn label_encoder_roundtrips(values in prop::collection::vec("[a-z]{1,6}", 1..50)) {
        let mut enc = LabelEncoder::new();
        let codes = enc.fit_transform(values.clone());
        for (v, c) in values.iter().zip(&codes) {
            prop_assert_eq!(enc.transform(v), Some(*c));
            prop_assert_eq!(enc.inverse(*c), Some(v));
        }
        prop_assert!(enc.n_categories() <= values.len());
    }

    #[test]
    fn scaler_output_is_centred(rows in prop::collection::vec(
        prop::collection::vec(-1e6f64..1e6, 3), 2..40,
    )) {
        let x = Matrix::from_rows(&rows).unwrap();
        let (_, scaled) = StandardScaler::fit_transform(&x).unwrap();
        for c in 0..3 {
            let col = scaled.column(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "column {} mean {}", c, mean);
        }
    }

    #[test]
    fn day_stamp_arithmetic(base in -10_000i64..10_000, delta in -5_000i64..5_000) {
        let d = DayStamp::new(base);
        prop_assert_eq!((d + delta) - delta, d);
        prop_assert_eq!((d + delta) - d, delta);
        prop_assert_eq!(d.days_before(delta), d + (-delta));
    }

    #[test]
    fn preprocess_never_emits_long_gaps(
        day_set in prop::collection::btree_set(0i64..120, 1..60),
        drop_gap in 4i64..15,
        fill_gap in 0i64..4,
    ) {
        let days: Vec<i64> = day_set.into_iter().collect();
        let records: Vec<DailyRecord> = days.iter().map(|&d| DailyRecord {
            day: DayStamp::new(d),
            smart: SmartValues::default(),
            firmware: FirmwareVersion::new(Vendor::II, 1),
            w_counts: [0; 9],
            b_counts: [0; 23],
        }).collect();
        let history = DriveHistory::new(
            SerialNumber::new(Vendor::II, 1), DriveModel::ALL[3], records,
        );
        let cfg = PreprocessConfig {
            drop_gap,
            fill_gap,
            min_len: 1,
            cumulative_events: true,
        };
        if let Some(s) = preprocess(&history, &FirmwareVersion::new(Vendor::II, 1), &cfg) {
            // Surviving series: ascending days, no gap ≥ drop_gap, and
            // every gap ≤ fill_gap has been filled (so no gap in
            // (1, fill_gap] remains).
            for w in s.days.windows(2) {
                let gap = w[1] - w[0];
                prop_assert!(gap >= 1);
                prop_assert!(gap < drop_gap);
                prop_assert!(gap == 1 || gap > fill_gap);
            }
            prop_assert_eq!(s.days.len(), s.rows.len());
        }
    }

    #[test]
    fn sanitize_output_days_strictly_ascend_and_values_are_clean(
        days in prop::collection::vec(-20i64..120, 1..50),
        codes in prop::collection::vec(prop::collection::vec(0u8..10, 16usize), 50usize),
    ) {
        let raw = corrupt_stream(&days, &codes);
        let cfg = SanitizeConfig::default();
        let serial = SerialNumber::new(Vendor::II, 9);
        let (history, report) = sanitize(serial, DriveModel::ALL[2], &raw, &cfg);
        prop_assert_eq!(report.input_records, raw.len());
        prop_assert!(report.kept_records <= raw.len());
        for w in history.records().windows(2) {
            prop_assert!(w[1].day > w[0].day, "days must strictly ascend");
        }
        for r in history.records() {
            for (attr, v) in r.smart.iter() {
                prop_assert!(v.is_finite(), "{attr:?} = {v} not finite");
                prop_assert!(v >= 0.0, "{attr:?} = {v} negative");
                prop_assert!(v < cfg.sentinel_ceiling, "{attr:?} = {v} sentinel");
            }
        }
    }

    #[test]
    fn sanitize_repairs_cumulative_columns_to_monotone(
        days in prop::collection::vec(0i64..90, 2..40),
        codes in prop::collection::vec(prop::collection::vec(0u8..12, 16usize), 40usize),
    ) {
        let raw = corrupt_stream(&days, &codes);
        let (history, _) = sanitize(
            SerialNumber::new(Vendor::I, 4),
            DriveModel::ALL[0],
            &raw,
            &SanitizeConfig::default(),
        );
        for attr in SmartAttr::ALL {
            if !attr.is_cumulative() {
                continue;
            }
            for w in history.records().windows(2) {
                let (a, b) = (w[0].smart.get(attr), w[1].smart.get(attr));
                prop_assert!(b >= a, "{attr:?} decreased: {a} -> {b}");
            }
        }
    }

    #[test]
    fn sanitize_is_idempotent_on_arbitrary_streams(
        days in prop::collection::vec(-10i64..100, 1..40),
        codes in prop::collection::vec(prop::collection::vec(0u8..10, 16usize), 40usize),
    ) {
        let raw = corrupt_stream(&days, &codes);
        let cfg = SanitizeConfig::default();
        let serial = SerialNumber::new(Vendor::III, 7);
        let model = DriveModel::ALL[1];
        let (once, _) = sanitize(serial, model, &raw, &cfg);
        let (twice, second) = sanitize(serial, model, once.records(), &cfg);
        prop_assert_eq!(record_bits(once.records()), record_bits(twice.records()));
        prop_assert!(second.is_clean(), "second pass must be a no-op: {second:?}");
    }

    #[test]
    fn drive_monitor_never_panics_on_arbitrary_streams(
        days in prop::collection::vec(-20i64..120, 1..50),
        codes in prop::collection::vec(prop::collection::vec(0u8..8, 16usize), 50usize),
    ) {
        let raw = corrupt_stream(&days, &codes);
        let mut monitor = DriveMonitor::new(
            SerialNumber::new(Vendor::II, 11),
            FirmwareVersion::new(Vendor::II, 1),
        );
        for record in &raw {
            if let Ok(row) = monitor.ingest(record) {
                prop_assert!(row.iter().all(|v| v.is_finite()), "row has non-finite values");
            }
        }
        prop_assert_eq!(monitor.sanitize_report().input_records, raw.len());
    }
}
