//! Contract tests every `Classifier` implementation must satisfy:
//! probability bounds, determinism per seed, error behaviour on
//! degenerate inputs, and minimum skill on a separable problem.

use mfpa_dataset::Matrix;
use mfpa_ml::metrics::auc;
use mfpa_ml::{Classifier, CnnLstm, GaussianNb, Gbdt, LinearSvm, MlError, RandomForest};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A linearly separable 2-cluster problem in 6 dimensions (divisible by
/// the CNN_LSTM's 3-step × 2-feature window).
fn separable(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for i in 0..n {
        let pos = i % 2 == 0;
        let c = if pos { 1.5 } else { -1.5 };
        rows.push((0..6).map(|_| c + rng.random_range(-1.0..1.0)).collect());
        y.push(pos);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn all_models() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(GaussianNb::new()),
        Box::new(LinearSvm::new(1e-3, 15).with_seed(1)),
        Box::new(RandomForest::new(30, 8).with_seed(1)),
        Box::new(Gbdt::new(40, 0.2, 3).with_seed(1)),
        Box::new(CnnLstm::new(3, 2).with_epochs(20).with_seed(1)),
    ]
}

#[test]
fn all_models_learn_a_separable_problem() {
    let (x, y) = separable(160, 3);
    for mut model in all_models() {
        model
            .fit(&x, &y)
            .unwrap_or_else(|e| panic!("{} fit: {e}", model.name()));
        let p = model.predict_proba(&x).unwrap();
        let a = auc(&y, &p);
        assert!(a > 0.9, "{} AUC {a}", model.name());
    }
}

#[test]
fn probabilities_stay_in_unit_interval() {
    let (x, y) = separable(80, 5);
    // Extreme inputs should not break probability bounds.
    let extreme = Matrix::from_rows(&[vec![1e9; 6], vec![-1e9; 6], vec![0.0; 6]]).unwrap();
    for mut model in all_models() {
        model.fit(&x, &y).unwrap();
        for p in model.predict_proba(&extreme).unwrap() {
            assert!((0.0..=1.0).contains(&p), "{}: p = {p}", model.name());
            assert!(p.is_finite(), "{}: non-finite", model.name());
        }
    }
}

#[test]
fn unfitted_models_error_not_panic() {
    let x = Matrix::from_rows(&[vec![0.0; 6]]).unwrap();
    for model in all_models() {
        assert_eq!(
            model.predict_proba(&x).unwrap_err(),
            MlError::NotFitted,
            "{}",
            model.name()
        );
    }
}

#[test]
fn feature_width_mismatch_rejected() {
    let (x, y) = separable(40, 7);
    let narrow = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
    for mut model in all_models() {
        model.fit(&x, &y).unwrap();
        assert!(
            matches!(
                model.predict_proba(&narrow),
                Err(MlError::FeatureMismatch { .. })
            ),
            "{}",
            model.name()
        );
    }
}

#[test]
fn single_class_training_rejected() {
    let x = Matrix::from_rows(&[vec![0.0; 6], vec![1.0; 6]]).unwrap();
    for mut model in all_models() {
        assert_eq!(
            model.fit(&x, &[true, true]).unwrap_err(),
            MlError::SingleClass,
            "{}",
            model.name()
        );
    }
}

#[test]
fn label_length_mismatch_rejected() {
    let x = Matrix::from_rows(&[vec![0.0; 6], vec![1.0; 6]]).unwrap();
    for mut model in all_models() {
        assert!(
            matches!(model.fit(&x, &[true]), Err(MlError::LabelMismatch { .. })),
            "{}",
            model.name()
        );
    }
}

#[test]
fn fit_twice_replaces_the_model() {
    let (x1, y1) = separable(100, 11);
    // Second task: inverted labels — predictions must flip.
    let y2: Vec<bool> = y1.iter().map(|&l| !l).collect();
    for mut model in all_models() {
        model.fit(&x1, &y1).unwrap();
        let a1 = auc(&y1, &model.predict_proba(&x1).unwrap());
        model.fit(&x1, &y2).unwrap();
        let a2 = auc(&y2, &model.predict_proba(&x1).unwrap());
        assert!(a1 > 0.85 && a2 > 0.85, "{}: {a1} / {a2}", model.name());
    }
}

#[test]
fn seeded_models_are_reproducible() {
    let (x, y) = separable(90, 13);
    type Builder = Box<dyn Fn() -> Box<dyn Classifier>>;
    let builders: Vec<(&str, Builder)> = vec![
        (
            "svm",
            Box::new(|| Box::new(LinearSvm::new(1e-3, 10).with_seed(9))),
        ),
        (
            "rf",
            Box::new(|| Box::new(RandomForest::new(20, 6).with_seed(9))),
        ),
        (
            "gbdt",
            Box::new(|| Box::new(Gbdt::new(20, 0.2, 3).with_subsample(0.7).with_seed(9))),
        ),
        (
            "cnn_lstm",
            Box::new(|| Box::new(CnnLstm::new(3, 2).with_epochs(4).with_seed(9))),
        ),
    ];
    for (name, build) in builders {
        let mut a = build();
        let mut b = build();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(
            a.predict_proba(&x).unwrap(),
            b.predict_proba(&x).unwrap(),
            "{name}"
        );
    }
}

#[test]
fn models_roundtrip_through_serde() {
    // The paper pushes model updates to clients every two months — the
    // fitted models must survive serialisation exactly.
    let (x, y) = separable(80, 17);

    let mut rf = RandomForest::new(15, 6).with_seed(4);
    rf.fit(&x, &y).unwrap();
    let json = serde_json::to_string(&rf).expect("serialise rf");
    let back: RandomForest = serde_json::from_str(&json).expect("deserialise rf");
    assert_eq!(
        rf.predict_proba(&x).unwrap(),
        back.predict_proba(&x).unwrap()
    );

    let mut gbdt = Gbdt::new(10, 0.3, 3).with_seed(4);
    gbdt.fit(&x, &y).unwrap();
    let json = serde_json::to_string(&gbdt).unwrap();
    let back: Gbdt = serde_json::from_str(&json).unwrap();
    assert_eq!(
        gbdt.predict_proba(&x).unwrap(),
        back.predict_proba(&x).unwrap()
    );

    let mut nb = GaussianNb::new();
    nb.fit(&x, &y).unwrap();
    let back: GaussianNb = serde_json::from_str(&serde_json::to_string(&nb).unwrap()).unwrap();
    assert_eq!(
        nb.predict_proba(&x).unwrap(),
        back.predict_proba(&x).unwrap()
    );

    let mut lr = mfpa_ml::LogisticRegression::new(1e-3, 50);
    lr.fit(&x, &y).unwrap();
    let back: mfpa_ml::LogisticRegression =
        serde_json::from_str(&serde_json::to_string(&lr).unwrap()).unwrap();
    assert_eq!(
        lr.predict_proba(&x).unwrap(),
        back.predict_proba(&x).unwrap()
    );

    let mut nn = CnnLstm::new(3, 2).with_epochs(3).with_seed(4);
    nn.fit(&x, &y).unwrap();
    let back: CnnLstm = serde_json::from_str(&serde_json::to_string(&nn).unwrap()).unwrap();
    assert_eq!(
        nn.predict_proba(&x).unwrap(),
        back.predict_proba(&x).unwrap()
    );
}

#[test]
fn logistic_regression_meets_the_contract_too() {
    let (x, y) = separable(120, 19);
    let mut lr = mfpa_ml::LogisticRegression::new(1e-4, 150);
    lr.fit(&x, &y).unwrap();
    let p = lr.predict_proba(&x).unwrap();
    assert!(auc(&y, &p) > 0.9);
    assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
}
