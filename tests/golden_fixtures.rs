//! Golden-fixture regression tests: end-to-end outputs pinned to JSON
//! fixtures under `tests/golden/`.
//!
//! Each test serialises a fixed-seed result to a `serde_json::Value` and
//! compares it against the checked-in fixture. After an *intended*
//! behaviour change, regenerate the fixtures with
//!
//! ```text
//! MFPA_BLESS=1 cargo test --test golden_fixtures
//! ```
//!
//! and review the fixture diff like any other code change. An unintended
//! diff is a regression: these tests exist to catch silent drift in the
//! simulator, the sanitizer and the evaluation pipeline that
//! unit-level assertions are too coarse to notice.

use std::path::PathBuf;

use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::{FaultConfig, FleetConfig, SimulatedFleet};
use serde_json::json;

/// Compares `actual` against `tests/golden/<name>.json`, or rewrites the
/// fixture when `MFPA_BLESS` is set. A missing fixture fails with the
/// bless instruction rather than silently passing.
fn check_golden(name: &str, actual: &serde_json::Value) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"));
    let text = serde_json::to_string(actual).expect("serialise fixture");
    if std::env::var_os("MFPA_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir golden");
        std::fs::write(&path, text).expect("write fixture");
        return;
    }
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             run `MFPA_BLESS=1 cargo test --test golden_fixtures` to create it",
            path.display()
        )
    });
    let expected: serde_json::Value = serde_json::from_str(&stored).expect("fixture parses");
    // Round-trip the in-memory value through its own text so numeric
    // variants (U64 vs I64) compare canonically against the parsed
    // fixture.
    let actual: serde_json::Value = serde_json::from_str(&text).expect("round-trip");
    assert_eq!(
        &actual, &expected,
        "output drifted from tests/golden/{name}.json — if the change is \
         intended, re-bless with MFPA_BLESS=1 and review the fixture diff"
    );
}

/// Fleet-level shape of a fixed-seed simulation: populations, failures,
/// tickets and per-vendor stats. Catches any change to the serial
/// lottery, the hazard model or the planning pass.
#[test]
fn golden_fleet_summary() {
    let fleet = SimulatedFleet::generate(&FleetConfig::tiny(31));
    let vendors: Vec<serde_json::Value> = fleet
        .stats()
        .iter()
        .map(|v| {
            json!({
                "vendor": format!("{:?}", v.vendor),
                "population": v.population,
                "failures": v.failures,
            })
        })
        .collect();
    let n_records: usize = fleet.drives().iter().map(|d| d.raw_records().len()).sum();
    let first = &fleet.drives()[0];
    check_golden(
        "fleet_summary",
        &json!({
            "n_drives": fleet.drives().len(),
            "n_failures": fleet.failures().len(),
            "n_tickets": fleet.tickets().len(),
            "n_raw_records": n_records,
            "vendors": vendors,
            "first_drive": {
                "serial_id": first.serial().id(),
                "vendor": format!("{:?}", first.vendor()),
                "n_records": first.raw_records().len(),
            },
        }),
    );
}

/// Sanitizer accounting over a fault-injected fleet: every quarantine
/// and repair counter, pinned exactly. Catches drift in both the fault
/// injector and the sanitization stage.
#[test]
fn golden_sanitize_counters() {
    let fleet =
        SimulatedFleet::generate(&FleetConfig::tiny(29).with_faults(FaultConfig::uniform(0.03)));
    let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
    let prepared = mfpa.prepare(&fleet).expect("prepare");
    let faults = fleet.injected_faults();
    let report = prepared.sanitize_report();
    check_golden(
        "sanitize_counters",
        &json!({
            "injected": {
                "sentinel_resets": faults.sentinel_resets,
                "stuck_attributes": faults.stuck_attributes,
                "counter_rollovers": faults.counter_rollovers,
                "duplicated_records": faults.duplicated_records,
                "out_of_order_swaps": faults.out_of_order_swaps,
                "missing_values": faults.missing_values,
                "clock_skews": faults.clock_skews,
            },
            "sanitized": {
                "input_records": report.input_records,
                "kept_records": report.kept_records,
                "quarantined_sentinel": report.quarantined_sentinel,
                "quarantined_range": report.quarantined_range,
                "quarantined_late": report.quarantined_late,
                "quarantined_missing": report.quarantined_missing,
                "duplicates_collapsed": report.duplicates_collapsed,
                "reordered": report.reordered,
                "rollovers_repaired": report.rollovers_repaired,
                "values_imputed": report.values_imputed,
            },
        }),
    );
}

/// End-to-end evaluation metrics of the reference SFWB + random-forest
/// pipeline on a fixed-seed fleet. The floats round-trip bit-exactly
/// through the JSON text, so this pins the full numeric result, not an
/// approximation.
#[test]
fn golden_pipeline_metrics() {
    let fleet = SimulatedFleet::generate(&FleetConfig::tiny(31));
    let report = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest))
        .run(&fleet)
        .expect("pipeline run");
    let cm = |m: &mfpa_core::MetricSet| {
        json!({
            "tp": m.cm.tp, "fn": m.cm.fn_, "fp": m.cm.fp, "tn": m.cm.tn,
            "tpr": m.tpr(), "fpr": m.fpr(), "auc": m.auc,
        })
    };
    check_golden(
        "pipeline_metrics",
        &json!({
            "sample": cm(&report.sample),
            "drive": cm(&report.drive),
            "n_test_drives": report.n_test_drives,
            "n_failed_test_drives": report.n_failed_test_drives,
            "n_train_rows": report.timings.n_train_rows,
            "n_test_rows": report.timings.n_test_rows,
        }),
    );
}
