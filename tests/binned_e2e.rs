//! End-to-end exact↔binned tolerance: the default histogram path must
//! reproduce the exact path's headline numbers on the standard seed
//! fleet. Bit parity is not expected here — GBDT gradients are floats,
//! so the two paths accumulate split gains in different orders and the
//! fitted ensembles differ — but the *reproduction results* (TPR, FPR,
//! AUC at both sample and drive granularity) must agree within ±0.5pp.

use std::sync::OnceLock;

use mfpa_core::{Algorithm, EvalReport, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};

fn fleet() -> &'static SimulatedFleet {
    static FLEET: OnceLock<SimulatedFleet> = OnceLock::new();
    FLEET.get_or_init(|| SimulatedFleet::generate(&FleetConfig::tiny(31)))
}

/// ±0.5 percentage points on the dense sample-level metrics.
const SAMPLE_TOLERANCE: f64 = 0.005;
/// Drive-level rates on the tiny fleet are quantized at one drive
/// ≈ 0.27pp, so a 2–3 drive disagreement between two legitimately
/// different ensembles is within noise; allow ±1pp there.
const DRIVE_TOLERANCE: f64 = 0.01;

fn assert_reports_close(binned: &EvalReport, exact: &EvalReport, algo: Algorithm) {
    let close = |name: &str, a: f64, b: f64, tol: f64| {
        assert!(
            (a - b).abs() <= tol,
            "{algo} {name}: binned {a} vs exact {b} (|Δ| > {tol})"
        );
    };
    close(
        "sample TPR",
        binned.sample.tpr(),
        exact.sample.tpr(),
        SAMPLE_TOLERANCE,
    );
    close(
        "sample FPR",
        binned.sample.fpr(),
        exact.sample.fpr(),
        SAMPLE_TOLERANCE,
    );
    close(
        "sample AUC",
        binned.sample.auc,
        exact.sample.auc,
        SAMPLE_TOLERANCE,
    );
    close(
        "drive TPR",
        binned.drive.tpr(),
        exact.drive.tpr(),
        DRIVE_TOLERANCE,
    );
    close(
        "drive FPR",
        binned.drive.fpr(),
        exact.drive.fpr(),
        DRIVE_TOLERANCE,
    );
    close(
        "drive AUC",
        binned.drive.auc,
        exact.drive.auc,
        DRIVE_TOLERANCE,
    );
}

#[test]
fn gbdt_binned_matches_exact_within_half_a_point() {
    let run = |max_bins: usize| {
        Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::Gbdt).with_max_bins(max_bins))
            .run(fleet())
            .expect("gbdt run")
    };
    let binned = run(256); // the default
    let exact = run(0);
    assert_reports_close(&binned, &exact, Algorithm::Gbdt);
}

#[test]
fn random_forest_binned_matches_exact_within_half_a_point() {
    let run = |max_bins: usize| {
        Mfpa::new(
            MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest).with_max_bins(max_bins),
        )
        .run(fleet())
        .expect("rf run")
    };
    let binned = run(256);
    let exact = run(0);
    assert_reports_close(&binned, &exact, Algorithm::RandomForest);
}
