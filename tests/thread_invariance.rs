//! Thread-count-invariance suite: the determinism contract of the
//! parallel execution layer, checked end to end.
//!
//! Every parallel stage in the workspace (fleet telemetry generation,
//! per-drive sanitize + preprocess, model fitting and batch scoring)
//! must produce bit-identical output at any worker count. The widths
//! {1, 2, 7} cover the serial fast path, the even split, and uneven
//! tail chunks. Wall-clock fields (`*_secs`) are the only report fields
//! allowed to differ, so comparisons go through counters and
//! `f64::to_bits`.

use mfpa_core::deploy::score_fleet;
use mfpa_core::{Algorithm, EvalReport, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::{FaultConfig, FleetConfig, SimulatedDrive, SimulatedFleet};

const WIDTHS: [usize; 3] = [1, 2, 7];

/// NaN-proof canonical form of a drive's raw emission stream: fault
/// injection blanks attributes to NaN, and the derived `PartialEq` on
/// records would report two bit-identical fleets as different (NaN ≠
/// NaN). Day stamps plus attribute bit patterns capture the stream
/// exactly.
fn drive_bits(drive: &SimulatedDrive) -> (u64, Vec<(i64, Vec<u64>)>) {
    let records = drive
        .raw_records()
        .iter()
        .map(|r| {
            (
                r.day.day(),
                r.smart.as_slice().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect();
    (drive.serial().id(), records)
}

/// A tiny fleet with fault injection on, so the sanitize counters the
/// suite compares are non-trivial.
fn fleet_config(n_threads: usize) -> FleetConfig {
    FleetConfig::tiny(29)
        .with_faults(FaultConfig::uniform(0.03))
        .with_threads(n_threads)
}

#[test]
fn fleet_generation_is_thread_count_invariant() {
    let reference = SimulatedFleet::generate(&fleet_config(WIDTHS[0]));
    for &n in &WIDTHS[1..] {
        let fleet = SimulatedFleet::generate(&fleet_config(n));
        assert_eq!(fleet.drives().len(), reference.drives().len());
        for (a, b) in fleet.drives().iter().zip(reference.drives()) {
            assert_eq!(drive_bits(a), drive_bits(b), "n_threads = {n}");
        }
        assert_eq!(fleet.failures(), reference.failures(), "n_threads = {n}");
        assert_eq!(fleet.tickets(), reference.tickets(), "n_threads = {n}");
        assert_eq!(fleet.stats(), reference.stats(), "n_threads = {n}");
        assert_eq!(
            fleet.firmware_stats(),
            reference.firmware_stats(),
            "n_threads = {n}"
        );
        assert_eq!(
            fleet.injected_faults(),
            reference.injected_faults(),
            "n_threads = {n}"
        );
    }
}

/// Everything in an [`EvalReport`] except wall-clock seconds and the
/// resolved worker count itself.
fn assert_reports_identical(a: &EvalReport, b: &EvalReport, n: usize) {
    assert_eq!(a.sample.cm, b.sample.cm, "n_threads = {n}");
    assert_eq!(a.drive.cm, b.drive.cm, "n_threads = {n}");
    assert_eq!(
        a.sample.auc.to_bits(),
        b.sample.auc.to_bits(),
        "n_threads = {n}"
    );
    assert_eq!(
        a.drive.auc.to_bits(),
        b.drive.auc.to_bits(),
        "n_threads = {n}"
    );
    assert_eq!(a.n_test_drives, b.n_test_drives, "n_threads = {n}");
    assert_eq!(
        a.n_failed_test_drives, b.n_failed_test_drives,
        "n_threads = {n}"
    );
    assert_eq!(
        a.timings.n_raw_records, b.timings.n_raw_records,
        "n_threads = {n}"
    );
    assert_eq!(
        a.timings.n_quarantined, b.timings.n_quarantined,
        "n_threads = {n}"
    );
    assert_eq!(
        a.timings.n_repaired, b.timings.n_repaired,
        "n_threads = {n}"
    );
    assert_eq!(
        a.timings.n_train_rows, b.timings.n_train_rows,
        "n_threads = {n}"
    );
    assert_eq!(
        a.timings.n_test_rows, b.timings.n_test_rows,
        "n_threads = {n}"
    );
}

#[test]
fn pipeline_report_is_thread_count_invariant() {
    // One shared fleet; only the pipeline's worker count varies.
    let fleet = SimulatedFleet::generate(&fleet_config(1));
    let run = |n: usize| {
        Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest).with_threads(n))
            .run(&fleet)
            .expect("pipeline run")
    };
    let reference = run(WIDTHS[0]);
    assert!(
        reference.timings.n_quarantined + reference.timings.n_repaired > 0,
        "fixture fleet should exercise the sanitizer"
    );
    for &n in &WIDTHS[1..] {
        assert_reports_identical(&run(n), &reference, n);
    }
}

#[test]
fn batch_scoring_is_thread_count_invariant() {
    let fleet = SimulatedFleet::generate(
        &FleetConfig::tiny(29)
            .with_population_fraction(0.001)
            .with_faults(FaultConfig::uniform(0.03)),
    );
    let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
    let prepared = mfpa.prepare(&fleet).expect("prepare");
    let all: Vec<usize> = (0..prepared.n_rows()).collect();
    let trained = mfpa.train_rows(&prepared, &all).expect("train");

    let reference = score_fleet(fleet.drives(), &trained, WIDTHS[0]).expect("score_fleet");
    assert_eq!(reference.len(), fleet.drives().len());
    assert!(
        reference.iter().any(|s| !s.report.is_clean()),
        "faulty streams should leave sanitize accounting"
    );
    for &n in &WIDTHS[1..] {
        let scores = score_fleet(fleet.drives(), &trained, n).expect("score_fleet");
        assert_eq!(scores.len(), reference.len());
        for (a, b) in scores.iter().zip(&reference) {
            assert_eq!(a.serial, b.serial, "n_threads = {n}");
            assert_eq!(a.max_score.to_bits(), b.max_score.to_bits());
            assert_eq!(a.last_score.to_bits(), b.last_score.to_bits());
            assert_eq!(a.n_scored, b.n_scored);
            assert_eq!(a.report, b.report);
        }
    }
}
