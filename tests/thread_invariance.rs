//! Thread-count-invariance suite: the determinism contract of the
//! parallel execution layer, checked end to end.
//!
//! Every parallel stage in the workspace (fleet telemetry generation,
//! per-drive sanitize + preprocess, model fitting and batch scoring)
//! must produce bit-identical output at any worker count. The widths
//! {1, 2, 7} cover the serial fast path, the even split, and uneven
//! tail chunks. Wall-clock fields (`*_secs`) are the only report fields
//! allowed to differ, so comparisons go through counters and
//! `f64::to_bits`.

use mfpa_core::deploy::score_fleet;
use mfpa_core::{Algorithm, EvalReport, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_dataset::Matrix;
use mfpa_fleetsim::{FaultConfig, FleetConfig, SimulatedDrive, SimulatedFleet};
use mfpa_ml::{BinnedMatrix, Classifier, Gbdt, RandomForest};
use mfpa_par::Workers;

const WIDTHS: [usize; 3] = [1, 2, 7];

/// NaN-proof canonical form of a drive's raw emission stream: fault
/// injection blanks attributes to NaN, and the derived `PartialEq` on
/// records would report two bit-identical fleets as different (NaN ≠
/// NaN). Day stamps plus attribute bit patterns capture the stream
/// exactly.
fn drive_bits(drive: &SimulatedDrive) -> (u64, Vec<(i64, Vec<u64>)>) {
    let records = drive
        .raw_records()
        .iter()
        .map(|r| {
            (
                r.day.day(),
                r.smart.as_slice().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect();
    (drive.serial().id(), records)
}

/// A tiny fleet with fault injection on, so the sanitize counters the
/// suite compares are non-trivial.
fn fleet_config(n_threads: usize) -> FleetConfig {
    FleetConfig::tiny(29)
        .with_faults(FaultConfig::uniform(0.03))
        .with_threads(n_threads)
}

#[test]
fn fleet_generation_is_thread_count_invariant() {
    let reference = SimulatedFleet::generate(&fleet_config(WIDTHS[0]));
    for &n in &WIDTHS[1..] {
        let fleet = SimulatedFleet::generate(&fleet_config(n));
        assert_eq!(fleet.drives().len(), reference.drives().len());
        for (a, b) in fleet.drives().iter().zip(reference.drives()) {
            assert_eq!(drive_bits(a), drive_bits(b), "n_threads = {n}");
        }
        assert_eq!(fleet.failures(), reference.failures(), "n_threads = {n}");
        assert_eq!(fleet.tickets(), reference.tickets(), "n_threads = {n}");
        assert_eq!(fleet.stats(), reference.stats(), "n_threads = {n}");
        assert_eq!(
            fleet.firmware_stats(),
            reference.firmware_stats(),
            "n_threads = {n}"
        );
        assert_eq!(
            fleet.injected_faults(),
            reference.injected_faults(),
            "n_threads = {n}"
        );
    }
}

/// Everything in an [`EvalReport`] except wall-clock seconds and the
/// resolved worker count itself.
fn assert_reports_identical(a: &EvalReport, b: &EvalReport, n: usize) {
    assert_eq!(a.sample.cm, b.sample.cm, "n_threads = {n}");
    assert_eq!(a.drive.cm, b.drive.cm, "n_threads = {n}");
    assert_eq!(
        a.sample.auc.to_bits(),
        b.sample.auc.to_bits(),
        "n_threads = {n}"
    );
    assert_eq!(
        a.drive.auc.to_bits(),
        b.drive.auc.to_bits(),
        "n_threads = {n}"
    );
    assert_eq!(a.n_test_drives, b.n_test_drives, "n_threads = {n}");
    assert_eq!(
        a.n_failed_test_drives, b.n_failed_test_drives,
        "n_threads = {n}"
    );
    assert_eq!(
        a.timings.n_raw_records, b.timings.n_raw_records,
        "n_threads = {n}"
    );
    assert_eq!(
        a.timings.n_quarantined, b.timings.n_quarantined,
        "n_threads = {n}"
    );
    assert_eq!(
        a.timings.n_repaired, b.timings.n_repaired,
        "n_threads = {n}"
    );
    assert_eq!(
        a.timings.n_train_rows, b.timings.n_train_rows,
        "n_threads = {n}"
    );
    assert_eq!(
        a.timings.n_test_rows, b.timings.n_test_rows,
        "n_threads = {n}"
    );
}

#[test]
fn pipeline_report_is_thread_count_invariant() {
    // One shared fleet; only the pipeline's worker count varies.
    let fleet = SimulatedFleet::generate(&fleet_config(1));
    let run = |n: usize| {
        Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest).with_threads(n))
            .run(&fleet)
            .expect("pipeline run")
    };
    let reference = run(WIDTHS[0]);
    assert!(
        reference.timings.n_quarantined + reference.timings.n_repaired > 0,
        "fixture fleet should exercise the sanitizer"
    );
    for &n in &WIDTHS[1..] {
        assert_reports_identical(&run(n), &reference, n);
    }
}

/// A deterministic feature matrix with telemetry-shaped pathologies:
/// heavy-mass repeated values (gap-filled counters), NaN holes, and a
/// constant column — the inputs quantile binning has to survive.
fn binning_fixture() -> Matrix {
    let rows: Vec<Vec<f64>> = (0..240)
        .map(|i| {
            let i = i as f64;
            vec![
                // Counter that mostly sits still, with occasional jumps.
                if (i as usize).is_multiple_of(7) {
                    i * 3.0
                } else {
                    42.0
                },
                // Smooth analog channel with NaN dropouts.
                if (i as usize).is_multiple_of(11) {
                    f64::NAN
                } else {
                    (i * 0.37).sin() * 100.0
                },
                // Constant column: zero edges, single bin.
                5.0,
                // Dense distinct values.
                i.mul_add(1.5, (i * 0.11).cos()),
            ]
        })
        .collect();
    Matrix::from_rows(&rows).expect("fixture rows")
}

#[test]
fn binned_matrix_build_is_thread_count_invariant() {
    let x = binning_fixture();
    let reference = BinnedMatrix::build(&x, 16, Workers::new(WIDTHS[0]));
    assert!(
        (0..reference.n_cols()).any(|f| reference.n_bins(f) > 2),
        "fixture should produce non-trivial histograms"
    );
    for &n in &WIDTHS[1..] {
        let binned = BinnedMatrix::build(&x, 16, Workers::new(n));
        assert_eq!(binned, reference, "n_threads = {n}");
    }
}

/// The binned ensemble fits (the default path since `max_bins` > 0)
/// must stay bit-identical at any worker count: quantization is
/// per-column independent and tree fits go through `ordered_map`.
#[test]
fn binned_ensemble_fit_is_thread_count_invariant() {
    let x = binning_fixture();
    let y: Vec<bool> = (0..x.n_rows()).map(|i| i % 5 == 0 || i % 7 == 3).collect();
    let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<u64>>();

    let rf = |n: usize| {
        let mut m = RandomForest::new(12, 8).with_seed(13).with_threads(n);
        m.fit(&x, &y).expect("rf fit");
        m.predict_proba(&x).expect("rf proba")
    };
    let gbdt = |n: usize| {
        let mut m = Gbdt::new(12, 0.2, 3)
            .with_subsample(0.8)
            .with_seed(13)
            .with_threads(n);
        m.fit(&x, &y).expect("gbdt fit");
        m.predict_proba(&x).expect("gbdt proba")
    };

    let rf_ref = bits(&rf(WIDTHS[0]));
    let gbdt_ref = bits(&gbdt(WIDTHS[0]));
    for &n in &WIDTHS[1..] {
        assert_eq!(bits(&rf(n)), rf_ref, "rf n_threads = {n}");
        assert_eq!(bits(&gbdt(n)), gbdt_ref, "gbdt n_threads = {n}");
    }
}

#[test]
fn batch_scoring_is_thread_count_invariant() {
    let fleet = SimulatedFleet::generate(
        &FleetConfig::tiny(29)
            .with_population_fraction(0.001)
            .with_faults(FaultConfig::uniform(0.03)),
    );
    let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
    let prepared = mfpa.prepare(&fleet).expect("prepare");
    let all: Vec<usize> = (0..prepared.n_rows()).collect();
    let trained = mfpa.train_rows(&prepared, &all).expect("train");

    let reference = score_fleet(fleet.drives(), &trained, WIDTHS[0]).expect("score_fleet");
    assert_eq!(reference.len(), fleet.drives().len());
    assert!(
        reference.iter().any(|s| !s.report.is_clean()),
        "faulty streams should leave sanitize accounting"
    );
    for &n in &WIDTHS[1..] {
        let scores = score_fleet(fleet.drives(), &trained, n).expect("score_fleet");
        assert_eq!(scores.len(), reference.len());
        for (a, b) in scores.iter().zip(&reference) {
            assert_eq!(a.serial, b.serial, "n_threads = {n}");
            assert_eq!(a.max_score.to_bits(), b.max_score.to_bits());
            assert_eq!(a.last_score.to_bits(), b.last_score.to_bits());
            assert_eq!(a.n_scored, b.n_scored);
            assert_eq!(a.report, b.report);
        }
    }
}
