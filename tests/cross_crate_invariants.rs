//! Cross-crate invariants: telemetry ↔ fleetsim ↔ core agree about
//! serials, days, labels and sample windows.

use std::sync::OnceLock;

use mfpa_core::labeling::{label_failures, LabelingConfig};
use mfpa_core::preprocess::{preprocess, PreprocessConfig};
use mfpa_core::windows::{build_samples, group_of, WindowConfig};
use mfpa_core::FeatureId;
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};

fn fleet() -> &'static SimulatedFleet {
    static FLEET: OnceLock<SimulatedFleet> = OnceLock::new();
    FLEET.get_or_init(|| SimulatedFleet::generate(&FleetConfig::tiny(77)))
}

fn clean_series() -> Vec<mfpa_core::preprocess::CleanSeries> {
    let cfg = PreprocessConfig::default();
    fleet()
        .drives()
        .iter()
        .filter_map(|d| preprocess(d.history(), d.firmware(), &cfg))
        .collect()
}

#[test]
fn tickets_reference_telemetry_drives() {
    let serials: std::collections::HashSet<_> =
        fleet().drives().iter().map(|d| d.serial()).collect();
    for t in fleet().tickets() {
        assert!(
            serials.contains(&t.serial()),
            "ticket for unknown drive {}",
            t.serial()
        );
    }
}

#[test]
fn preprocessing_preserves_order_and_width() {
    let n_cols = FeatureId::full_row().len();
    for s in clean_series() {
        assert!(s.days.windows(2).all(|w| w[0] < w[1]), "days not ascending");
        assert!(s.rows.iter().all(|r| r.len() == n_cols));
        assert_eq!(s.days.len(), s.rows.len());
        assert_eq!(s.days.len(), s.imputed.len());
        // Post-drop segments never contain a long gap.
        assert!(s
            .days
            .windows(2)
            .all(|w| w[1] - w[0] < PreprocessConfig::default().drop_gap));
    }
}

#[test]
fn cumulative_event_columns_are_monotone() {
    let w_cols: Vec<usize> = FeatureId::full_row()
        .iter()
        .filter(|f| matches!(f, FeatureId::WinEventCum(_) | FeatureId::BsodCum(_)))
        .map(|f| f.full_index())
        .collect();
    for s in clean_series() {
        for &c in &w_cols {
            let vals: Vec<f64> = s.rows.iter().map(|r| r[c]).collect();
            assert!(
                vals.windows(2).all(|w| w[1] >= w[0] - 1e-9),
                "column {c} not monotone for {}",
                s.serial
            );
        }
    }
}

#[test]
fn labels_never_postdate_tickets() {
    let series = clean_series();
    let labels = label_failures(&series, fleet().tickets(), &LabelingConfig::default());
    let imt: std::collections::HashMap<_, _> = fleet()
        .tickets()
        .iter()
        .map(|t| (t.serial(), t.imt().day()))
        .collect();
    assert!(!labels.is_empty());
    for (serial, day) in &labels {
        assert!(day <= &imt[serial], "label {day} after IMT {}", imt[serial]);
    }
}

#[test]
fn labels_land_near_true_failure_days() {
    let series = clean_series();
    let labels = label_failures(&series, fleet().tickets(), &LabelingConfig::default());
    let truth: std::collections::HashMap<_, _> = fleet()
        .failures()
        .iter()
        .map(|f| (f.serial, f.failure_day.day()))
        .collect();
    let mut close = 0usize;
    for (serial, day) in &labels {
        if (day - truth[serial]).abs() <= 14 {
            close += 1;
        }
    }
    // θ-labelling should place the vast majority of labels within two
    // weeks of the true failure.
    assert!(
        close * 10 >= labels.len() * 9,
        "only {close}/{} labels near truth",
        labels.len()
    );
}

#[test]
fn positive_samples_sit_inside_their_window() {
    let series = clean_series();
    let labels = label_failures(&series, fleet().tickets(), &LabelingConfig::default());
    let cfg = WindowConfig {
        positive_window: 14,
        lookahead: 2,
        seq_len: 3,
    };
    let set = build_samples(&series, &labels, &cfg).expect("samples");
    let by_group: std::collections::HashMap<u64, i64> =
        labels.iter().map(|(s, &d)| (group_of(*s), d)).collect();
    assert!(set.flat.n_positive() > 0);
    for (meta, &label) in set.flat.meta().iter().zip(set.flat.labels()) {
        if label {
            let fd = by_group[&meta.group];
            let hi = fd - cfg.lookahead;
            assert!(meta.time <= hi && meta.time > hi - cfg.positive_window);
        } else {
            assert!(
                !by_group.contains_key(&meta.group),
                "negative from a labelled drive"
            );
        }
    }
    // Sequence view stays aligned.
    assert_eq!(set.seq.meta(), set.flat.meta());
    assert_eq!(set.seq.labels(), set.flat.labels());
}

#[test]
fn unwindowed_failures_are_rare_but_tracked() {
    let series = clean_series();
    let labels = label_failures(&series, fleet().tickets(), &LabelingConfig::default());
    let set = build_samples(&series, &labels, &WindowConfig::default()).expect("samples");
    let windowed_groups: std::collections::HashSet<u64> = set
        .flat
        .meta()
        .iter()
        .zip(set.flat.labels())
        .filter(|(_, &l)| l)
        .map(|(m, _)| m.group)
        .collect();
    // Every labelled drive is either windowed or tracked as unwindowed.
    assert_eq!(
        windowed_groups.len() + set.unwindowed_failures.len(),
        labels.len()
    );
    for (g, _) in &set.unwindowed_failures {
        assert!(!windowed_groups.contains(g));
    }
}

#[test]
fn fig2_exposure_accounts_for_the_population() {
    let exposure: f64 = fleet().age_exposure_days().iter().sum();
    let expected = fleet().population() as f64 * fleet().config().horizon_days as f64;
    let rel = (exposure - expected).abs() / expected;
    assert!(rel < 0.02, "exposure {exposure} vs expected {expected}");
}
