//! Fault-tolerance suite for the serving layer: `FleetMonitor` driven
//! end to end through the public API with replayed fleet telemetry.
//!
//! Covers the three guarantees the serving layer makes:
//!
//! 1. **Crash safety** — kill-and-restore at *every* batch boundary is
//!    bit-identical to an uninterrupted run, and corrupted checkpoints
//!    are always refused.
//! 2. **Determinism** — final scores, quarantine sets and accounting
//!    are invariant to the worker count.
//! 3. **Containment** — poison drives are quarantined with bounded
//!    retry, overload sheds scoring sweeps before ingestion, and the
//!    per-shard accounting conserves every record (checked by proptest
//!    against arbitrary byte-garbage records).

use std::path::PathBuf;

use mfpa_core::checkpoint::{latest_checkpoint, restore};
use mfpa_core::fleet_monitor::{FleetMonitor, FleetMonitorConfig, SweepOutcome};
use mfpa_core::{Algorithm, CoreError, FeatureGroup, Mfpa, MfpaConfig, TrainedMfpa};
use mfpa_fleetsim::replay::{arrival_stream, flip_one_byte, into_batches, TransportFaultConfig};
use mfpa_fleetsim::{ArrivalEvent, FaultConfig, FleetConfig, SimulatedFleet};
use mfpa_telemetry::{DailyRecord, DayStamp, FirmwareVersion, SerialNumber, SmartValues, Vendor};
use proptest::prelude::*;

/// A small faulty fleet: big enough to spread across shards, small
/// enough to keep the boundary sweep fast.
fn fleet() -> SimulatedFleet {
    SimulatedFleet::generate(&FleetConfig::tiny(37).with_faults(FaultConfig::uniform(0.03)))
}

/// Trains the scoring model the sweeps use.
fn trained(fleet: &SimulatedFleet) -> TrainedMfpa {
    let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
    let prepared = mfpa.prepare(fleet).expect("prepare");
    let all: Vec<usize> = (0..prepared.n_rows()).collect();
    mfpa.train_rows(&prepared, &all).expect("train")
}

/// The fleet's telemetry as faulted arrival-ordered batches.
fn batches(fleet: &SimulatedFleet) -> Vec<Vec<ArrivalEvent>> {
    let faults = TransportFaultConfig {
        batch_truncation_rate: 0.05,
        burst_loss_rate: 0.05,
        burst_len: 2,
        n_shards: 4,
    };
    into_batches(arrival_stream(fleet), 192, &faults, 37).0
}

fn base_config() -> FleetMonitorConfig {
    FleetMonitorConfig::default()
        .with_shards(4)
        .with_reorder_depth(4)
        .with_quarantine(2, 4, 3)
        .with_threads(1)
}

/// A scratch directory unique to one test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfpa-fm-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// NaN-proof canonical end state of a monitor: score bit patterns,
/// quarantine set, fleet accounting and the per-shard split.
fn end_state(fm: &mut FleetMonitor, model: &TrainedMfpa) -> impl PartialEq + std::fmt::Debug {
    fm.drain();
    let scores: Vec<(SerialNumber, u64)> = fm
        .sweep_now(model)
        .expect("sweep")
        .into_iter()
        .map(|s| (s.serial, s.score.to_bits()))
        .collect();
    (
        scores,
        fm.quarantined(),
        fm.fleet_report(),
        fm.shard_reports(),
    )
}

/// One sentinel-page record — rejected by sanitize on every arrival.
fn poison(id: u64, day: i64) -> ArrivalEvent {
    ArrivalEvent {
        serial: SerialNumber::new(Vendor::III, id),
        record: DailyRecord {
            day: DayStamp::new(day),
            smart: SmartValues::from_array([u64::MAX as f64; 16]),
            firmware: FirmwareVersion::new(Vendor::III, 1),
            w_counts: [0; 9],
            b_counts: [0; 23],
        },
    }
}

/// A clean record for the same drive family.
fn clean(id: u64, day: i64) -> ArrivalEvent {
    let mut smart = SmartValues::from_array([1.0; 16]);
    smart.set(mfpa_telemetry::SmartAttr::PowerOnHours, 24.0 * day as f64);
    ArrivalEvent {
        serial: SerialNumber::new(Vendor::III, id),
        record: DailyRecord {
            day: DayStamp::new(day),
            smart,
            firmware: FirmwareVersion::new(Vendor::III, 1),
            w_counts: [0; 9],
            b_counts: [0; 23],
        },
    }
}

#[test]
fn kill_and_restore_is_bit_identical_at_every_batch_boundary() {
    let fleet = fleet();
    let model = trained(&fleet);
    let batches = batches(&fleet);
    assert!(batches.len() >= 4, "need a multi-batch stream");

    // Reference: uninterrupted, no checkpointing.
    let mut reference = FleetMonitor::new(base_config()).expect("config");
    for batch in &batches {
        reference.ingest_batch(batch, None).expect("ingest");
    }
    let want = end_state(&mut reference, &model);

    let dir = scratch("boundary");
    for kill_at in 1..batches.len() {
        let run_dir = dir.join(format!("k{kill_at}"));
        let cfg = base_config().with_checkpointing(&run_dir, 1);
        {
            let mut fm = FleetMonitor::new(cfg.clone()).expect("config");
            for batch in &batches[..kill_at] {
                fm.ingest_batch(batch, None).expect("ingest");
            }
            // Dropped here: the crash. Only checkpoint files survive.
        }
        let mut fm = FleetMonitor::restore_latest(cfg)
            .expect("restore_latest")
            .expect("checkpoint exists");
        assert_eq!(fm.tick() as usize, kill_at, "resumed at the kill point");
        for batch in &batches[kill_at..] {
            fm.ingest_batch(batch, None).expect("ingest");
        }
        let got = end_state(&mut fm, &model);
        assert!(got == want, "diverged after kill at batch {kill_at}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn end_state_is_invariant_to_worker_count() {
    let fleet = fleet();
    let model = trained(&fleet);
    let batches = batches(&fleet);

    let mut reference = FleetMonitor::new(base_config().with_threads(1)).expect("config");
    for batch in &batches {
        reference.ingest_batch(batch, Some(&model)).expect("ingest");
    }
    let want = end_state(&mut reference, &model);

    for n_threads in [2, 4, 7] {
        let mut fm = FleetMonitor::new(base_config().with_threads(n_threads)).expect("config");
        for batch in &batches {
            fm.ingest_batch(batch, Some(&model)).expect("ingest");
        }
        let got = end_state(&mut fm, &model);
        assert!(got == want, "diverged at n_threads = {n_threads}");
    }
}

#[test]
fn poison_drive_cycles_through_backoff_and_ends_permanent() {
    let fleet = fleet();
    let batches = batches(&fleet);
    // Reorder depth 0 so every record flushes on arrival; threshold 2,
    // base backoff 1 tick, permanent after 3 strikes.
    let cfg = base_config().with_reorder_depth(0).with_quarantine(2, 1, 3);
    let mut fm = FleetMonitor::new(cfg).expect("config");

    for (tick, batch) in batches.iter().enumerate() {
        let mut batch = batch.clone();
        // Two poison records per batch trip the threshold every time the
        // drive is admitted, so each readmission immediately re-strikes.
        batch.push(poison(7001, tick as i64));
        batch.push(poison(7001, tick as i64));
        fm.ingest_batch(&batch, None).expect("ingest");
    }

    let quarantined = fm.quarantined();
    let entry = quarantined
        .iter()
        .find(|(serial, _)| serial.id() == 7001)
        .expect("poison drive quarantined");
    assert_eq!(entry.1.until_tick, None, "third strike is permanent");
    let report = fm.fleet_report();
    assert!(report.quarantines >= 3, "one quarantine per strike");
    assert!(report.readmissions >= 2, "backoff expiries readmitted it");
    assert!(report.dropped_quarantined > 0);
    assert!(report.is_conserved());

    // Scoring for the quarantined drive is refused with a structured
    // error carrying the quarantine window.
    let err = fm
        .drive_row(SerialNumber::new(Vendor::III, 7001))
        .expect_err("quarantined drives do not score");
    assert!(matches!(err, CoreError::QuarantinedDrive { .. }));
}

#[test]
fn recovered_drive_is_readmitted_and_scores_again() {
    // Poison records until quarantine, then clean telemetry: after the
    // backoff expires the drive must rejoin the scored population.
    let cfg = base_config().with_reorder_depth(0).with_quarantine(2, 1, 4);
    let mut fm = FleetMonitor::new(cfg).expect("config");

    fm.ingest_batch(&[poison(9, 0), poison(9, 1)], None)
        .expect("ingest");
    assert_eq!(fm.quarantined().len(), 1);
    // Backoff = 1 tick: quarantined at tick 0, due again at tick 1.
    for day in 2..6 {
        fm.ingest_batch(&[clean(9, day)], None).expect("ingest");
    }
    assert!(
        fm.quarantined().is_empty(),
        "clean stream clears quarantine"
    );
    let row = fm
        .drive_row(SerialNumber::new(Vendor::III, 9))
        .expect("scores again")
        .expect("row present");
    assert!(!row.is_empty());
    assert_eq!(fm.fleet_report().readmissions, 1);
}

#[test]
fn overload_sheds_sweeps_before_ingestion_and_counts_everything() {
    let fleet = fleet();
    let model = trained(&fleet);
    let batches = batches(&fleet);
    // Queue capacity 8 guarantees overflow on real batches; sweep every
    // tick makes the shed observable immediately.
    let cfg = base_config()
        .with_queue_capacity(8)
        .with_sweep_interval(1)
        .with_degrade_cooldown(2);
    let mut fm = FleetMonitor::new(cfg).expect("config");

    let out = fm.ingest_batch(&batches[0], Some(&model)).expect("ingest");
    assert_eq!(
        out.sweep,
        SweepOutcome::Shed,
        "overload sheds the sweep first"
    );
    assert!(fm.is_degraded());
    assert!(fm.sweeps_shed() >= 1);
    let report = fm.fleet_report();
    assert!(report.shed_overflow > 0, "dropped ingestion is counted");
    assert!(
        report.received > report.shed_overflow,
        "shedding is partial, not total"
    );
    assert!(report.is_conserved());

    // A quiet stream past the cooldown restores scoring sweeps.
    let mut recovered = false;
    for tick in 0..8 {
        let out = fm
            .ingest_batch(&[clean(5000, tick)], Some(&model))
            .expect("ingest");
        if matches!(out.sweep, SweepOutcome::Scores(_)) {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "degradation must end after the cooldown");
}

#[test]
fn strict_overflow_rejects_the_batch_without_mutating_state() {
    let fleet = fleet();
    let batches = batches(&fleet);
    let cfg = base_config()
        .with_queue_capacity(8)
        .with_strict_overflow(true);
    let mut fm = FleetMonitor::new(cfg).expect("config");
    let err = fm
        .ingest_batch(&batches[0], None)
        .expect_err("strict mode rejects overflow");
    assert!(matches!(err, CoreError::ShardOverflow { .. }));
    assert_eq!(
        fm.fleet_report().received,
        0,
        "rejected batch left no trace"
    );
    assert_eq!(fm.tick(), 0);
}

#[test]
fn corrupted_checkpoints_are_always_refused() {
    let fleet = fleet();
    let batches = batches(&fleet);
    let dir = scratch("corrupt");
    let cfg = base_config().with_checkpointing(&dir, 1);
    let mut fm = FleetMonitor::new(cfg.clone()).expect("config");
    for batch in &batches[..2] {
        fm.ingest_batch(batch, None).expect("ingest");
    }
    let ckpt = latest_checkpoint(&dir)
        .expect("list")
        .expect("checkpoint written");
    let pristine = std::fs::read(&ckpt).expect("read checkpoint");

    // A pristine copy restores; any single-bit damage is refused.
    restore(cfg.clone(), &ckpt).expect("pristine checkpoint restores");
    for seed in 0..48u64 {
        let mut damaged = pristine.clone();
        flip_one_byte(&mut damaged, seed).expect("flip");
        std::fs::write(&ckpt, &damaged).expect("write");
        let err = restore(cfg.clone(), &ckpt).expect_err("damaged checkpoint refused");
        assert!(
            matches!(err, CoreError::CheckpointCorrupt { .. }),
            "seed {seed}: wrong error {err:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_write_failure_degrades_instead_of_crashing() {
    // Point the checkpoint directory at a regular file: every write
    // fails, the monitor reports it, sheds sweeps, and keeps ingesting.
    let dir = scratch("wrfail");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let blocked = dir.join("blocked");
    std::fs::write(&blocked, b"not a directory").expect("write blocker");

    let cfg = base_config()
        .with_checkpointing(blocked.join("sub"), 1)
        .with_sweep_interval(1);
    let fleet = fleet();
    let model = trained(&fleet);
    let mut fm = FleetMonitor::new(cfg).expect("config");
    let out = fm
        .ingest_batch(&[clean(1, 0)], Some(&model))
        .expect("ingest");
    assert!(matches!(
        out.checkpoint,
        mfpa_core::CheckpointOutcome::Failed { .. }
    ));
    assert_eq!(fm.checkpoint_failures(), 1);
    assert!(fm.is_degraded(), "write failure enters degraded mode");
    assert_eq!(out.sweep, SweepOutcome::Shed);
    // Ingestion itself survives.
    fm.ingest_batch(&[clean(1, 1)], Some(&model))
        .expect("ingest");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Decodes a drawn corruption code into one SMART value, spanning the
/// whole menu of garbage a broken collector can emit.
fn garbage_value(code: u8, day: i64, ix: usize) -> f64 {
    match code % 8 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => -1.0,
        3 => u64::MAX as f64,
        4 => 0.0,
        5 => 1e300,
        6 => f64::MIN_POSITIVE,
        _ => (day.max(0) as f64) + ix as f64,
    }
}

proptest! {
    /// Arbitrary byte-garbage records never panic the monitor, and the
    /// per-shard accounting conserves every record that arrived.
    #[test]
    fn monitor_never_panics_and_conserves_arbitrary_garbage(
        days in proptest::collection::vec(-5i64..40, 1..60),
        codes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 16), 1..60),
        ids in proptest::collection::vec(0u64..6, 1..60),
        batch_size in 1usize..16,
    ) {
        let n = days.len().min(codes.len()).min(ids.len());
        let events: Vec<ArrivalEvent> = (0..n)
            .map(|i| {
                let mut values = [0.0f64; 16];
                for (ix, v) in values.iter_mut().enumerate() {
                    *v = garbage_value(codes[i][ix], days[i], ix);
                }
                ArrivalEvent {
                    serial: SerialNumber::new(Vendor::IV, ids[i]),
                    record: DailyRecord {
                        day: DayStamp::new(days[i]),
                        smart: SmartValues::from_array(values),
                        firmware: FirmwareVersion::new(Vendor::IV, 1),
                        w_counts: [0; 9],
                        b_counts: [0; 23],
                    },
                }
            })
            .collect();

        let cfg = FleetMonitorConfig::default()
            .with_shards(3)
            .with_reorder_depth(2)
            .with_quarantine(2, 2, 2)
            .with_queue_capacity(8)
            .with_threads(1);
        let mut fm = FleetMonitor::new(cfg).expect("config");
        for batch in events.chunks(batch_size) {
            fm.ingest_batch(batch, None).expect("ingest never errors in non-strict mode");
        }
        fm.drain();
        let report = fm.fleet_report();
        prop_assert!(report.is_conserved(), "leaked records: {report:?}");
        prop_assert_eq!(report.received, n as u64);
        prop_assert_eq!(report.pending, 0);
    }
}
