//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the shared [`serde::Value`] tree to compact JSON text and
//! parses JSON text back into it. Provides [`to_string`], [`from_str`]
//! and a [`json!`] macro covering the shapes this workspace emits
//! (objects with literal keys, nested objects/arrays, expression
//! values, `null`). The `float_roundtrip` feature flag is accepted for
//! manifest compatibility and is a no-op: floats always print their
//! shortest round-trippable form.

use std::fmt;

pub use serde::value::{Map, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialises `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails in this vendored implementation; the `Result` mirrors
/// the real serde_json signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_string())
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize_value(&value)?)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone leading surrogate"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::new("invalid trailing surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Advance one whole UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports the subset this workspace uses: `null`, booleans,
/// expression values (anything `serde::Serialize`), arrays, and objects
/// with string-literal keys.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_value!($($tt)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_value {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => { $crate::json_array!(@elems () $($elems)*) };
    ({ $($entries:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $crate::json_object!(@key __m $($entries)*);
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { ::serde::Serialize::serialize_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // All entries consumed.
    (@key $m:ident) => {};
    // Key found: munch the value tokens until a top-level comma.
    (@key $m:ident $key:literal : $($rest:tt)*) => {
        $crate::json_object!(@val $m ($key) [] $($rest)*)
    };
    // Value complete at a comma.
    (@val $m:ident ($key:literal) [$($val:tt)*] , $($rest:tt)*) => {
        $m.insert(::std::string::String::from($key), $crate::json_value!($($val)*));
        $crate::json_object!(@key $m $($rest)*)
    };
    // Value complete at the end (no trailing comma).
    (@val $m:ident ($key:literal) [$($val:tt)*]) => {
        $m.insert(::std::string::String::from($key), $crate::json_value!($($val)*));
    };
    // Accumulate one more value token.
    (@val $m:ident ($key:literal) [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_object!(@val $m ($key) [$($val)* $next] $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // All elements consumed.
    (@elems ($($out:expr,)*)) => {
        $crate::Value::Array(::std::vec![$($out),*])
    };
    // Start munching the next element.
    (@elems ($($out:expr,)*) $($rest:tt)+) => {
        $crate::json_array!(@val ($($out,)*) [] $($rest)+)
    };
    // Element complete at a comma.
    (@val ($($out:expr,)*) [$($val:tt)*] , $($rest:tt)*) => {
        $crate::json_array!(@elems ($($out,)* $crate::json_value!($($val)*),) $($rest)*)
    };
    // Element complete at the end.
    (@val ($($out:expr,)*) [$($val:tt)*]) => {
        $crate::json_array!(@elems ($($out,)* $crate::json_value!($($val)*),))
    };
    // Accumulate one more element token.
    (@val ($($out:expr,)*) [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_array!(@val ($($out,)*) [$($val)* $next] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_value() {
        let text = r#"{"a":[1,2.5,null,true],"b":{"c":"x\ny"},"d":-3}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![json!({"k": 1u32}), json!({"k": 2u32})];
        let v = json!({
            "id": "exp-1",
            "tpr": 0.5f64.max(0.25),
            "missing": Option::<f64>::None,
            "rows": rows,
            "inline": [1, 2 + 1],
            "nested": { "deep": null },
        });
        assert_eq!(
            v.to_string(),
            r#"{"id":"exp-1","inline":[1,3],"missing":null,"nested":{"deep":null},"rows":[{"k":1},{"k":2}],"tpr":0.5}"#
        );
    }

    #[test]
    fn integers_parse_exactly() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v, Value::U64(u64::MAX));
        let v: Value = from_str("-9223372036854775808").unwrap();
        assert_eq!(v, Value::I64(i64::MIN));
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.5f64, -2.0, 0.0];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
