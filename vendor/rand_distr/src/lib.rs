//! Offline vendored stand-in for `rand_distr`: the [`Distribution`]
//! trait plus the [`Normal`] and [`Poisson`] distributions this
//! workspace samples. Deterministic given the generator state.

use rand::{RngCore, RngExt};

/// Types that can draw samples of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => f.write_str("normal: invalid standard deviation"),
            NormalError::MeanTooSmall => f.write_str("normal: invalid mean"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std_dev²)`, sampled via Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] for non-finite parameters or a negative
    /// standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; the second variate is discarded so one draw costs a
        // fixed two uniforms, keeping seeded streams easy to reason about.
        let u1: f64 = loop {
            let u = rng.random();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std_dev * r * theta.cos()
    }
}

/// Error constructing a [`Poisson`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoissonError {
    /// λ was non-positive or non-finite.
    ShapeTooSmall,
}

impl std::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("poisson: lambda must be finite and > 0")
    }
}

impl std::error::Error for PoissonError {}

/// The Poisson distribution with rate λ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    ///
    /// Returns [`PoissonError`] unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Poisson, PoissonError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(PoissonError::ShapeTooSmall);
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.random();
                if p <= l {
                    return k as f64;
                }
                k += 1;
                if k > 10_000 {
                    return k as f64; // numeric underflow guard
                }
            }
        }
        // Large λ: normal approximation with continuity correction —
        // accurate to well under the simulator's noise floor.
        let n = Normal {
            mean: self.lambda,
            std_dev: self.lambda.sqrt(),
        };
        n.sample(rng).round().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_parameters_error() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut rng = StdRng::seed_from_u64(13);
        for lambda in [0.5, 4.0, 80.0] {
            let d = Poisson::new(lambda).unwrap();
            let n = 30_000;
            let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.1 + 0.05,
                "lambda {lambda} mean {mean}"
            );
        }
    }

    #[test]
    fn samples_are_non_negative_integers() {
        let mut rng = StdRng::seed_from_u64(17);
        let d = Poisson::new(2.5).unwrap();
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!(v >= 0.0 && v.fract() == 0.0);
        }
    }
}
