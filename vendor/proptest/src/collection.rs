//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A target size for a generated collection (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.min < self.max, "empty collection size range");
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>`. Duplicates collapse, so the
/// resulting set can be smaller than the drawn size (as in real
/// proptest the size bounds the number of insertions).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.sample(rng).max(1);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::new(1);
        let s = vec(0i64..10, 3..7);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn nested_vec_and_set() {
        let mut rng = TestRng::new(2);
        let s = vec(vec(0.0f64..1.0, 3), 2..5);
        let v = s.sample(&mut rng);
        assert!(v.iter().all(|row| row.len() == 3));
        let t = btree_set(0i64..5, 1..20);
        let set = t.sample(&mut rng);
        assert!(!set.is_empty() && set.len() <= 5);
    }
}
