//! `any::<T>()` and the `Arbitrary` trait for unconstrained sampling.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types that can be sampled without an explicit strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// An unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bias towards edge cases (as real proptest does): one draw in
        // eight is a special value, the rest are wide-range finite.
        const SPECIALS: [f64; 8] = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ];
        if rng.below(8) == 0 {
            SPECIALS[rng.below(SPECIALS.len() as u64) as usize]
        } else {
            (rng.unit_f64() - 0.5) * 2.0e12
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.below(4) == 0 {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('?')
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::new(5);
        let mut t = false;
        let mut f = false;
        for _ in 0..100 {
            if bool::arbitrary(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }

    #[test]
    fn f64_hits_specials() {
        let mut rng = TestRng::new(11);
        let mut saw_nonfinite = false;
        for _ in 0..500 {
            saw_nonfinite |= !f64::arbitrary(&mut rng).is_finite();
        }
        assert!(saw_nonfinite);
    }
}
