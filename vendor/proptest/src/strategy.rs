//! The `Strategy` trait and the primitive strategies (ranges, tuples,
//! `Just`, string patterns).

use std::ops::{Range, RangeInclusive};

use crate::string::sample_pattern;
use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply samples.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String-pattern strategy: a `&'static str` is interpreted as a small
/// regex subset (char classes, `{m,n}` repetitions), as in real
/// proptest.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies!((A: 0, B: 1) (A: 0, B: 1, C: 2) (A: 0, B: 1, C: 2, D: 3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = TestRng::new(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..2000 {
            let x = (0i64..4).sample(&mut rng);
            assert!((0..4).contains(&x));
            lo |= x == 0;
            hi |= x == 3;
        }
        assert!(lo && hi);
        let y = (-5i64..=-5).sample(&mut rng);
        assert_eq!(y, -5);
    }

    #[test]
    fn tuples_and_just() {
        let mut rng = TestRng::new(9);
        let (a, b) = (0u8..10, Just(7i64)).sample(&mut rng);
        assert!(a < 10);
        assert_eq!(b, 7);
    }
}
