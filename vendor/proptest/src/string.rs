//! A tiny regex-subset sampler backing `&'static str` strategies.
//!
//! Supported syntax: literal characters, character classes
//! `[a-z0-9_]` (ranges and single chars, no negation), and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones are
//! capped at 8 repetitions).

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in `{pattern}`"
                );
                i += 1; // closing ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in `{pattern}`");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated repetition in `{pattern}`"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repetition lower bound"),
                            hi.trim().parse().expect("bad repetition upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad repetition count");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition bounds in `{pattern}`");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            assert!(total > 0, "empty character class");
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                }
                pick -= span;
            }
            unreachable!()
        }
    }
}

/// Samples one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::new(4);
        for _ in 0..200 {
            let s = sample_pattern("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::new(4);
        let s = sample_pattern("ab[0-9]{2}c?", &mut rng);
        assert!(s.starts_with("ab"));
        let digits: String = s[2..4].to_string();
        assert!(digits.chars().all(|c| c.is_ascii_digit()));
    }
}
