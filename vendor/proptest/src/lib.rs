//! Offline vendored stand-in for `proptest`.
//!
//! Keeps the workspace's property tests running without network access.
//! Same programming model as real proptest — strategies sampled per
//! case, `prop_assert!`-style early exits, rejection via
//! `prop_assume!` — with two deliberate simplifications: no shrinking
//! (the failing inputs are printed as generated) and no failure
//! persistence (sampling is derived deterministically from the test
//! name, so failures reproduce across runs by construction).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the `proptest!` macro and its callers need in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` works as with
    /// real proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are sampled from
/// strategies (`name in strategy`) or from [`arbitrary::Arbitrary`]
/// (`name: Type`).
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            const CASES: usize = 64;
            let mut __rng =
                $crate::test_runner::TestRng::from_test_name(stringify!($name));
            let mut __accepted = 0usize;
            let mut __attempts = 0usize;
            while __accepted < CASES {
                __attempts += 1;
                assert!(
                    __attempts < CASES * 256,
                    "proptest {}: too many rejected cases ({} attempts)",
                    stringify!($name),
                    __attempts,
                );
                let mut __inputs = ::std::string::String::new();
                $crate::__proptest_bindings!(__rng, __inputs; $($params)*);
                let __outcome = (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => panic!(
                        "proptest {} failed on case {}: {}\n  inputs: {}",
                        stringify!($name),
                        __accepted,
                        __msg,
                        __inputs,
                    ),
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal: expands the parameter list of a `proptest!` test into
/// sampled `let` bindings, recording a debug rendering of each input.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident, $dbg:ident;) => {};
    ($rng:ident, $dbg:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_record!($dbg, $name);
    };
    ($rng:ident, $dbg:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_record!($dbg, $name);
        $crate::__proptest_bindings!($rng, $dbg; $($rest)*);
    };
    ($rng:ident, $dbg:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_record!($dbg, $name);
    };
    ($rng:ident, $dbg:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_record!($dbg, $name);
        $crate::__proptest_bindings!($rng, $dbg; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_record {
    ($dbg:ident, $name:ident) => {
        if !$dbg.is_empty() {
            $dbg.push_str(", ");
        }
        $dbg.push_str(&::std::format!("{} = {:?}", stringify!($name), $name));
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
        );
    }};
}

/// Rejects the current case (without failing) unless the assumption
/// holds; a fresh case is drawn instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, u in 1usize..9, f in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..9).contains(&u));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn collections_honour_size(
            xs in prop::collection::vec(any::<bool>(), 2..6),
            set in prop::collection::btree_set(0i64..100, 1..10),
        ) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(!set.is_empty() && set.len() < 10);
        }

        #[test]
        fn string_patterns_match(s in "[a-z]{1,6}") {
            prop_assert!((1..=6).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn assume_rejects(n in 0u64..10, seed: u64) {
            prop_assume!(n >= 5);
            let _ = seed;
            prop_assert!(n >= 5);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_test_name("t");
        let mut b = crate::test_runner::TestRng::from_test_name("t");
        let s = crate::collection::vec(0i64..1000, 5..20);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
