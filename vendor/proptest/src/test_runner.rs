//! Deterministic RNG and case outcome types for the vendored proptest.

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; draw another one.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// SplitMix64 generator. Deterministic per test name, so failures
/// reproduce without persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from raw state.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// A generator whose stream is a deterministic function of the test
    /// name (FNV-1a hash).
    pub fn from_test_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-sampling fidelity.
        self.next_u64() % n
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = TestRng::from_test_name("x");
        let mut b = TestRng::from_test_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_test_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_bounded() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
