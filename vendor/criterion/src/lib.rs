//! Offline vendored stand-in for `criterion`.
//!
//! Preserves the bench-authoring API (`benchmark_group`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!`) so `cargo bench` still produces timings, but does
//! plain mean-of-N wall-clock measurement instead of criterion's
//! statistical analysis.

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Positional CLI filters: a benchmark runs only when its
    /// `group/id` path contains at least one of them (empty = run all).
    filters: Vec<String>,
    /// `MFPA_BENCH_SAMPLES` override of every group's sample size
    /// (CI smoke runs set it to 1).
    sample_override: Option<usize>,
}

impl Criterion {
    /// Builds a driver configured from the process environment, the way
    /// `criterion_group!` invokes it: positional arguments become
    /// substring filters (`cargo bench -- hist`) and the
    /// `MFPA_BENCH_SAMPLES` variable caps the per-benchmark sample
    /// count.
    pub fn from_args() -> Self {
        Criterion {
            filters: std::env::args()
                .skip(1)
                .filter(|a| !a.starts_with('-'))
                .collect(),
            sample_override: std::env::var("MFPA_BENCH_SAMPLES")
                .ok()
                .and_then(|v| v.parse().ok()),
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let name = name.to_owned();
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            announced: false,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    announced: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark routine.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let path = format!("{}/{id}", self.name);
        let filters = &self.criterion.filters;
        if !filters.is_empty() && !filters.iter().any(|needle| path.contains(needle.as_str())) {
            return self;
        }
        if !self.announced {
            eprintln!("group {}", self.name);
            self.announced = true;
        }
        let samples = self
            .criterion
            .sample_override
            .unwrap_or(self.sample_size)
            .max(1);
        let mut b = Bencher {
            total_nanos: 0,
            iters: 0,
        };
        // One untimed warm-up pass, then the timed samples.
        f(&mut b);
        b.total_nanos = 0;
        b.iters = 0;
        for _ in 0..samples {
            f(&mut b);
        }
        let mean = b.total_nanos.checked_div(b.iters).unwrap_or(0);
        eprintln!("  {id}: {} ns/iter ({} iters)", mean, b.iters);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark routine to time its hot loop.
pub struct Bencher {
    total_nanos: u128,
    iters: u128,
}

impl Bencher {
    /// Times one execution of `routine` (the vendored stand-in runs a
    /// single iteration per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        let out = routine();
        self.total_nanos += t0.elapsed().as_nanos();
        self.iters += 1;
        drop(out);
    }
}

/// Re-export for compatibility; prefer `std::hint::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` harness-less bench binaries are still
            // executed; skip the timed work then.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group
            .sample_size(3)
            .bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn filters_and_sample_override_apply() {
        let mut c = Criterion {
            filters: vec!["hist".to_owned()],
            sample_override: Some(1),
        };
        let mut group = c.benchmark_group("hist");
        let mut runs = 0u32;
        group
            .sample_size(5)
            .bench_function("binned", |b| b.iter(|| runs += 1));
        group.finish();
        // Matches the "hist" filter; 1 warm-up + 1 overridden sample.
        assert_eq!(runs, 2);

        let mut c = Criterion {
            filters: vec!["hist".to_owned()],
            sample_override: None,
        };
        let mut group = c.benchmark_group("fit");
        let mut skipped = 0u32;
        group.bench_function("binned", |b| b.iter(|| skipped += 1));
        group.finish();
        // "fit/binned" does not contain "hist": never run.
        assert_eq!(skipped, 0);
    }
}
