//! Offline vendored stand-in for `criterion`.
//!
//! Preserves the bench-authoring API (`benchmark_group`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!`) so `cargo bench` still produces timings, but does
//! plain mean-of-N wall-clock measurement instead of criterion's
//! statistical analysis.

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark routine.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total_nanos: 0,
            iters: 0,
        };
        // One untimed warm-up pass, then the timed samples.
        f(&mut b);
        b.total_nanos = 0;
        b.iters = 0;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean = b.total_nanos.checked_div(b.iters).unwrap_or(0);
        eprintln!("  {id}: {} ns/iter ({} iters)", mean, b.iters);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark routine to time its hot loop.
pub struct Bencher {
    total_nanos: u128,
    iters: u128,
}

impl Bencher {
    /// Times one execution of `routine` (the vendored stand-in runs a
    /// single iteration per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        let out = routine();
        self.total_nanos += t0.elapsed().as_nanos();
        self.iters += 1;
        drop(out);
    }
}

/// Re-export for compatibility; prefer `std::hint::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` harness-less bench binaries are still
            // executed; skip the timed work then.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group
            .sample_size(3)
            .bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
