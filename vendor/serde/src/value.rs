//! The owned JSON-like value tree shared by the vendored `serde` and
//! `serde_json` crates.

use std::collections::BTreeMap;
use std::fmt;

/// Object storage. BTreeMap keeps key order deterministic (sorted), the
/// same observable behaviour as stock serde_json without
/// `preserve_order`.
pub type Map = BTreeMap<String, Value>;

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer (used when the source type was unsigned, so
    /// `u64::MAX` survives exactly).
    U64(u64),
    /// A float. Non-finite values are rendered as `null`, as in
    /// serde_json.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(Map),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A widened signed integer view of either integer variant.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::I64(x) => Some(i128::from(*x)),
            Value::U64(x) => Some(i128::from(*x)),
            Value::F64(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Some(*x as i128),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(x) => Some(*x as f64),
            Value::U64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member access: `value["key"]`, yielding `Null` when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeError {
    /// A free-form mismatch description.
    Message(String),
}

impl DeError {
    /// A "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::Message(format!("expected {what}, found {}", found.kind()))
    }

    /// A missing-field error.
    pub fn missing(field: &str) -> Self {
        DeError::Message(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeError::Message(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for DeError {}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_f64(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    if !x.is_finite() {
        return f.write_str("null");
    }
    if x == x.trunc() && x.abs() < 1e15 {
        // Keep floats recognisable as floats, like serde_json ("1.0").
        write!(f, "{x:.1}")
    } else {
        // `{}` on f64 prints the shortest representation that round-trips.
        write!(f, "{x}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(x) => write!(f, "{x}"),
            Value::U64(x) => write!(f, "{x}"),
            Value::F64(x) => write_f64(f, *x),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

macro_rules! from_int {
    ($($t:ty => $variant:ident),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::$variant(x as _)
            }
        }
    )*};
}

from_int!(
    i8 => I64, i16 => I64, i32 => I64, i64 => I64, isize => I64,
    u8 => U64, u16 => U64, u32 => U64, u64 => U64, usize => U64
);

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Value {
        Value::F64(f64::from(x))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Value {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Value {
        opt.map_or(Value::Null, Into::into)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_json() {
        let mut m = Map::new();
        m.insert("b".into(), Value::from(1u64));
        m.insert("a".into(), Value::from(vec![1.5f64, 2.0]));
        m.insert("s".into(), Value::from("x\"y"));
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"a":[1.5,2.0],"b":1,"s":"x\"y"}"#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Value::F64(f64::NAN).to_string(), "null");
        assert_eq!(Value::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let v = Value::Array(vec![Value::I64(-1), Value::U64(2)]);
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(v.as_array().unwrap()[0].as_i128(), Some(-1));
        assert!(v.as_object().is_none());
        assert_eq!(Value::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::String("s".into()).as_str(), Some("s"));
    }
}
