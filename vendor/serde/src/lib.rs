//! Offline vendored stand-in for `serde`.
//!
//! The real serde is a zero-copy, format-agnostic framework; this
//! stand-in keeps the workspace building without network access by
//! shipping the minimal contract the code actually relies on: derivable
//! [`Serialize`]/[`Deserialize`] traits that convert through an owned
//! JSON-like [`Value`] tree, which `serde_json` (also vendored) renders
//! to and parses from text. Externally-tagged enum encoding and
//! transparent newtypes follow real serde's defaults, so documented
//! serialised shapes stay familiar.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{DeError, Map, Value};

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty => $variant:ident),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::$variant(*self as _)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i128().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}

impl_int!(
    i8 => I64, i16 => I64, i32 => I64, i64 => I64, isize => I64,
    u8 => U64, u16 => U64, u32 => U64, u64 => U64, usize => U64
);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(x) => Ok(*x as f64),
            Value::U64(x) => Ok(*x as f64),
            // Real serde_json cannot represent non-finite floats and
            // writes them as null; accept the round-trip back.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::deserialize_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::Message(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $ix:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$ix.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == [$($ix),+].len() => {
                        Ok(($($name::deserialize_value(&items[$ix])?,)+))
                    }
                    _ => Err(DeError::expected("tuple array", v)),
                }
            }
        }
    )*};
}

impl_tuple!((A: 0) (A: 0, B: 1) (A: 0, B: 1, C: 2) (A: 0, B: 1, C: 2, D: 3));

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Sort keys so output is deterministic, like BTreeMap-backed
        // serde_json objects.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(
            i64::deserialize_value(&42i64.serialize_value()).unwrap(),
            42
        );
        assert_eq!(u8::deserialize_value(&7u8.serialize_value()).unwrap(), 7);
        assert!(bool::deserialize_value(&true.serialize_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::deserialize_value(&s.serialize_value()).unwrap(), s);
        assert!(u8::deserialize_value(&300i64.serialize_value()).is_err());
    }

    #[test]
    fn composite_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None, Some(-2.0)];
        let back: Vec<Option<f64>> = Deserialize::deserialize_value(&v.serialize_value()).unwrap();
        assert_eq!(back, v);
        let arr = [1u32, 2, 3];
        let back: [u32; 3] = Deserialize::deserialize_value(&arr.serialize_value()).unwrap();
        assert_eq!(back, arr);
        let wrong: Result<[u32; 4], _> = Deserialize::deserialize_value(&arr.serialize_value());
        assert!(wrong.is_err());
        let t = (1i64, String::from("x"));
        let back: (i64, String) = Deserialize::deserialize_value(&t.serialize_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn nan_round_trips_via_null() {
        let v = f64::NAN.serialize_value();
        // Value::F64(NaN) is written as null by serde_json; simulate that.
        let back = f64::deserialize_value(&Value::Null).unwrap();
        assert!(back.is_nan());
        assert!(matches!(v, Value::F64(x) if x.is_nan()));
    }
}
