//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the tiny subset of the `rand` API it actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (NOT cryptographically secure; this workspace only ever
//!   uses it for reproducible simulation and sampling),
//! * [`SeedableRng::seed_from_u64`],
//! * [`RngExt::random_range`] over integer and float ranges,
//! * [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Determinism is part of the contract: every sampler below is a pure
//! function of the generator state, so seeded runs are bit-reproducible.

/// Low-level generator interface: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Built-in generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type that can be sampled uniformly from a range by [`RngExt`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A scalar with a uniform sampler over half-open and inclusive ranges.
///
/// The single blanket `SampleRange` impl per range shape (mirroring real
/// rand's structure) is what lets `rng.random_range(0.5..1.5)` infer the
/// element type from the use site.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Debiased multiply-shift (Lemire): rejection keeps the draw exactly
    // uniform while almost never looping for the small spans used here.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u64;
                let off = uniform_u64_below(rng, span);
                ((lo as i128) + off as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let v = lo + (unit_f64(rng) as $t) * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a uniform value from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    #[inline]
    fn random(&mut self) -> f64 {
        unit_f64(self)
    }

    /// Draws `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Slice sampling helpers.
pub mod seq {
    use super::{uniform_u64_below, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_interval_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
        assert!([1u8; 0].choose(&mut rng).is_none());
        assert_eq!(*[9u8].choose(&mut rng).unwrap(), 9);
    }
}
