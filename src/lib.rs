//! Umbrella crate for the MFPA reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); it re-exports the public
//! crates so examples can use a single import root.
//!
//! See [`mfpa_core`] for the paper's contribution (the MFPA pipeline),
//! [`mfpa_fleetsim`] for the synthetic consumer-storage-system substrate,
//! and [`mfpa_ml`] for the from-scratch ML library.

pub use mfpa_core as core;
pub use mfpa_dataset as dataset;
pub use mfpa_fleetsim as fleetsim;
pub use mfpa_ml as ml;
pub use mfpa_telemetry as telemetry;
