//! Feature explorer: which of the 45 multidimensional features actually
//! carry the failure signal?
//!
//! Trains a Random Forest on the full SFWB row and prints the top
//! importances — reproducing §IV(2.2)'s observation that attributes like
//! media errors, power cycles, `W_11`, `W_49`, `W_51`, `W_161`, `B_50`
//! and `B_7A` "require special attention" — then contrasts every Table V
//! feature group.
//!
//! ```text
//! cargo run --release --example feature_explorer
//! ```

use mfpa_core::{Algorithm, CoreError, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_dataset::RandomUnderSampler;
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};
use mfpa_ml::{Classifier, RandomForest};

fn main() -> Result<(), CoreError> {
    let fleet = SimulatedFleet::generate(&FleetConfig::tiny(5));

    // Assemble the labelled sample frame once.
    let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
    let prepared = mfpa.prepare(&fleet)?;
    let frame = &prepared.samples().flat;
    println!(
        "{} samples ({} positive) over {} drives",
        frame.n_rows(),
        frame.n_positive(),
        prepared.n_series()
    );

    // Fit one forest on balanced data and rank feature importances.
    let kept = RandomUnderSampler::new(3.0, 1)?.sample(frame.labels());
    let sub = frame.select_rows(&kept);
    let mut rf = RandomForest::new(120, 12).with_seed(3);
    rf.fit(sub.matrix(), sub.labels())?;
    let mut ranked: Vec<(String, f64)> = frame
        .feature_names()
        .iter()
        .cloned()
        .zip(rf.feature_importances())
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!("\ntop 12 features by split-gain importance:");
    for (name, imp) in ranked.iter().take(12) {
        let bars = "#".repeat((imp / ranked[0].1 * 30.0).round() as usize);
        println!("  {name:<12} {:>6.3} {bars}", imp);
    }

    // Feature-group shoot-out.
    println!("\nfeature-group comparison (drive-level):");
    for group in FeatureGroup::ALL {
        let report = Mfpa::new(MfpaConfig::new(group, Algorithm::RandomForest)).run(&fleet)?;
        println!(
            "  {:<5} TPR={:6.2}% FPR={:5.2}% AUC={:.4}",
            group.name(),
            report.drive.tpr() * 100.0,
            report.drive.fpr() * 100.0,
            report.drive.auc
        );
    }
    Ok(())
}
