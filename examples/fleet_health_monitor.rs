//! Fleet health monitor: the deployment scenario from the paper's
//! introduction — proactively flag consumer machines whose SSD is about
//! to fail so data can be backed up *before* the blue screen.
//!
//! Trains MFPA on the first 70% of the observation campaign, then scores
//! every drive's most recent telemetry and prints the at-risk ranking a
//! PC manufacturer's support backend would push notifications from.
//!
//! ```text
//! cargo run --release --example fleet_health_monitor
//! ```

use mfpa_core::{Algorithm, CoreError, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};

fn main() -> Result<(), CoreError> {
    let fleet = SimulatedFleet::generate(&FleetConfig::tiny(7));
    let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
    let prepared = mfpa.prepare(&fleet)?;

    // Train on the learning window (first 70% of sample time).
    let times = prepared.samples().flat.times();
    let split = mfpa_dataset::split::timepoint_split_fraction(&times, 0.7)?;
    let trained = mfpa.train_rows(&prepared, &split.train)?;
    println!(
        "trained {} on {} balanced samples",
        trained.model_name(),
        trained.n_train_rows()
    );

    // "Live" scoring: the single most recent row of each drive in the
    // deployment window.
    let meta = prepared.samples().flat.meta();
    let mut latest: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for &row in &split.test {
        let e = latest.entry(meta[row].group).or_insert(row);
        if meta[row].time > meta[*e].time {
            *e = row;
        }
    }
    let rows: Vec<usize> = latest.values().copied().collect();
    let scores = trained.predict_rows(&prepared, &rows)?;

    let mut ranked: Vec<(usize, f64)> = rows.iter().copied().zip(scores).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    println!("\ntop 10 at-risk drives (back up NOW):");
    println!(
        "  {:<22} {:>8} {:>12} {:>10}",
        "drive group", "day", "P(failure)", "actual"
    );
    let failure_groups: std::collections::HashSet<u64> = prepared
        .failure_days()
        .keys()
        .map(|s| mfpa_core::windows::group_of(*s))
        .collect();
    for &(row, p) in ranked.iter().take(10) {
        let m = &meta[row];
        let actual = if failure_groups.contains(&m.group) {
            "FAILED"
        } else {
            "healthy"
        };
        println!(
            "  {:<22} {:>8} {:>11.1}% {:>10}",
            m.group,
            m.time,
            p * 100.0,
            actual
        );
    }

    let flagged = ranked.iter().filter(|&&(_, p)| p >= 0.5).count();
    println!(
        "\n{} of {} monitored drives flagged for proactive data migration",
        flagged,
        ranked.len()
    );
    Ok(())
}
