//! Quickstart: generate a small synthetic consumer-SSD fleet, train the
//! SFWB-based MFPA model, and print its evaluation report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mfpa_core::{Algorithm, CoreError, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};

fn main() -> Result<(), CoreError> {
    // A small fleet: ~4.7k drives, a boosted hazard so failures exist.
    let fleet_config = FleetConfig::tiny(2024);
    println!("generating fleet …");
    let fleet = SimulatedFleet::generate(&fleet_config);
    println!(
        "fleet: {} drives instantiated, {} with telemetry, {} failures, {} tickets",
        fleet.population(),
        fleet.drives().len(),
        fleet.failures().len(),
        fleet.tickets().len()
    );

    // The paper's winning configuration: SFWB features + Random Forest,
    // θ = 7, 14-day positive window, 3:1 under-sampling, timepoint split.
    let config = MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest);
    println!("training MFPA ({}) …", config.label());
    let report = Mfpa::new(config).run(&fleet)?;
    println!("{report}");

    // Contrast with the traditional SMART-only model.
    let smart_only = MfpaConfig::new(FeatureGroup::S, Algorithm::RandomForest);
    let baseline = Mfpa::new(smart_only).run(&fleet)?;
    println!("{baseline}");

    println!(
        "\nSFWB vs S: TPR {:+.2} pp, FPR {:+.2} pp (the paper's headline: +4 pp TPR, −86% FPR)",
        (report.drive.tpr() - baseline.drive.tpr()) * 100.0,
        (report.drive.fpr() - baseline.drive.fpr()) * 100.0,
    );
    Ok(())
}
