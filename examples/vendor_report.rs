//! Vendor reliability report: the view an SSD procurement team would
//! pull from the telemetry — replacement rates per vendor (Table VI),
//! firmware-version risk (Fig 3 / Obs #2), and how well a per-vendor
//! failure-prediction model works (Fig 11's portability question).
//!
//! ```text
//! cargo run --release --example vendor_report
//! ```

use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};
use mfpa_telemetry::Vendor;

fn main() {
    let fleet = SimulatedFleet::generate(&FleetConfig::tiny(99));

    println!("== fleet replacement rates ==");
    for s in fleet.stats() {
        println!(
            "  vendor {:<4} population {:>7}  failures {:>5}  RR {:.4}",
            s.vendor.to_string(),
            s.population,
            s.failures,
            s.replacement_rate()
        );
    }

    println!("\n== firmware risk (update your oldest firmware!) ==");
    for fs in fleet.firmware_stats() {
        let flag = if fs.failure_rate() > 0.02 {
            "  <-- elevated"
        } else {
            ""
        };
        println!(
            "  {:<8} raw '{}' rate {:.4}{}",
            fs.firmware.label(),
            fs.firmware.raw(),
            fs.failure_rate(),
            flag
        );
    }

    println!("\n== per-vendor MFPA model quality (SFWB + RF) ==");
    for vendor in Vendor::ALL {
        let cfg = MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest).with_vendor(vendor);
        match Mfpa::new(cfg).run(&fleet) {
            Ok(r) => println!(
                "  vendor {:<4} AUC {:.4}  TPR {:6.2}%  FPR {:5.2}%  ({} test drives, {} faulty)",
                vendor.to_string(),
                r.drive.auc,
                r.drive.tpr() * 100.0,
                r.drive.fpr() * 100.0,
                r.n_test_drives,
                r.n_failed_test_drives
            ),
            // Vendor IV often has too few faulty drives — exactly the
            // paper's finding.
            Err(e) => println!("  vendor {:<4} model unusable: {e}", vendor.to_string()),
        }
    }
}
