#!/usr/bin/env bash
# Repository gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

# Severities come from [workspace.lints] in the root Cargo.toml
# (warnings + clippy::all + clippy::perf are errors); no ad-hoc -D flags.
echo "== cargo clippy (workspace) =="
cargo clippy --workspace --all-targets

echo "== mfpa-lint (determinism rule catalog, DESIGN.md §8) =="
cargo build --release -q -p mfpa-lint
target/release/mfpa-lint

echo "== mfpa-lint negative smoke: an injected violation must fail the gate =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
mkdir -p "$smoke_dir/crates/core/src"
printf '[workspace]\nmembers = []\n' > "$smoke_dir/Cargo.toml"
printf 'pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n' \
    > "$smoke_dir/crates/core/src/lib.rs"
if target/release/mfpa-lint --root "$smoke_dir" > /dev/null; then
    echo "error: mfpa-lint did not flag an injected unwrap()" >&2
    exit 1
fi
echo "injected violation caught, as expected"

echo "== criterion smoke: histogram vs exact split search (1 sample) =="
MFPA_BENCH_SAMPLES=1 cargo bench -p mfpa-bench --bench models -- hist

# The workspace runs below include the exact<->binned parity proptests
# (crates/ml/tests/binned_parity.rs) at both worker counts.
echo "== cargo test (workspace, MFPA_THREADS=1) =="
MFPA_THREADS=1 cargo test -q --workspace

echo "== cargo test (workspace, MFPA_THREADS=4) =="
MFPA_THREADS=4 cargo test -q --workspace

echo "All checks passed."
