#!/usr/bin/env bash
# Repository gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace, MFPA_THREADS=1) =="
MFPA_THREADS=1 cargo test -q --workspace

echo "== cargo test (workspace, MFPA_THREADS=4) =="
MFPA_THREADS=4 cargo test -q --workspace

echo "All checks passed."
