#!/usr/bin/env bash
# Repository gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

# Severities come from [workspace.lints] in the root Cargo.toml
# (warnings + clippy::all + clippy::perf are errors); no ad-hoc -D flags.
echo "== cargo clippy (workspace) =="
cargo clippy --workspace --all-targets

echo "== mfpa-lint (determinism rule catalog, DESIGN.md §8) =="
cargo build --release -q -p mfpa-lint
target/release/mfpa-lint

echo "== mfpa-lint snapshot freshness: results/lint_report.json must match a fresh scan =="
fresh_report="$(mktemp)"
trap 'rm -f "$fresh_report"' EXIT
target/release/mfpa-lint --report "$fresh_report" > /dev/null
if ! diff -q results/lint_report.json "$fresh_report" > /dev/null; then
    echo "error: results/lint_report.json is stale — run 'repro lint' and commit the diff" >&2
    diff -u results/lint_report.json "$fresh_report" | head -40 >&2 || true
    exit 1
fi
echo "snapshot is fresh"

echo "== mfpa-lint waiver ratchet: allow count may only go down =="
# Ceiling on the committed waiver count in results/lint_report.json.
# The count may only decrease over time; a PR that genuinely needs a
# new allow must bump this constant in the same commit, with a comment
# saying which waiver was added and why. History: 16 through PR 8;
# 17 since PR 9 (one d12 waiver: the slot-0 bootstrap index in
# CompiledEnsemble::from_bytes, justified in the snapshot). Unchanged
# in PR 10: the value-range rules d13-d15 landed with zero new
# waivers — every flagged site was made provable instead (is_empty
# early-returns, a right_n < 1.0 guard, one u32 annotation).
max_allows=17
n_allows="$(grep -o '"allows": [0-9]*' results/lint_report.json | awk '{s+=$2} END {print s+0}')"
if [ "$n_allows" -gt "$max_allows" ]; then
    echo "error: results/lint_report.json carries $n_allows waivers, ceiling is $max_allows" >&2
    echo "       remove the new allow or bump max_allows in scripts/check.sh with a justification" >&2
    exit 1
fi
echo "waiver count $n_allows <= ceiling $max_allows"

echo "== mfpa-lint fixture workspace: all output formats over tests/fixtures/ws =="
fixture_ws="crates/lint/tests/fixtures/ws"
for fmt in human json sarif; do
    # The fixture workspace contains planted violations; exit 1 is the
    # expected outcome, anything else (0 = missed, 2 = crashed) fails.
    status=0
    target/release/mfpa-lint --root "$fixture_ws" --format "$fmt" > /dev/null || status=$?
    if [ "$status" -ne 1 ]; then
        echo "error: fixture workspace lint (--format $fmt) exited $status, expected 1" >&2
        exit 1
    fi
done
echo "fixture violations reported in all three formats"

echo "== mfpa-lint negative smoke: injected violations must fail the gate =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$fresh_report"' EXIT
mkdir -p "$smoke_dir/crates/core/src"
printf '[workspace]\nmembers = []\n' > "$smoke_dir/Cargo.toml"
printf 'pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n' \
    > "$smoke_dir/crates/core/src/lib.rs"
if target/release/mfpa-lint --root "$smoke_dir" > /dev/null; then
    echo "error: mfpa-lint did not flag an injected unwrap()" >&2
    exit 1
fi
cat > "$smoke_dir/crates/core/src/deploy.rs" <<'RS'
use std::collections::HashMap;

pub fn score_fleet(scores: &HashMap<String, f64>) -> Vec<f64> {
    scores.values().cloned().collect()
}
RS
rm "$smoke_dir/crates/core/src/lib.rs"
if target/release/mfpa-lint --root "$smoke_dir" > /dev/null; then
    echo "error: mfpa-lint did not flag HashMap iteration reaching score_fleet (d7)" >&2
    exit 1
fi
echo "injected violations caught, as expected"

echo "== dataflow negative smokes: d10/d11/d12 injections must fail the scan =="
# d10: order-sensitive f64 accumulation captured by a par-combinator
# closure — the sum depends on worker interleaving.
cat > "$smoke_dir/crates/core/src/deploy.rs" <<'RS'
pub fn total(rows: &[f64]) -> f64 {
    let mut total = 0.0;
    let workers = mfpa_par::Workers::from_config(0);
    let _scored = mfpa_par::ordered_map(rows, workers, |_, r| {
        total += *r;
        *r
    });
    total
}
RS
if target/release/mfpa-lint --root "$smoke_dir" > /dev/null; then
    echo "error: mfpa-lint did not flag an unordered f64 += in a par closure (d10)" >&2
    exit 1
fi
# d11: the encoder writes count (u64) then scale (f64); the decoder
# reads them swapped.
cat > "$smoke_dir/crates/core/src/deploy.rs" <<'RS'
pub fn encode_header(h: &(u32, u64, f64), w: &mut ByteWriter) {
    w.u32(h.0);
    w.u64(h.1);
    w.f64(h.2);
}

pub fn decode_header(rd: &mut ByteReader) -> Result<(u32, u64, f64), String> {
    let magic = rd.u32()?;
    let scale = rd.f64()?;
    let count = rd.u64()?;
    Ok((magic, count, scale))
}
RS
if target/release/mfpa-lint --root "$smoke_dir" > /dev/null; then
    echo "error: mfpa-lint did not flag a swapped encode field (d11)" >&2
    exit 1
fi
# d12: decode-reachable slice indexing whose length guard was removed.
cat > "$smoke_dir/crates/core/src/deploy.rs" <<'RS'
pub mod checkpoint {
    pub fn restore(data: &[u8]) -> u8 {
        super::parse_frame(data)
    }
}

fn parse_frame(data: &[u8]) -> u8 {
    data[4]
}
RS
if target/release/mfpa-lint --root "$smoke_dir" > /dev/null; then
    echo "error: mfpa-lint did not flag an unguarded decode-reachable index (d12)" >&2
    exit 1
fi
echo "d10/d11/d12 injections caught, as expected"

echo "== value-range negative smokes: d13/d14/d15 injections must fail the scan =="
# d13: counter subtraction with no proof that the window stays below
# the accumulated count — wraps to ~2^64 when it does not.
cat > "$smoke_dir/crates/core/src/deploy.rs" <<'RS'
pub fn score_fleet(day_count: u64, reorder_window: u64) -> u64 {
    day_count - reorder_window
}
RS
if target/release/mfpa-lint --root "$smoke_dir" > /dev/null; then
    echo "error: mfpa-lint did not flag an unproven counter subtraction (d13)" >&2
    exit 1
fi
# d14: a metrics ratio whose integer denominator may be zero.
cat > "$smoke_dir/crates/core/src/deploy.rs" <<'RS'
pub fn score_fleet(total_errs: u64, n_drives: u64) -> f64 {
    total_errs as f64 / n_drives as f64
}
RS
if target/release/mfpa-lint --root "$smoke_dir" > /dev/null; then
    echo "error: mfpa-lint did not flag a maybe-zero denominator (d14)" >&2
    exit 1
fi
# d15: milliseconds added to days — dimensional nonsense the type
# system cannot see.
cat > "$smoke_dir/crates/core/src/deploy.rs" <<'RS'
pub fn score_fleet(uptime_ms: u64, age_days: u64) -> u64 {
    uptime_ms + age_days
}
RS
if target/release/mfpa-lint --root "$smoke_dir" > /dev/null; then
    echo "error: mfpa-lint did not flag a cross-unit sum (d15)" >&2
    exit 1
fi
echo "d13/d14/d15 injections caught, as expected"

echo "== criterion smoke: histogram vs exact split search (1 sample) =="
MFPA_BENCH_SAMPLES=1 cargo bench -p mfpa-bench --bench models -- hist

echo "== repro serve smoke: replay + crash recovery at reduced scale =="
# The serve experiment asserts the fault-tolerance contract internally
# (kill-and-restore bit-identity, quarantine of poison drives, refusal
# of a bit-flipped checkpoint); any violation panics. Run from a temp
# cwd so the committed BENCH_PR6.json is not overwritten.
cargo build --release -q -p mfpa-bench
serve_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$fresh_report" "$serve_dir"' EXIT
(cd "$serve_dir" && "$OLDPWD/target/release/repro" serve --fraction 0.004 --horizon 120 > serve.log 2>&1) || {
    echo "error: repro serve smoke failed" >&2
    tail -30 "$serve_dir/serve.log" >&2
    exit 1
}
for must in "replay is bit-identical" "bit-flipped checkpoint refused"; do
    if ! grep -q "$must" "$serve_dir/serve.log"; then
        echo "error: serve smoke output is missing \"$must\"" >&2
        exit 1
    fi
done
echo "serve smoke passed (recovery bit-identical, corrupt checkpoint refused)"

echo "== compiled inference smoke: cross-process .mfpac round trip =="
# `save` compiles in one process, `load` decodes and rescores in a
# *fresh* process (the artifact is the only thing crossing), `corrupt`
# flips one bit and must be refused with a structured error.
cargo build --release -q -p mfpa-ml --example mfpac_smoke
mfpac_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$fresh_report" "$serve_dir" "$mfpac_dir"' EXIT
target/release/examples/mfpac_smoke save "$mfpac_dir"
target/release/examples/mfpac_smoke load "$mfpac_dir"
target/release/examples/mfpac_smoke corrupt "$mfpac_dir"
echo "compiled round trip bit-identical across processes, corruption refused"

echo "== compiled parity proptests (interpreted == compiled, bit for bit) =="
cargo test --release -q -p mfpa-ml --test compiled_parity

echo "== crash-recovery equivalence gate (every batch boundary) =="
cargo test --release -q -p mfpa-suite --test fleet_monitor -- \
    kill_and_restore_is_bit_identical_at_every_batch_boundary \
    corrupted_checkpoints_are_always_refused

# The workspace runs below include the exact<->binned parity proptests
# (crates/ml/tests/binned_parity.rs) at both worker counts.
echo "== cargo test (workspace, MFPA_THREADS=1) =="
MFPA_THREADS=1 cargo test -q --workspace

echo "== cargo test (workspace, MFPA_THREADS=4) =="
MFPA_THREADS=4 cargo test -q --workspace

echo "All checks passed."
