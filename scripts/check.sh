#!/usr/bin/env bash
# Repository gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, warnings + perf lints are errors) =="
cargo clippy --workspace --all-targets -- -D warnings -D clippy::perf

echo "== criterion smoke: histogram vs exact split search (1 sample) =="
MFPA_BENCH_SAMPLES=1 cargo bench -p mfpa-bench --bench models -- hist

# The workspace runs below include the exact<->binned parity proptests
# (crates/ml/tests/binned_parity.rs) at both worker counts.
echo "== cargo test (workspace, MFPA_THREADS=1) =="
MFPA_THREADS=1 cargo test -q --workspace

echo "== cargo test (workspace, MFPA_THREADS=4) =="
MFPA_THREADS=4 cargo test -q --workspace

echo "All checks passed."
