//! Tabular dataset substrate for the MFPA reproduction.
//!
//! The paper's pipeline (§III-C) needs more than a feature matrix: samples
//! carry a *group* (which drive they came from) and a *time* (which day),
//! because both the sample segmentation and the cross-validation must
//! respect chronology — a model must never be trained on future data
//! (Fig 8). This crate provides:
//!
//! * [`Matrix`] — a dense row-major `f64` matrix,
//! * [`FeatureFrame`] — matrix + feature names + per-row [`SampleMeta`]
//!   (group, time, tag) + boolean labels,
//! * [`split`] — plain ratio splits and the paper's timepoint-based
//!   segmentation (Fig 8(a)),
//! * [`cv`] — classic k-fold and the paper's time-series cross-validation
//!   (Fig 8(b)),
//! * [`RandomUnderSampler`] — the class balancer of §III-C(3),
//! * [`LabelEncoder`] — label encoding for character firmware versions,
//! * [`StandardScaler`] — per-column standardisation for SVM / NN models.
//!
//! # Example
//!
//! ```
//! use mfpa_dataset::{FeatureFrame, SampleMeta};
//!
//! let mut frame = FeatureFrame::new(vec!["a".into(), "b".into()]);
//! frame.push_row(&[1.0, 2.0], SampleMeta::new(0, 10), true).unwrap();
//! frame.push_row(&[3.0, 4.0], SampleMeta::new(1, 11), false).unwrap();
//! assert_eq!(frame.n_rows(), 2);
//! assert_eq!(frame.n_positive(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cv;
mod encode;
mod error;
mod frame;
mod matrix;
mod sampler;
mod scale;
pub mod split;
pub mod stats;

pub use encode::LabelEncoder;
pub use error::DatasetError;
pub use frame::{FeatureFrame, SampleMeta};
pub use matrix::Matrix;
pub use sampler::RandomUnderSampler;
pub use scale::StandardScaler;
