//! Cross-validation strategies (Fig 8(b) of the paper).
//!
//! Classic k-fold CV lets a fold train on data newer than its validation
//! fold. The paper's time-series CV divides samples into `2k` chronological
//! subsets; iteration `i` trains on the `k` consecutive subsets starting at
//! `i` and validates on subset `i + k`, so the model is never trained on
//! future samples.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::DatasetError;

/// One cross-validation fold: training and validation row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training row indices.
    pub train: Vec<usize>,
    /// Validation row indices.
    pub validate: Vec<usize>,
}

/// Classic shuffled k-fold CV (Fig 8(b)(1)).
///
/// # Errors
///
/// Returns [`DatasetError::InvalidParameter`] if `k < 2` or `k > n`.
///
/// # Example
///
/// ```
/// use mfpa_dataset::cv::kfold;
///
/// let folds = kfold(10, 5, 42)?;
/// assert_eq!(folds.len(), 5);
/// assert!(folds.iter().all(|f| f.validate.len() == 2 && f.train.len() == 8));
/// # Ok::<(), mfpa_dataset::DatasetError>(())
/// ```
pub fn kfold(n: usize, k: usize, seed: u64) -> Result<Vec<Fold>, DatasetError> {
    if k < 2 || k > n {
        return Err(DatasetError::InvalidParameter(format!(
            "k must be in [2, n]; got k={k}, n={n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for i in 0..k {
        // Fold i validates on the i-th of k nearly-equal chunks.
        let lo = i * n / k;
        let hi = (i + 1) * n / k;
        let validate = indices[lo..hi].to_vec();
        let train: Vec<usize> = indices[..lo]
            .iter()
            .chain(&indices[hi..])
            .copied()
            .collect();
        folds.push(Fold { train, validate });
    }
    Ok(folds)
}

/// The paper's time-series CV (Fig 8(b)(2)).
///
/// Rows are ordered by `times` and divided into `2k` chronological subsets
/// (labelled `1 … 2k`). Iteration `i ∈ 0..k` trains on subsets
/// `i+1 … i+k` and validates on subset `i+k+1`, so training data always
/// precedes validation data.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidParameter`] if `k < 1` or there are fewer
/// than `2k` samples, and [`DatasetError::Empty`] for an empty slice.
///
/// # Example
///
/// ```
/// use mfpa_dataset::cv::time_series_cv;
///
/// let times: Vec<i64> = (0..20).collect();
/// let folds = time_series_cv(&times, 2)?;
/// assert_eq!(folds.len(), 2);
/// // Every training sample precedes every validation sample.
/// for f in &folds {
///     let max_train = f.train.iter().map(|&i| times[i]).max().unwrap();
///     let min_val = f.validate.iter().map(|&i| times[i]).min().unwrap();
///     assert!(max_train <= min_val);
/// }
/// # Ok::<(), mfpa_dataset::DatasetError>(())
/// ```
pub fn time_series_cv(times: &[i64], k: usize) -> Result<Vec<Fold>, DatasetError> {
    if times.is_empty() {
        return Err(DatasetError::Empty);
    }
    if k < 1 {
        return Err(DatasetError::InvalidParameter("k must be >= 1".into()));
    }
    let n = times.len();
    let subsets = 2 * k;
    if n < subsets {
        return Err(DatasetError::InvalidParameter(format!(
            "need at least 2k = {subsets} samples for time-series CV, got {n}"
        )));
    }
    // Chronological order; stable tie-break on original index keeps the
    // construction deterministic.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (times[i], i));
    // Chunk boundaries of the 2k nearly-equal subsets.
    let bounds: Vec<usize> = (0..=subsets).map(|j| j * n / subsets).collect();
    let subset = |j: usize| -> &[usize] { &order[bounds[j]..bounds[j + 1]] };

    let mut folds = Vec::with_capacity(k);
    for i in 0..k {
        let mut train = Vec::new();
        for j in i..i + k {
            train.extend_from_slice(subset(j));
        }
        let validate = subset(i + k).to_vec();
        folds.push(Fold { train, validate });
    }
    Ok(folds)
}

/// Checks that every fold trains strictly on data no newer than its
/// validation data (the property time-series CV guarantees).
pub fn folds_chronologically_sound(folds: &[Fold], times: &[i64]) -> bool {
    folds.iter().all(|f| {
        let max_train = f.train.iter().map(|&i| times[i]).max();
        let min_val = f.validate.iter().map(|&i| times[i]).min();
        match (max_train, min_val) {
            (Some(a), Some(b)) => a <= b,
            _ => true,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kfold_partitions_validation_sets() {
        let folds = kfold(23, 4, 9).unwrap();
        let mut seen: Vec<usize> = folds.iter().flat_map(|f| f.validate.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        for f in &folds {
            assert_eq!(f.train.len() + f.validate.len(), 23);
        }
    }

    #[test]
    fn kfold_validates_params() {
        assert!(kfold(5, 1, 0).is_err());
        assert!(kfold(3, 4, 0).is_err());
    }

    #[test]
    fn kfold_deterministic() {
        assert_eq!(kfold(10, 2, 5).unwrap(), kfold(10, 2, 5).unwrap());
    }

    #[test]
    fn ts_cv_produces_k_folds_over_2k_subsets() {
        let times: Vec<i64> = (0..40).rev().collect(); // unsorted input
        let folds = time_series_cv(&times, 3).unwrap();
        assert_eq!(folds.len(), 3);
        assert!(folds_chronologically_sound(&folds, &times));
        // Each training set spans k subsets ≈ half the data.
        for f in &folds {
            assert!(
                f.train.len() >= 18 && f.train.len() <= 21,
                "{}",
                f.train.len()
            );
            assert!(!f.validate.is_empty());
        }
    }

    #[test]
    fn ts_cv_handles_duplicate_times() {
        let times = vec![5; 16];
        let folds = time_series_cv(&times, 2).unwrap();
        assert!(folds_chronologically_sound(&folds, &times));
    }

    #[test]
    fn ts_cv_validates_params() {
        assert!(time_series_cv(&[], 2).is_err());
        assert!(time_series_cv(&[1, 2, 3], 2).is_err());
    }

    #[test]
    fn plain_kfold_violates_chronology() {
        let times: Vec<i64> = (0..30).collect();
        let folds = kfold(30, 3, 1).unwrap();
        assert!(!folds_chronologically_sound(&folds, &times));
    }
}
