//! Per-column standardisation.
//!
//! SVM and neural-network models are sensitive to feature scale; SMART
//! counters span ten orders of magnitude (host writes vs critical-warning
//! bits), so the pipeline standardises columns to zero mean / unit
//! variance before feeding those models. Tree models are scale-invariant
//! and skip this step.

use serde::{Deserialize, Serialize};

use crate::error::DatasetError;
use crate::matrix::Matrix;

/// Fitted per-column standardiser: `x' = (x - mean) / std`.
///
/// Constant columns (zero variance) are mapped to zero rather than NaN.
///
/// # Example
///
/// ```
/// use mfpa_dataset::{Matrix, StandardScaler};
///
/// let train = Matrix::from_rows(&[vec![0.0, 5.0], vec![2.0, 5.0]]).unwrap();
/// let scaler = StandardScaler::fit(&train)?;
/// let scaled = scaler.transform(&train)?;
/// assert!((scaled.get(0, 0) + 1.0).abs() < 1e-12);
/// assert_eq!(scaled.get(0, 1), 0.0); // constant column
/// # Ok::<(), mfpa_dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations on the training matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Empty`] if the matrix has no rows.
    pub fn fit(x: &Matrix) -> Result<Self, DatasetError> {
        if x.is_empty() {
            return Err(DatasetError::Empty);
        }
        let n = x.n_rows() as f64;
        let mut means = vec![0.0; x.n_cols()];
        for row in x.rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; x.n_cols()];
        for row in x.rows() {
            for ((s, v), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = v - m;
                *s += d * d;
            }
        }
        let stds = vars.into_iter().map(|v| (v / n).sqrt()).collect();
        Ok(StandardScaler { means, stds })
    }

    /// Applies the fitted transform.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::DimensionMismatch`] if the matrix width
    /// differs from the fitted width.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, DatasetError> {
        if x.n_cols() != self.means.len() {
            return Err(DatasetError::DimensionMismatch {
                expected: self.means.len(),
                actual: x.n_cols(),
            });
        }
        let mut out = Matrix::with_cols(x.n_cols());
        let mut buf = vec![0.0; x.n_cols()];
        for row in x.rows() {
            for (j, v) in row.iter().enumerate() {
                buf[j] = if self.stds[j] > 0.0 {
                    (v - self.means[j]) / self.stds[j]
                } else {
                    0.0
                };
            }
            out.push_row(&buf)?;
        }
        Ok(out)
    }

    /// Fits and transforms in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`StandardScaler::fit`] errors.
    pub fn fit_transform(x: &Matrix) -> Result<(Self, Matrix), DatasetError> {
        let scaler = StandardScaler::fit(x)?;
        let scaled = scaler.transform(x)?;
        Ok((scaler, scaled))
    }

    /// Fitted per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-column standard deviations (population).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_to_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let (_, s) = StandardScaler::fit_transform(&x).unwrap();
        let col = s.column(0);
        let mean: f64 = col.iter().sum::<f64>() / 4.0;
        let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0]]).unwrap();
        let (_, s) = StandardScaler::fit_transform(&x).unwrap();
        assert_eq!(s.column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn transform_uses_training_stats() {
        let train = Matrix::from_rows(&[vec![0.0], vec![10.0]]).unwrap();
        let scaler = StandardScaler::fit(&train).unwrap();
        let test = Matrix::from_rows(&[vec![5.0]]).unwrap();
        let t = scaler.transform(&test).unwrap();
        assert!(t.get(0, 0).abs() < 1e-12); // 5 is the training mean
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let scaler = StandardScaler::fit(&Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap()).unwrap();
        let bad = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(scaler.transform(&bad).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(StandardScaler::fit(&Matrix::with_cols(3)).is_err());
    }
}
