//! Small numeric helpers shared by samplers, scalers and the fleet
//! simulator's calibration code.

/// Arithmetic mean; `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(mfpa_dataset::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(mfpa_dataset::stats::mean(&[]), 0.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance; `0.0` for slices shorter than two.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Linear-interpolated quantile (`q` in `[0, 1]`); `None` for an empty
/// slice or out-of-range `q`.
///
/// # Example
///
/// ```
/// let v = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(mfpa_dataset::stats::quantile(&v, 0.5), Some(2.5));
/// assert_eq!(mfpa_dataset::stats::quantile(&v, 0.0), Some(1.0));
/// assert_eq!(mfpa_dataset::stats::quantile(&v, 1.0), Some(4.0));
/// ```
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Builds an equal-width histogram of `values` over `[lo, hi)` with
/// `bins` buckets; values outside the range are clamped into the edge
/// buckets. Returns per-bucket counts.
///
/// Used by the figure-reproduction binaries (e.g. Fig 2's bathtub
/// histogram).
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<u64> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0u64; bins];
    for &v in values {
        let ix = (((v - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[ix] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert_eq!(variance(&v), 4.0);
        assert_eq!(std_dev(&v), 2.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 1.5), None);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [10.0, 20.0];
        assert_eq!(quantile(&v, 0.25), Some(12.5));
    }

    #[test]
    fn histogram_clamps_outliers() {
        let counts = histogram(&[-5.0, 0.5, 1.5, 99.0], 0.0, 2.0, 2);
        assert_eq!(counts, vec![2, 2]);
        assert_eq!(counts.iter().sum::<u64>(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        histogram(&[1.0], 0.0, 1.0, 0);
    }
}
