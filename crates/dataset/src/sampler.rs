//! Class balancing by random under-sampling (§III-C(3)).
//!
//! The SSD health dataset is extremely imbalanced (replacement rates are
//! well below 1%). The paper keeps all positive samples and randomly
//! under-samples the majority (healthy) class to a configured
//! negative:positive ratio such as 3:1 or 5:1.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::DatasetError;

/// Random under-sampler: keeps every minority (positive) sample and a
/// random subset of majority (negative) samples at `ratio` negatives per
/// positive.
///
/// # Example
///
/// ```
/// use mfpa_dataset::RandomUnderSampler;
///
/// let labels = [true, false, false, false, false, false, true];
/// let sampler = RandomUnderSampler::new(2.0, 7)?;
/// let kept = sampler.sample(&labels);
/// let pos = kept.iter().filter(|&&i| labels[i]).count();
/// let neg = kept.len() - pos;
/// assert_eq!(pos, 2);
/// assert_eq!(neg, 4);
/// # Ok::<(), mfpa_dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomUnderSampler {
    ratio: f64,
    seed: u64,
}

impl RandomUnderSampler {
    /// Creates a sampler with `ratio` negatives kept per positive.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] if `ratio` is not a
    /// positive finite number.
    pub fn new(ratio: f64, seed: u64) -> Result<Self, DatasetError> {
        if !(ratio.is_finite() && ratio > 0.0) {
            return Err(DatasetError::InvalidParameter(format!(
                "ratio must be positive and finite, got {ratio}"
            )));
        }
        Ok(RandomUnderSampler { ratio, seed })
    }

    /// The configured negative:positive ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Returns the kept row indices, sorted ascending: all positives plus
    /// `round(ratio × positives)` random negatives (all negatives if there
    /// are fewer).
    ///
    /// With zero positives, all negatives are kept (nothing to balance
    /// against).
    pub fn sample(&self, labels: &[bool]) -> Vec<usize> {
        let positives: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| i)
            .collect();
        let mut negatives: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| !l)
            .map(|(i, _)| i)
            .collect();
        if positives.is_empty() {
            return negatives;
        }
        let want = ((positives.len() as f64) * self.ratio).round() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        negatives.shuffle(&mut rng);
        negatives.truncate(want);
        let mut kept = positives;
        kept.extend(negatives);
        kept.sort_unstable();
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pos: usize, neg: usize) -> Vec<bool> {
        let mut l = vec![true; pos];
        l.extend(vec![false; neg]);
        l
    }

    #[test]
    fn keeps_all_positives() {
        let l = labels(10, 1000);
        let kept = RandomUnderSampler::new(3.0, 1).unwrap().sample(&l);
        let pos = kept.iter().filter(|&&i| l[i]).count();
        assert_eq!(pos, 10);
        assert_eq!(kept.len(), 40);
    }

    #[test]
    fn five_to_one_ratio() {
        let l = labels(20, 1000);
        let kept = RandomUnderSampler::new(5.0, 2).unwrap().sample(&l);
        assert_eq!(kept.len(), 120);
    }

    #[test]
    fn caps_at_available_negatives() {
        let l = labels(10, 5);
        let kept = RandomUnderSampler::new(3.0, 3).unwrap().sample(&l);
        assert_eq!(kept.len(), 15);
    }

    #[test]
    fn no_positives_keeps_everything_negative() {
        let l = labels(0, 8);
        let kept = RandomUnderSampler::new(3.0, 0).unwrap().sample(&l);
        assert_eq!(kept.len(), 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let l = labels(5, 100);
        let s = RandomUnderSampler::new(2.0, 9).unwrap();
        assert_eq!(s.sample(&l), s.sample(&l));
        let other = RandomUnderSampler::new(2.0, 10).unwrap();
        assert_ne!(s.sample(&l), other.sample(&l));
    }

    #[test]
    fn output_sorted_unique() {
        let l = labels(5, 50);
        let kept = RandomUnderSampler::new(4.0, 11).unwrap().sample(&l);
        let mut sorted = kept.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(kept, sorted);
    }

    #[test]
    fn invalid_ratio_rejected() {
        assert!(RandomUnderSampler::new(0.0, 0).is_err());
        assert!(RandomUnderSampler::new(-1.0, 0).is_err());
        assert!(RandomUnderSampler::new(f64::NAN, 0).is_err());
        assert!(RandomUnderSampler::new(f64::INFINITY, 0).is_err());
    }
}
