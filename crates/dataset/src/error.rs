//! Error type for dataset operations.

use std::error::Error;
use std::fmt;

/// Errors returned by dataset construction and transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A row had a different width than the frame/matrix expects.
    DimensionMismatch {
        /// Expected number of columns.
        expected: usize,
        /// Number of columns actually provided.
        actual: usize,
    },
    /// An operation that needs at least one row/sample got none.
    Empty,
    /// An index referred to a row or column that does not exist.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} columns, got {actual}"
                )
            }
            DatasetError::Empty => f.write_str("operation requires a non-empty dataset"),
            DatasetError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            DatasetError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DatasetError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(DatasetError::Empty.to_string().contains("non-empty"));
        let e = DatasetError::IndexOutOfBounds { index: 9, len: 4 };
        assert!(e.to_string().contains("9"));
        let e = DatasetError::InvalidParameter("k must be > 0".into());
        assert!(e.to_string().contains("k must be"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DatasetError>();
    }
}
