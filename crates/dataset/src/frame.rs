//! Feature frames: matrices with named columns, labels, and sample
//! metadata.

use serde::{Deserialize, Serialize};

use crate::error::DatasetError;
use crate::matrix::Matrix;

/// Per-sample metadata required by time-aware splitting.
///
/// * `group` — which entity the sample came from (a drive, identified by a
///   numeric handle); group-aware operations keep all samples of a drive on
///   one side of a split.
/// * `time` — when the sample was collected (a day index).
/// * `tag` — free secondary key (the pipeline stores the vendor index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SampleMeta {
    /// Entity handle (drive id).
    pub group: u64,
    /// Collection time (day index).
    pub time: i64,
    /// Secondary tag (vendor index in the MFPA pipeline).
    pub tag: u32,
}

impl SampleMeta {
    /// Creates metadata with `tag = 0`.
    pub fn new(group: u64, time: i64) -> Self {
        SampleMeta {
            group,
            time,
            tag: 0,
        }
    }

    /// Creates metadata with an explicit tag.
    pub fn with_tag(group: u64, time: i64, tag: u32) -> Self {
        SampleMeta { group, time, tag }
    }
}

/// A labelled feature matrix with named columns and per-row metadata.
///
/// This is the object the MFPA pipeline assembles from drive histories and
/// hands to samplers, splitters and models.
///
/// # Example
///
/// ```
/// use mfpa_dataset::{FeatureFrame, SampleMeta};
///
/// let mut f = FeatureFrame::new(vec!["S_14".into(), "W_161_cum".into()]);
/// f.push_row(&[0.0, 3.0], SampleMeta::new(7, 100), true)?;
/// assert_eq!(f.feature_names()[1], "W_161_cum");
/// assert_eq!(f.meta()[0].group, 7);
/// # Ok::<(), mfpa_dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureFrame {
    feature_names: Vec<String>,
    matrix: Matrix,
    meta: Vec<SampleMeta>,
    labels: Vec<bool>,
}

impl FeatureFrame {
    /// Creates an empty frame with the given column names.
    pub fn new(feature_names: Vec<String>) -> Self {
        let n = feature_names.len();
        FeatureFrame {
            feature_names,
            matrix: Matrix::with_cols(n),
            meta: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Assembles a frame from parts.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::DimensionMismatch`] if the number of names
    /// differs from the matrix width, or the number of metadata entries or
    /// labels differs from the number of rows.
    pub fn from_parts(
        feature_names: Vec<String>,
        matrix: Matrix,
        meta: Vec<SampleMeta>,
        labels: Vec<bool>,
    ) -> Result<Self, DatasetError> {
        if feature_names.len() != matrix.n_cols() {
            return Err(DatasetError::DimensionMismatch {
                expected: matrix.n_cols(),
                actual: feature_names.len(),
            });
        }
        if meta.len() != matrix.n_rows() {
            return Err(DatasetError::DimensionMismatch {
                expected: matrix.n_rows(),
                actual: meta.len(),
            });
        }
        if labels.len() != matrix.n_rows() {
            return Err(DatasetError::DimensionMismatch {
                expected: matrix.n_rows(),
                actual: labels.len(),
            });
        }
        Ok(FeatureFrame {
            feature_names,
            matrix,
            meta,
            labels,
        })
    }

    /// Appends one labelled row.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::DimensionMismatch`] if the row width differs
    /// from the number of feature names.
    pub fn push_row(
        &mut self,
        row: &[f64],
        meta: SampleMeta,
        label: bool,
    ) -> Result<(), DatasetError> {
        self.matrix.push_row(row)?;
        self.meta.push(meta);
        self.labels.push(label);
        Ok(())
    }

    /// Column names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Per-row metadata.
    pub fn meta(&self) -> &[SampleMeta] {
        &self.meta
    }

    /// Per-row labels (`true` = positive / faulty).
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Per-row collection times (convenience for splitters).
    pub fn times(&self) -> Vec<i64> {
        self.meta.iter().map(|m| m.time).collect()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.matrix.n_rows()
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.matrix.n_cols()
    }

    /// Whether the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Number of positive rows.
    pub fn n_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of negative rows.
    pub fn n_negative(&self) -> usize {
        self.n_rows() - self.n_positive()
    }

    /// A new frame with only the given rows (indices may repeat).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> FeatureFrame {
        FeatureFrame {
            feature_names: self.feature_names.clone(),
            matrix: self.matrix.select_rows(indices),
            meta: indices.iter().map(|&i| self.meta[i]).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// A new frame with only the given columns (metadata and labels are
    /// carried over unchanged).
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of bounds.
    pub fn select_cols(&self, cols: &[usize]) -> FeatureFrame {
        FeatureFrame {
            feature_names: cols
                .iter()
                .map(|&c| self.feature_names[c].clone())
                .collect(),
            matrix: self.matrix.select_cols(cols),
            meta: self.meta.clone(),
            labels: self.labels.clone(),
        }
    }

    /// Looks a column index up by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Approximate heap size in bytes (Fig 20 overhead accounting).
    pub fn heap_bytes(&self) -> usize {
        self.matrix.heap_bytes()
            + self.meta.capacity() * std::mem::size_of::<SampleMeta>()
            + self.labels.capacity()
            + self
                .feature_names
                .iter()
                .map(|n| n.capacity() + std::mem::size_of::<String>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> FeatureFrame {
        let mut f = FeatureFrame::new(vec!["a".into(), "b".into()]);
        f.push_row(&[1.0, 2.0], SampleMeta::with_tag(0, 10, 1), true)
            .unwrap();
        f.push_row(&[3.0, 4.0], SampleMeta::with_tag(1, 20, 2), false)
            .unwrap();
        f.push_row(&[5.0, 6.0], SampleMeta::with_tag(0, 30, 1), false)
            .unwrap();
        f
    }

    #[test]
    fn push_and_counts() {
        let f = sample_frame();
        assert_eq!(f.n_rows(), 3);
        assert_eq!(f.n_positive(), 1);
        assert_eq!(f.n_negative(), 2);
        assert_eq!(f.times(), vec![10, 20, 30]);
    }

    #[test]
    fn from_parts_validates() {
        let m = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(FeatureFrame::from_parts(
            vec![],
            m.clone(),
            vec![SampleMeta::new(0, 0)],
            vec![true]
        )
        .is_err());
        assert!(FeatureFrame::from_parts(vec!["a".into()], m.clone(), vec![], vec![true]).is_err());
        assert!(FeatureFrame::from_parts(
            vec!["a".into()],
            m.clone(),
            vec![SampleMeta::new(0, 0)],
            vec![]
        )
        .is_err());
        assert!(FeatureFrame::from_parts(
            vec!["a".into()],
            m,
            vec![SampleMeta::new(0, 0)],
            vec![true]
        )
        .is_ok());
    }

    #[test]
    fn select_rows_keeps_alignment() {
        let f = sample_frame();
        let s = f.select_rows(&[2, 0]);
        assert_eq!(s.matrix().row(0), &[5.0, 6.0]);
        assert_eq!(s.meta()[0].time, 30);
        assert_eq!(s.labels(), &[false, true]);
    }

    #[test]
    fn select_cols_renames() {
        let f = sample_frame();
        let s = f.select_cols(&[1]);
        assert_eq!(s.feature_names(), &["b".to_string()]);
        assert_eq!(s.matrix().row(2), &[6.0]);
        assert_eq!(s.labels().len(), 3);
    }

    #[test]
    fn column_index_lookup() {
        let f = sample_frame();
        assert_eq!(f.column_index("b"), Some(1));
        assert_eq!(f.column_index("zz"), None);
    }

    #[test]
    fn wrong_width_row_rejected() {
        let mut f = FeatureFrame::new(vec!["a".into()]);
        let err = f
            .push_row(&[1.0, 2.0], SampleMeta::new(0, 0), false)
            .unwrap_err();
        assert!(matches!(err, DatasetError::DimensionMismatch { .. }));
        assert!(f.is_empty());
    }
}
