//! Dense row-major `f64` matrix.

use serde::{Deserialize, Serialize};

use crate::error::DatasetError;

/// A dense row-major matrix of `f64` feature values.
///
/// This is the exchange format between the dataset layer and the ML
/// library: rows are samples, columns are features.
///
/// # Example
///
/// ```
/// use mfpa_dataset::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m.n_rows(), 2);
/// assert_eq!(m.n_cols(), 2);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.row(0), &[1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl Matrix {
    /// Creates an empty matrix with `n_cols` columns and no rows.
    pub fn with_cols(n_cols: usize) -> Self {
        Matrix {
            data: Vec::new(),
            n_rows: 0,
            n_cols,
        }
    }

    /// Creates a zero-filled matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Matrix {
            data: vec![0.0; n_rows * n_cols],
            n_rows,
            n_cols,
        }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::DimensionMismatch`] if rows have differing
    /// widths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, DatasetError> {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for row in rows {
            if row.len() != n_cols {
                return Err(DatasetError::DimensionMismatch {
                    expected: n_cols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            data,
            n_rows: rows.len(),
            n_cols,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::DimensionMismatch`] if `data.len()` is not a
    /// multiple of `n_cols` (with `n_cols > 0`).
    pub fn from_flat(data: Vec<f64>, n_cols: usize) -> Result<Self, DatasetError> {
        if n_cols == 0 && !data.is_empty() {
            return Err(DatasetError::DimensionMismatch {
                expected: 0,
                actual: data.len(),
            });
        }
        if n_cols > 0 && !data.len().is_multiple_of(n_cols) {
            return Err(DatasetError::DimensionMismatch {
                expected: n_cols,
                actual: data.len() % n_cols,
            });
        }
        let n_rows = data.len().checked_div(n_cols).unwrap_or(0);
        Ok(Matrix {
            data,
            n_rows,
            n_cols,
        })
    }

    /// Number of rows (samples).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (features).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// One element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.n_rows && col < self.n_cols,
            "matrix index out of bounds"
        );
        self.data[row * self.n_cols + col]
    }

    /// Sets one element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.n_rows && col < self.n_cols,
            "matrix index out of bounds"
        );
        self.data[row * self.n_cols + col] = value;
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= n_rows`.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.n_rows, "row index out of bounds");
        &self.data[row * self.n_cols..(row + 1) * self.n_cols]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.n_cols.max(1)).take(self.n_rows)
    }

    /// Copies one column out.
    ///
    /// # Panics
    ///
    /// Panics if `col >= n_cols`.
    pub fn column(&self, col: usize) -> Vec<f64> {
        assert!(col < self.n_cols, "column index out of bounds");
        (0..self.n_rows)
            .map(|r| self.data[r * self.n_cols + col])
            .collect()
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::DimensionMismatch`] if the row width differs
    /// from `n_cols`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), DatasetError> {
        if row.len() != self.n_cols {
            return Err(DatasetError::DimensionMismatch {
                expected: self.n_cols,
                actual: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.n_rows += 1;
        Ok(())
    }

    /// A new matrix containing the given rows (in the given order; indices
    /// may repeat, enabling bootstrap sampling).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.n_cols);
        for &ix in indices {
            data.extend_from_slice(self.row(ix));
        }
        Matrix {
            data,
            n_rows: indices.len(),
            n_cols: self.n_cols,
        }
    }

    /// A new matrix containing the given columns (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of bounds.
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        for &c in cols {
            assert!(c < self.n_cols, "column index out of bounds");
        }
        let mut data = Vec::with_capacity(self.n_rows * cols.len());
        for r in 0..self.n_rows {
            let row = self.row(r);
            data.extend(cols.iter().map(|&c| row[c]));
        }
        Matrix {
            data,
            n_rows: self.n_rows,
            n_cols: cols.len(),
        }
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Approximate heap size in bytes (used by the Fig 20 overhead table).
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
        assert_eq!(m.rows().count(), 2);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert_eq!(
            err,
            DatasetError::DimensionMismatch {
                expected: 1,
                actual: 2
            }
        );
    }

    #[test]
    fn from_flat_validates_shape() {
        assert!(Matrix::from_flat(vec![1.0, 2.0, 3.0], 2).is_err());
        let m = Matrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert!(Matrix::from_flat(vec![1.0], 0).is_err());
        assert_eq!(Matrix::from_flat(vec![], 0).unwrap().n_rows(), 0);
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::with_cols(2);
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn select_rows_allows_repeats() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let s = m.select_rows(&[2, 2, 0]);
        assert_eq!(s.column(0), vec![3.0, 3.0, 1.0]);
    }

    #[test]
    fn select_cols_reorders() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let s = m.select_cols(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(0, 1);
    }

    #[test]
    fn zeros_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!((m.n_rows(), m.n_cols()), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }
}
