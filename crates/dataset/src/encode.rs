//! Label encoding for categorical features.
//!
//! §III-C(1): "Label encoding technology is adopted to handle the firmware
//! version that is a character variable." [`LabelEncoder`] maps arbitrary
//! hashable categories to dense integer codes in first-seen order.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// Maps categorical values to dense integer codes.
///
/// Codes are assigned in first-seen order during [`LabelEncoder::fit`] /
/// [`LabelEncoder::fit_transform`]; unseen categories transform to `None`.
///
/// # Example
///
/// ```
/// use mfpa_dataset::LabelEncoder;
///
/// let mut enc = LabelEncoder::new();
/// let codes = enc.fit_transform(["B1TQ", "A2TQ", "B1TQ"].into_iter());
/// assert_eq!(codes, vec![0, 1, 0]);
/// assert_eq!(enc.transform(&"A2TQ"), Some(1));
/// assert_eq!(enc.transform(&"ZZZZ"), None);
/// assert_eq!(enc.inverse(1), Some(&"A2TQ"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LabelEncoder<T: Eq + Hash + Clone> {
    forward: HashMap<T, usize>,
    reverse: Vec<T>,
}

impl<T: Eq + Hash + Clone> LabelEncoder<T> {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        LabelEncoder {
            forward: HashMap::new(),
            reverse: Vec::new(),
        }
    }

    /// Number of distinct categories seen so far.
    pub fn n_categories(&self) -> usize {
        self.reverse.len()
    }

    /// Registers a category (if new) and returns its code.
    pub fn fit_one(&mut self, value: T) -> usize {
        if let Some(&code) = self.forward.get(&value) {
            return code;
        }
        let code = self.reverse.len();
        self.forward.insert(value.clone(), code);
        self.reverse.push(value);
        code
    }

    /// Registers every category in the iterator.
    pub fn fit<I: IntoIterator<Item = T>>(&mut self, values: I) {
        for v in values {
            self.fit_one(v);
        }
    }

    /// Registers and encodes in one pass.
    pub fn fit_transform<I: IntoIterator<Item = T>>(&mut self, values: I) -> Vec<usize> {
        values.into_iter().map(|v| self.fit_one(v)).collect()
    }

    /// The code of a previously-seen category, or `None`.
    pub fn transform(&self, value: &T) -> Option<usize> {
        self.forward.get(value).copied()
    }

    /// The category behind a code, or `None`.
    pub fn inverse(&self, code: usize) -> Option<&T> {
        self.reverse.get(code)
    }

    /// All categories in code order.
    pub fn categories(&self) -> &[T] {
        &self.reverse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_seen_order() {
        let mut e = LabelEncoder::new();
        e.fit(vec!["c", "a", "b", "a"]);
        assert_eq!(e.n_categories(), 3);
        assert_eq!(e.transform(&"c"), Some(0));
        assert_eq!(e.transform(&"a"), Some(1));
        assert_eq!(e.transform(&"b"), Some(2));
    }

    #[test]
    fn inverse_roundtrip() {
        let mut e = LabelEncoder::new();
        let codes = e.fit_transform(vec![10u32, 20, 10, 30]);
        assert_eq!(codes, vec![0, 1, 0, 2]);
        for (v, c) in [(10u32, 0usize), (20, 1), (30, 2)] {
            assert_eq!(e.transform(&v), Some(c));
            assert_eq!(e.inverse(c), Some(&v));
        }
        assert_eq!(e.inverse(3), None);
    }

    #[test]
    fn unseen_is_none() {
        let e: LabelEncoder<&str> = LabelEncoder::new();
        assert_eq!(e.transform(&"x"), None);
        assert_eq!(e.n_categories(), 0);
    }

    #[test]
    fn categories_in_code_order() {
        let mut e = LabelEncoder::new();
        e.fit(vec!["z", "y"]);
        assert_eq!(e.categories(), &["z", "y"]);
    }
}
