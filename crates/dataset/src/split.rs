//! Train/test segmentation strategies (Fig 8(a) of the paper).
//!
//! The naive approach divides samples randomly in an `m:n` proportion,
//! which lets the training set contain *future* data relative to the test
//! set. The paper's timepoint-based segmentation instead picks a boundary
//! inside the observation window: everything in the learning window (LW)
//! trains, everything after it tests.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::DatasetError;

/// Indices of a train/test split.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Split {
    /// Row indices of the training set.
    pub train: Vec<usize>,
    /// Row indices of the test set.
    pub test: Vec<usize>,
}

/// Randomly splits `n` samples with the given test fraction (the naive
/// `m:n` segmentation of Fig 8(a)(1)).
///
/// # Errors
///
/// Returns [`DatasetError::InvalidParameter`] unless
/// `0.0 < test_fraction < 1.0`, and [`DatasetError::Empty`] if `n == 0`.
///
/// # Example
///
/// ```
/// use mfpa_dataset::split::ratio_split;
///
/// let s = ratio_split(10, 0.3, 42)?;
/// assert_eq!(s.test.len(), 3);
/// assert_eq!(s.train.len() + s.test.len(), 10);
/// # Ok::<(), mfpa_dataset::DatasetError>(())
/// ```
pub fn ratio_split(n: usize, test_fraction: f64, seed: u64) -> Result<Split, DatasetError> {
    if n == 0 {
        return Err(DatasetError::Empty);
    }
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(DatasetError::InvalidParameter(format!(
            "test_fraction must be in (0, 1), got {test_fraction}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let n_test = ((n as f64) * test_fraction)
        .round()
        .clamp(1.0, (n - 1) as f64) as usize;
    let test = indices[..n_test].to_vec();
    let train = indices[n_test..].to_vec();
    Ok(Split { train, test })
}

/// Timepoint-based segmentation (Fig 8(a)(2)): samples with
/// `time <= boundary` form the training set (the learning window LW), the
/// rest form the test set.
///
/// # Example
///
/// ```
/// use mfpa_dataset::split::timepoint_split;
///
/// let times = [1, 5, 3, 9, 7];
/// let s = timepoint_split(&times, 5);
/// assert_eq!(s.train, vec![0, 1, 2]);
/// assert_eq!(s.test, vec![3, 4]);
/// ```
pub fn timepoint_split(times: &[i64], boundary: i64) -> Split {
    let mut split = Split::default();
    for (ix, &t) in times.iter().enumerate() {
        if t <= boundary {
            split.train.push(ix);
        } else {
            split.test.push(ix);
        }
    }
    split
}

/// Timepoint segmentation where the boundary is chosen as the
/// `train_fraction` quantile of the observed times, so roughly that share
/// of samples lands in the learning window.
///
/// # Errors
///
/// Returns [`DatasetError::Empty`] for an empty slice and
/// [`DatasetError::InvalidParameter`] unless `0.0 < train_fraction < 1.0`.
pub fn timepoint_split_fraction(times: &[i64], train_fraction: f64) -> Result<Split, DatasetError> {
    if times.is_empty() {
        return Err(DatasetError::Empty);
    }
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(DatasetError::InvalidParameter(format!(
            "train_fraction must be in (0, 1), got {train_fraction}"
        )));
    }
    let mut sorted = times.to_vec();
    sorted.sort_unstable();
    let ix = (((sorted.len() - 1) as f64) * train_fraction).round() as usize;
    let boundary = sorted[ix];
    Ok(timepoint_split(times, boundary))
}

/// Checks the time-ordering invariant the paper's segmentation guarantees:
/// no training sample is newer than any test sample.
///
/// Useful in tests and assertions; the naive [`ratio_split`] generally
/// violates it.
pub fn is_chronologically_sound(split: &Split, times: &[i64]) -> bool {
    let max_train = split.train.iter().map(|&i| times[i]).max();
    let min_test = split.test.iter().map(|&i| times[i]).min();
    match (max_train, min_test) {
        (Some(a), Some(b)) => a <= b,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_split_is_deterministic_per_seed() {
        let a = ratio_split(100, 0.1, 7).unwrap();
        let b = ratio_split(100, 0.1, 7).unwrap();
        assert_eq!(a, b);
        let c = ratio_split(100, 0.1, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn ratio_split_partitions() {
        let s = ratio_split(50, 0.2, 1).unwrap();
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
        assert_eq!(s.test.len(), 10);
    }

    #[test]
    fn ratio_split_validates() {
        assert!(ratio_split(0, 0.5, 0).is_err());
        assert!(ratio_split(10, 0.0, 0).is_err());
        assert!(ratio_split(10, 1.0, 0).is_err());
    }

    #[test]
    fn ratio_split_never_empties_either_side() {
        let s = ratio_split(2, 0.01, 0).unwrap();
        assert_eq!(s.test.len(), 1);
        assert_eq!(s.train.len(), 1);
        let s = ratio_split(2, 0.99, 0).unwrap();
        assert_eq!(s.test.len(), 1);
    }

    #[test]
    fn timepoint_split_respects_boundary() {
        let times = [10, 20, 30, 40];
        let s = timepoint_split(&times, 25);
        assert_eq!(s.train, vec![0, 1]);
        assert_eq!(s.test, vec![2, 3]);
        assert!(is_chronologically_sound(&s, &times));
    }

    #[test]
    fn timepoint_fraction_hits_requested_share() {
        let times: Vec<i64> = (0..100).collect();
        let s = timepoint_split_fraction(&times, 0.8).unwrap();
        assert!(
            (s.train.len() as i64 - 80).abs() <= 1,
            "train = {}",
            s.train.len()
        );
        assert!(is_chronologically_sound(&s, &times));
    }

    #[test]
    fn naive_split_usually_violates_chronology() {
        let times: Vec<i64> = (0..100).collect();
        let s = ratio_split(100, 0.3, 3).unwrap();
        assert!(!is_chronologically_sound(&s, &times));
    }

    #[test]
    fn soundness_with_empty_sides() {
        let s = Split {
            train: vec![0],
            test: vec![],
        };
        assert!(is_chronologically_sound(&s, &[5]));
    }
}
