//! Fleet-generation configuration.

use serde::{Deserialize, Serialize};

/// Length of the paper's study, used to convert Table VI replacement
/// rates (measured over "nearly two years") into per-campaign failure
/// probabilities.
pub const STUDY_DAYS: f64 = 730.0;

/// Configuration of one synthetic fleet.
///
/// The default configuration (`FleetConfig::new(seed)`) is the scale used
/// by the experiment harness: 8% of the paper's populations with a 12×
/// hazard boost, which preserves the vendors' replacement-rate *ratios*
/// while producing enough failures (≈750) to train per-vendor models.
/// Both knobs are printed in every experiment header.
///
/// # Example
///
/// ```
/// use mfpa_fleetsim::FleetConfig;
///
/// let cfg = FleetConfig::new(7).with_horizon_days(120).with_drift_per_month(0.2);
/// assert_eq!(cfg.horizon_days, 120);
/// assert_eq!(cfg.seed, 7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Master RNG seed; everything downstream derives from it.
    pub seed: u64,
    /// Observation-campaign length in days.
    pub horizon_days: i64,
    /// Fraction of each vendor's Table VI population to instantiate.
    pub population_fraction: f64,
    /// Multiplier on every drive's hazard, so scaled-down fleets still
    /// produce enough positives (documented substitution).
    pub hazard_boost: f64,
    /// Healthy drives given full telemetry per failed drive.
    pub healthy_per_failure: f64,
    /// Month-over-month relative drift of healthy baseline rates
    /// (0 disables; ≈0.15 reproduces Fig 12/16's FPR creep).
    pub drift_per_month: f64,
    /// Mean days between a failure and the user seeking repair.
    pub mean_repair_delay: f64,
    /// Fraction of system-level failures whose SMART trace stays quiet
    /// (only W/B precursors fire) — the mechanism behind SFWB > SF.
    pub smart_silent_fraction: f64,
    /// Fraction of drive-level failures whose SMART trace stays quiet
    /// (abrupt controller death without a media-error ramp).
    pub smart_silent_drive_fraction: f64,
    /// Fraction of drive-level failures that are *sudden* (controller
    /// death with almost no W/B precursors) — keeps the W-only and
    /// B-only groups below SFWB, as in Fig 9.
    pub sudden_drive_fraction: f64,
    /// Fraction of system-level failures that are sudden. Combined with
    /// SMART silence this yields the small truly-unpredictable residue.
    pub sudden_system_fraction: f64,
    /// Fraction of healthy drives with benign SMART anomalies (aging but
    /// not failing) — the mechanism behind the SMART model's high FPR.
    pub noisy_smart_fraction: f64,
    /// Fraction of healthy machines with flaky software stacks that emit
    /// elevated W/B noise unrelated to the disk.
    pub noisy_os_fraction: f64,
}

impl FleetConfig {
    /// The experiment-scale configuration (see type docs).
    pub fn new(seed: u64) -> Self {
        FleetConfig {
            seed,
            horizon_days: 180,
            population_fraction: 0.08,
            hazard_boost: 12.0,
            healthy_per_failure: 5.0,
            drift_per_month: 0.0,
            mean_repair_delay: 4.0,
            smart_silent_fraction: 0.055,
            smart_silent_drive_fraction: 0.03,
            sudden_drive_fraction: 0.35,
            sudden_system_fraction: 0.10,
            noisy_smart_fraction: 0.05,
            noisy_os_fraction: 0.04,
        }
    }

    /// A unit-test-scale configuration: ~4.7k drives, ≈60–100 failures,
    /// generates in well under a second.
    pub fn tiny(seed: u64) -> Self {
        FleetConfig {
            population_fraction: 0.002,
            hazard_boost: 120.0,
            horizon_days: 120,
            ..FleetConfig::new(seed)
        }
    }

    /// Sets the observation horizon.
    pub fn with_horizon_days(mut self, days: i64) -> Self {
        self.horizon_days = days.max(30);
        self
    }

    /// Sets the population fraction.
    pub fn with_population_fraction(mut self, fraction: f64) -> Self {
        self.population_fraction = fraction.clamp(1e-5, 1.0);
        self
    }

    /// Sets the hazard boost.
    pub fn with_hazard_boost(mut self, boost: f64) -> Self {
        self.hazard_boost = boost.max(0.0);
        self
    }

    /// Sets the healthy-telemetry ratio.
    pub fn with_healthy_per_failure(mut self, ratio: f64) -> Self {
        self.healthy_per_failure = ratio.max(0.0);
        self
    }

    /// Sets the monthly drift rate.
    pub fn with_drift_per_month(mut self, rate: f64) -> Self {
        self.drift_per_month = rate.max(0.0);
        self
    }

    /// Sets the mean repair delay in days.
    pub fn with_mean_repair_delay(mut self, days: f64) -> Self {
        self.mean_repair_delay = days.max(0.0);
        self
    }

    /// In-campaign failure probability targeted for a drive of a vendor
    /// with the given Table VI replacement rate.
    pub fn campaign_failure_probability(&self, paper_replacement_rate: f64) -> f64 {
        (paper_replacement_rate * (self.horizon_days as f64 / STUDY_DAYS) * self.hazard_boost)
            .min(0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = FleetConfig::new(1);
        assert!(c.population_fraction > 0.0 && c.population_fraction <= 1.0);
        assert!(c.hazard_boost >= 1.0);
        assert!(c.horizon_days >= 30);
    }

    #[test]
    fn builder_clamps() {
        let c = FleetConfig::new(1)
            .with_horizon_days(1)
            .with_population_fraction(5.0)
            .with_hazard_boost(-1.0);
        assert_eq!(c.horizon_days, 30);
        assert_eq!(c.population_fraction, 1.0);
        assert_eq!(c.hazard_boost, 0.0);
    }

    #[test]
    fn campaign_probability_scales_linearly() {
        let c = FleetConfig::new(0).with_hazard_boost(1.0).with_horizon_days(365);
        let p = c.campaign_failure_probability(0.0068);
        assert!((p - 0.0068 * 0.5).abs() < 1e-4);
        let boosted = c.with_hazard_boost(10.0).campaign_failure_probability(0.0068);
        assert!((boosted / p - 10.0).abs() < 1e-9);
    }

    #[test]
    fn campaign_probability_capped() {
        let c = FleetConfig::new(0).with_hazard_boost(1e9);
        assert_eq!(c.campaign_failure_probability(0.01), 0.9);
    }

    #[test]
    fn tiny_is_fast_scale() {
        let t = FleetConfig::tiny(3);
        assert!(t.population_fraction < 0.01);
        assert!(t.hazard_boost > FleetConfig::new(3).hazard_boost);
    }
}
