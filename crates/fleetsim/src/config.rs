//! Fleet-generation configuration.

use serde::{Deserialize, Serialize};

/// Length of the paper's study, used to convert Table VI replacement
/// rates (measured over "nearly two years") into per-campaign failure
/// probabilities.
pub const STUDY_DAYS: f64 = 730.0;

/// Telemetry corruption rates for the fault-injection layer
/// ([`crate::faults`]).
///
/// Consumer telemetry is collected by an agent on the user's machine and
/// shipped over flaky links, so the raw stream the pipeline sees is not
/// the clean record sequence the drive produced. Each knob below is the
/// independent probability of one corruption class; all default to zero,
/// in which case the injector is completely disabled and the fleet is
/// bit-identical to one generated without any fault layer.
///
/// Per-*record* rates (applied to each emitted record independently):
/// `sentinel_reset_rate`, `missing_attribute_rate`, `clock_skew_rate`,
/// `duplicate_record_rate`, `out_of_order_rate`. Per-*drive* rates
/// (applied once per drive): `stuck_attribute_rate`,
/// `counter_rollover_rate`.
///
/// # Example
///
/// ```
/// use mfpa_fleetsim::FaultConfig;
///
/// assert!(!FaultConfig::none().is_enabled());
/// assert!(FaultConfig::uniform(0.05).is_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a record's SMART page is replaced by a sentinel page:
    /// every attribute reads all-ones (`0xFFFF_FFFF` / `0xFFFF_FFFF_FFFF_FFFF`)
    /// or all-zeros — the classic firmware read glitch.
    pub sentinel_reset_rate: f64,
    /// Probability a drive develops one stuck-at SMART attribute: from a
    /// random day on, the attribute reports a frozen value.
    pub stuck_attribute_rate: f64,
    /// Probability a drive's cumulative SMART counters roll over to zero
    /// mid-stream and keep counting from there.
    pub counter_rollover_rate: f64,
    /// Probability a record is emitted twice (exact duplicate).
    pub duplicate_record_rate: f64,
    /// Probability a record is swapped with its predecessor in the
    /// emission stream (transport reordering).
    pub out_of_order_rate: f64,
    /// Probability a record has attributes missing (reported as NaN).
    pub missing_attribute_rate: f64,
    /// Probability a record's day stamp is skewed by a bounded offset
    /// (client clock drift / bad wall-clock reads).
    pub clock_skew_rate: f64,
}

impl FaultConfig {
    /// All rates zero: injection disabled.
    pub fn none() -> Self {
        FaultConfig {
            sentinel_reset_rate: 0.0,
            stuck_attribute_rate: 0.0,
            counter_rollover_rate: 0.0,
            duplicate_record_rate: 0.0,
            out_of_order_rate: 0.0,
            missing_attribute_rate: 0.0,
            clock_skew_rate: 0.0,
        }
    }

    /// Every knob set to the same rate (clamped to `[0, 1]`) — the sweep
    /// axis of the robustness experiment.
    pub fn uniform(rate: f64) -> Self {
        let r = rate.clamp(0.0, 1.0);
        FaultConfig {
            sentinel_reset_rate: r,
            stuck_attribute_rate: r,
            counter_rollover_rate: r,
            duplicate_record_rate: r,
            out_of_order_rate: r,
            missing_attribute_rate: r,
            clock_skew_rate: r,
        }
    }

    /// Whether any corruption class has a non-zero rate.
    pub fn is_enabled(&self) -> bool {
        [
            self.sentinel_reset_rate,
            self.stuck_attribute_rate,
            self.counter_rollover_rate,
            self.duplicate_record_rate,
            self.out_of_order_rate,
            self.missing_attribute_rate,
            self.clock_skew_rate,
        ]
        .iter()
        .any(|&r| r > 0.0)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Configuration of one synthetic fleet.
///
/// The default configuration (`FleetConfig::new(seed)`) is the scale used
/// by the experiment harness: 8% of the paper's populations with a 12×
/// hazard boost, which preserves the vendors' replacement-rate *ratios*
/// while producing enough failures (≈750) to train per-vendor models.
/// Both knobs are printed in every experiment header.
///
/// # Example
///
/// ```
/// use mfpa_fleetsim::FleetConfig;
///
/// let cfg = FleetConfig::new(7).with_horizon_days(120).with_drift_per_month(0.2);
/// assert_eq!(cfg.horizon_days, 120);
/// assert_eq!(cfg.seed, 7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Master RNG seed; everything downstream derives from it.
    pub seed: u64,
    /// Observation-campaign length in days.
    pub horizon_days: i64,
    /// Fraction of each vendor's Table VI population to instantiate.
    pub population_fraction: f64,
    /// Multiplier on every drive's hazard, so scaled-down fleets still
    /// produce enough positives (documented substitution).
    pub hazard_boost: f64,
    /// Healthy drives given full telemetry per failed drive.
    pub healthy_per_failure: f64,
    /// Month-over-month relative drift of healthy baseline rates
    /// (0 disables; ≈0.15 reproduces Fig 12/16's FPR creep).
    pub drift_per_month: f64,
    /// Mean days between a failure and the user seeking repair.
    pub mean_repair_delay: f64,
    /// Fraction of system-level failures whose SMART trace stays quiet
    /// (only W/B precursors fire) — the mechanism behind SFWB > SF.
    pub smart_silent_fraction: f64,
    /// Fraction of drive-level failures whose SMART trace stays quiet
    /// (abrupt controller death without a media-error ramp).
    pub smart_silent_drive_fraction: f64,
    /// Fraction of drive-level failures that are *sudden* (controller
    /// death with almost no W/B precursors) — keeps the W-only and
    /// B-only groups below SFWB, as in Fig 9.
    pub sudden_drive_fraction: f64,
    /// Fraction of system-level failures that are sudden. Combined with
    /// SMART silence this yields the small truly-unpredictable residue.
    pub sudden_system_fraction: f64,
    /// Fraction of healthy drives with benign SMART anomalies (aging but
    /// not failing) — the mechanism behind the SMART model's high FPR.
    pub noisy_smart_fraction: f64,
    /// Fraction of healthy machines with flaky software stacks that emit
    /// elevated W/B noise unrelated to the disk.
    pub noisy_os_fraction: f64,
    /// Telemetry-corruption rates (all zero = clean stream).
    pub faults: FaultConfig,
    /// Worker threads for telemetry generation (`0` = automatic:
    /// `MFPA_THREADS` or the machine's parallelism). Purely a throughput
    /// knob — the generated fleet is bit-identical at any value.
    pub n_threads: usize,
}

impl FleetConfig {
    /// The experiment-scale configuration (see type docs).
    pub fn new(seed: u64) -> Self {
        FleetConfig {
            seed,
            horizon_days: 180,
            population_fraction: 0.08,
            hazard_boost: 12.0,
            healthy_per_failure: 5.0,
            drift_per_month: 0.0,
            mean_repair_delay: 4.0,
            smart_silent_fraction: 0.055,
            smart_silent_drive_fraction: 0.03,
            sudden_drive_fraction: 0.35,
            sudden_system_fraction: 0.10,
            noisy_smart_fraction: 0.05,
            noisy_os_fraction: 0.04,
            faults: FaultConfig::none(),
            n_threads: 0,
        }
    }

    /// A unit-test-scale configuration: ~4.7k drives, ≈60–100 failures,
    /// generates in well under a second.
    pub fn tiny(seed: u64) -> Self {
        FleetConfig {
            population_fraction: 0.002,
            hazard_boost: 120.0,
            horizon_days: 120,
            ..FleetConfig::new(seed)
        }
    }

    /// Sets the observation horizon.
    pub fn with_horizon_days(mut self, days: i64) -> Self {
        self.horizon_days = days.max(30);
        self
    }

    /// Sets the population fraction.
    pub fn with_population_fraction(mut self, fraction: f64) -> Self {
        self.population_fraction = fraction.clamp(1e-5, 1.0);
        self
    }

    /// Sets the hazard boost.
    pub fn with_hazard_boost(mut self, boost: f64) -> Self {
        self.hazard_boost = boost.max(0.0);
        self
    }

    /// Sets the healthy-telemetry ratio.
    pub fn with_healthy_per_failure(mut self, ratio: f64) -> Self {
        self.healthy_per_failure = ratio.max(0.0);
        self
    }

    /// Sets the monthly drift rate.
    pub fn with_drift_per_month(mut self, rate: f64) -> Self {
        self.drift_per_month = rate.max(0.0);
        self
    }

    /// Sets the mean repair delay in days.
    pub fn with_mean_repair_delay(mut self, days: f64) -> Self {
        self.mean_repair_delay = days.max(0.0);
        self
    }

    /// Sets the telemetry-corruption rates.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the worker-thread count (`0` = automatic).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.n_threads = n;
        self
    }

    /// In-campaign failure probability targeted for a drive of a vendor
    /// with the given Table VI replacement rate.
    pub fn campaign_failure_probability(&self, paper_replacement_rate: f64) -> f64 {
        (paper_replacement_rate * (self.horizon_days as f64 / STUDY_DAYS) * self.hazard_boost)
            .min(0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = FleetConfig::new(1);
        assert!(c.population_fraction > 0.0 && c.population_fraction <= 1.0);
        assert!(c.hazard_boost >= 1.0);
        assert!(c.horizon_days >= 30);
    }

    #[test]
    fn builder_clamps() {
        let c = FleetConfig::new(1)
            .with_horizon_days(1)
            .with_population_fraction(5.0)
            .with_hazard_boost(-1.0);
        assert_eq!(c.horizon_days, 30);
        assert_eq!(c.population_fraction, 1.0);
        assert_eq!(c.hazard_boost, 0.0);
    }

    #[test]
    fn campaign_probability_scales_linearly() {
        let c = FleetConfig::new(0)
            .with_hazard_boost(1.0)
            .with_horizon_days(365);
        let p = c.campaign_failure_probability(0.0068);
        assert!((p - 0.0068 * 0.5).abs() < 1e-4);
        let boosted = c
            .with_hazard_boost(10.0)
            .campaign_failure_probability(0.0068);
        assert!((boosted / p - 10.0).abs() < 1e-9);
    }

    #[test]
    fn campaign_probability_capped() {
        let c = FleetConfig::new(0).with_hazard_boost(1e9);
        assert_eq!(c.campaign_failure_probability(0.01), 0.9);
    }

    #[test]
    fn faults_default_disabled() {
        assert!(!FleetConfig::new(1).faults.is_enabled());
        assert!(!FleetConfig::tiny(1).faults.is_enabled());
        let c = FleetConfig::new(1).with_faults(FaultConfig::uniform(2.0));
        assert!(c.faults.is_enabled());
        assert_eq!(c.faults.sentinel_reset_rate, 1.0);
        assert_eq!(FaultConfig::default(), FaultConfig::none());
    }

    #[test]
    fn tiny_is_fast_scale() {
        let t = FleetConfig::tiny(3);
        assert!(t.population_fraction < 0.01);
        assert!(t.hazard_boost > FleetConfig::new(3).hazard_boost);
    }
}
