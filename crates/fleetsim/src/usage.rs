//! Consumer usage model: power-on behaviour and discontinuous telemetry.
//!
//! §II challenge (2): "the startup time of CSS is irregular … resulting in
//! the discontinuity of the dataset". Each machine gets a usage profile
//! (how many hours per day it runs, how likely it is to be powered on at
//! all) plus occasional multi-day vacation gaps; telemetry exists only on
//! powered-on days — including gaps ≥ 10 days that the pipeline must drop
//! (Fig 6 / §III-C(1)).

use rand::rngs::StdRng;
use rand::RngExt;

/// A machine's usage profile.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageProfile {
    /// Average powered-on hours on an active day.
    pub hours_per_day: f64,
    /// Probability the machine is used (and reports telemetry) on any
    /// given non-vacation day.
    pub daily_on_prob: f64,
    /// Per-day probability of starting a vacation gap.
    pub vacation_prob: f64,
    /// Mean vacation length in days.
    pub mean_vacation_days: f64,
}

impl UsageProfile {
    /// Samples a random consumer profile: 2–12 h/day, 40–95% daily usage,
    /// a vacation roughly every few months averaging ~8 days.
    pub fn sample(rng: &mut StdRng) -> Self {
        UsageProfile {
            hours_per_day: rng.random_range(2.0..12.0),
            daily_on_prob: rng.random_range(0.40..0.95),
            vacation_prob: 0.008,
            mean_vacation_days: 8.0,
        }
    }

    /// A deterministic always-on profile (useful in tests).
    pub fn always_on() -> Self {
        UsageProfile {
            hours_per_day: 8.0,
            daily_on_prob: 1.0,
            vacation_prob: 0.0,
            mean_vacation_days: 0.0,
        }
    }

    /// Generates the powered-on (= telemetry-producing) days in
    /// `[0, horizon)`, honouring vacations.
    pub fn observed_days(&self, horizon: i64, rng: &mut StdRng) -> Vec<i64> {
        let mut days = Vec::new();
        let mut vacation_until = -1i64;
        for day in 0..horizon {
            if day <= vacation_until {
                continue;
            }
            if self.vacation_prob > 0.0 && rng.random_range(0.0..1.0) < self.vacation_prob {
                // Geometric-ish vacation length, capped at 24 days so the
                // pipeline sees both fillable and droppable gaps.
                let len = sample_vacation_len(self.mean_vacation_days, rng);
                vacation_until = day + len;
                continue;
            }
            if rng.random_range(0.0..1.0) < self.daily_on_prob {
                days.push(day);
            }
        }
        days
    }
}

fn sample_vacation_len(mean: f64, rng: &mut StdRng) -> i64 {
    if mean <= 0.0 {
        return 0;
    }
    // Inverse-CDF geometric with the requested mean, capped.
    let p = 1.0 / mean;
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    ((u.ln() / (1.0 - p).ln()).ceil() as i64).clamp(1, 24)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn always_on_covers_every_day() {
        let mut rng = StdRng::seed_from_u64(0);
        let days = UsageProfile::always_on().observed_days(30, &mut rng);
        assert_eq!(days, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn observed_days_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = UsageProfile::sample(&mut rng);
        let days = p.observed_days(180, &mut rng);
        assert!(days.windows(2).all(|w| w[0] < w[1]));
        assert!(days.iter().all(|&d| (0..180).contains(&d)));
    }

    #[test]
    fn on_probability_controls_density() {
        let mut rng = StdRng::seed_from_u64(2);
        let sparse = UsageProfile {
            daily_on_prob: 0.3,
            ..UsageProfile::always_on()
        };
        let dense = UsageProfile {
            daily_on_prob: 0.9,
            ..UsageProfile::always_on()
        };
        let s = sparse.observed_days(365, &mut rng).len();
        let d = dense.observed_days(365, &mut rng).len();
        assert!(d > s);
        assert!((s as f64 - 0.3 * 365.0).abs() < 40.0);
    }

    #[test]
    fn vacations_create_long_gaps() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = UsageProfile {
            vacation_prob: 0.05,
            mean_vacation_days: 12.0,
            ..UsageProfile::always_on()
        };
        let days = p.observed_days(365, &mut rng);
        let max_gap = days.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(max_gap >= 8, "max gap = {max_gap}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = UsageProfile::sample(&mut StdRng::seed_from_u64(7));
        let a = p.observed_days(100, &mut StdRng::seed_from_u64(9));
        let b = p.observed_days(100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_profiles_in_documented_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let p = UsageProfile::sample(&mut rng);
            assert!((2.0..12.0).contains(&p.hours_per_day));
            assert!((0.40..0.95).contains(&p.daily_on_prob));
        }
    }
}
