//! Windows-event and BSOD generation (Obs #3 / #4, Figs 4–5).
//!
//! Healthy machines emit rare benign events (paging hiccups, the odd
//! crash); a small "flaky OS" subpopulation emits markedly more without
//! any disk problem. Drives approaching failure emit storms: the event
//! rate multiplies by an exponential ramp over the last
//! [`crate::degradation::RAMP_DAYS`] days, with system-level failures
//! ramping hardest (the failure *is* a system symptom) and
//! storage-related BSOD codes ramping more than generic ones.

use mfpa_telemetry::{BsodCode, FailureLevel, WindowsEventId};
use rand::rngs::StdRng;
use rand_distr::{Distribution, Poisson};

use crate::degradation::RAMP_DAYS;

/// Per-day baseline rate of a Windows event on a healthy machine.
pub fn w_base_rate(id: WindowsEventId) -> f64 {
    match id {
        WindowsEventId::W51 => 0.0040, // paging hiccups are the most common
        WindowsEventId::W11 => 0.0020,
        WindowsEventId::W157 => 0.0012, // the odd surprise removal
        WindowsEventId::W7 => 0.0008,
        WindowsEventId::W15 => 0.0006,
        WindowsEventId::W49 => 0.0005,
        WindowsEventId::W154 => 0.0004,
        WindowsEventId::W161 => 0.0006,
        WindowsEventId::W52 => 0.0001, // SMART trip is rare on healthy drives
    }
}

/// Per-day baseline rate of a BSOD stop code on a healthy machine.
pub fn b_base_rate(code: BsodCode) -> f64 {
    if code.is_storage_related() {
        0.0004
    } else {
        0.0002
    }
}

/// How strongly a Windows event participates in the pre-failure storm.
pub fn w_failure_weight(id: WindowsEventId) -> f64 {
    match id {
        // §IV(2.2): W_11, W_49, W_51, W_161 "require special attention".
        WindowsEventId::W11 | WindowsEventId::W49 | WindowsEventId::W51 | WindowsEventId::W161 => {
            1.0
        }
        WindowsEventId::W52 => 0.8, // the OS surfacing the drive's own prediction
        WindowsEventId::W7 | WindowsEventId::W154 => 0.5,
        WindowsEventId::W15 | WindowsEventId::W157 => 0.25,
    }
}

/// How strongly a BSOD code participates in the pre-failure storm
/// (§IV(2.2) flags `B_50` and `B_7A`).
pub fn b_failure_weight(code: BsodCode) -> f64 {
    match code {
        BsodCode::B0x50 | BsodCode::B0x7A => 1.0,
        c if c.is_storage_related() => 0.6,
        _ => 0.08,
    }
}

/// The exponential pre-failure ramp factor at `days_to_failure`.
pub fn failure_ramp(days_to_failure: f64) -> f64 {
    if days_to_failure > RAMP_DAYS {
        0.0
    } else {
        ((RAMP_DAYS - days_to_failure.max(0.0)) / 4.0).exp()
    }
}

/// Windows-event storm amplitude per failure level: system-level
/// failures *are* OS symptoms, so they ramp hardest.
pub fn level_amplitude_w(level: FailureLevel) -> f64 {
    match level {
        FailureLevel::System => 55.0,
        FailureLevel::Drive => 18.0,
    }
}

/// BSOD storm amplitude per failure level: drive-level failures mostly
/// degrade I/O without blue-screening until the very end, so their BSOD
/// ramp is much weaker than their Windows-event ramp.
pub fn level_amplitude_b(level: FailureLevel) -> f64 {
    match level {
        FailureLevel::System => 38.0,
        FailureLevel::Drive => 5.0,
    }
}

/// Event-generation context for one drive-day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventContext {
    /// Days until the planned failure (`None` = healthy).
    pub days_to_failure: Option<f64>,
    /// Failure level, when failing.
    pub level: Option<FailureLevel>,
    /// Precursor scale from the failure plan (≈0.05 for sudden deaths).
    pub precursor: f64,
    /// Flaky-software machine (elevated benign noise).
    pub noisy_os: bool,
    /// Covariate-drift multiplier on benign rates.
    pub drift: f64,
}

impl EventContext {
    /// A healthy, quiet machine with no drift.
    pub fn healthy() -> Self {
        EventContext {
            days_to_failure: None,
            level: None,
            precursor: 1.0,
            noisy_os: false,
            drift: 1.0,
        }
    }

    fn storm_w(&self) -> f64 {
        match (self.days_to_failure, self.level) {
            (Some(d), Some(level)) => level_amplitude_w(level) * failure_ramp(d) * self.precursor,
            _ => 0.0,
        }
    }

    fn storm_b(&self) -> f64 {
        match (self.days_to_failure, self.level) {
            (Some(d), Some(level)) => level_amplitude_b(level) * failure_ramp(d) * self.precursor,
            _ => 0.0,
        }
    }
}

/// Samples the nine daily Windows-event counts for one drive-day.
pub fn daily_w_counts(ctx: &EventContext, rng: &mut StdRng) -> [u32; 9] {
    let noise = if ctx.noisy_os { 6.0 } else { 1.0 };
    let storm = ctx.storm_w();
    let mut out = [0u32; 9];
    for id in WindowsEventId::ALL {
        let rate = w_base_rate(id) * noise * ctx.drift + 0.02 * storm * w_failure_weight(id);
        out[id.index()] = poisson_u32(rate, rng);
    }
    out
}

/// Samples the 23 daily BSOD counts for one drive-day.
pub fn daily_b_counts(ctx: &EventContext, rng: &mut StdRng) -> [u32; 23] {
    let noise = if ctx.noisy_os { 3.0 } else { 1.0 };
    let storm = ctx.storm_b();
    let mut out = [0u32; 23];
    for code in BsodCode::ALL {
        let rate = b_base_rate(code) * noise * ctx.drift + 0.012 * storm * b_failure_weight(code);
        out[code.index()] = poisson_u32(rate, rng);
    }
    out
}

fn poisson_u32(lambda: f64, rng: &mut StdRng) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    Poisson::new(lambda).map_or(0, |d| d.sample(rng).min(1e6) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn total_over(ctx: &EventContext, days: usize, seed: u64) -> (u64, u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = 0u64;
        let mut b = 0u64;
        for _ in 0..days {
            w += daily_w_counts(ctx, &mut rng)
                .iter()
                .map(|&c| c as u64)
                .sum::<u64>();
            b += daily_b_counts(ctx, &mut rng)
                .iter()
                .map(|&c| c as u64)
                .sum::<u64>();
        }
        (w, b)
    }

    #[test]
    fn healthy_machines_are_quiet() {
        let (w, b) = total_over(&EventContext::healthy(), 180, 1);
        assert!(w < 10, "w = {w}");
        assert!(b < 10, "b = {b}");
    }

    #[test]
    fn failing_system_level_storms() {
        // Sum over the last 14 days before failure.
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = 0u64;
        for d in (0..14).rev() {
            let ctx = EventContext {
                days_to_failure: Some(d as f64),
                level: Some(FailureLevel::System),
                precursor: 1.0,
                noisy_os: false,
                drift: 1.0,
            };
            w += daily_w_counts(&ctx, &mut rng)
                .iter()
                .map(|&c| c as u64)
                .sum::<u64>();
        }
        assert!(w > 15, "w = {w}");
    }

    #[test]
    fn system_storms_harder_than_drive() {
        let mk = |level| EventContext {
            days_to_failure: Some(1.0),
            level: Some(level),
            precursor: 1.0,
            noisy_os: false,
            drift: 1.0,
        };
        let (ws, _) = total_over(&mk(FailureLevel::System), 30, 3);
        let (wd, _) = total_over(&mk(FailureLevel::Drive), 30, 3);
        assert!(ws > wd, "system {ws} vs drive {wd}");
    }

    #[test]
    fn noisy_os_machines_are_noisier_but_not_storming() {
        let noisy = EventContext {
            noisy_os: true,
            ..EventContext::healthy()
        };
        let (wn, _) = total_over(&noisy, 365, 4);
        let (wq, _) = total_over(&EventContext::healthy(), 365, 4);
        assert!(wn > wq);
        assert!(wn < 40, "wn = {wn}");
    }

    #[test]
    fn ramp_is_zero_far_from_failure_and_grows_towards_it() {
        assert_eq!(failure_ramp(30.0), 0.0);
        assert!(failure_ramp(10.0) < failure_ramp(5.0));
        assert!(failure_ramp(0.0) > 20.0);
    }

    #[test]
    fn drift_raises_benign_rates() {
        let drifted = EventContext {
            drift: 3.0,
            ..EventContext::healthy()
        };
        let (w3, _) = total_over(&drifted, 3000, 5);
        let (w1, _) = total_over(&EventContext::healthy(), 3000, 5);
        assert!(w3 > 2 * w1, "w3 = {w3}, w1 = {w1}");
    }

    #[test]
    fn storage_codes_weighted_higher() {
        assert!(b_failure_weight(BsodCode::B0x50) > b_failure_weight(BsodCode::B0x17E));
        assert!(w_failure_weight(WindowsEventId::W161) > w_failure_weight(WindowsEventId::W157));
    }
}
