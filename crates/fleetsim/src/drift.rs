//! Month-over-month covariate drift.
//!
//! §IV(5): after 2–3 months without retraining, MFPA's FPR creeps up —
//! "the historical changes of some feature values that MFPA has learned
//! in the past cannot adapt to the new data". The fleet reproduces this
//! by letting *healthy* baseline rates (benign W/B noise, benign SMART
//! blips, write intensity) scale up month over month: a model trained in
//! months 0–1 sees month-4 healthy drives as mildly anomalous.

/// Multiplier applied to healthy baseline event/anomaly rates on `day`,
/// given the configured monthly drift rate (30-day months).
///
/// Day 0–29 is month 0 (multiplier 1); each later month compounds
/// linearly: `1 + rate × month`.
///
/// # Example
///
/// ```
/// use mfpa_fleetsim::drift::drift_multiplier;
///
/// assert_eq!(drift_multiplier(10, 0.2), 1.0);
/// assert_eq!(drift_multiplier(95, 0.2), 1.6); // month 3
/// assert_eq!(drift_multiplier(95, 0.0), 1.0); // drift disabled
/// ```
pub fn drift_multiplier(day: i64, rate_per_month: f64) -> f64 {
    if rate_per_month <= 0.0 {
        return 1.0;
    }
    let month = (day.max(0) / 30) as f64;
    1.0 + rate_per_month * month
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_zero_is_identity() {
        for day in 0..30 {
            assert_eq!(drift_multiplier(day, 0.5), 1.0);
        }
    }

    #[test]
    fn monotone_in_time() {
        let mut prev = 0.0;
        for month in 0..6 {
            let m = drift_multiplier(month * 30, 0.15);
            assert!(m >= prev);
            prev = m;
        }
        assert!((drift_multiplier(150, 0.15) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn negative_days_clamped() {
        assert_eq!(drift_multiplier(-40, 0.5), 1.0);
    }
}
