//! Trouble-ticket generation (RaSRF).
//!
//! §III-C(2): "a faulty SSD may not be immediately sent to the after-sales
//! department" — the ticket's initial maintenance time (IMT) trails the
//! true failure by a repair delay. Causes follow Table I's distribution.

use mfpa_telemetry::{FailureCause, SerialNumber, TroubleTicket};
use rand::rngs::StdRng;
use rand::RngExt;

/// Samples a failure cause from Table I's RaSRF distribution.
pub fn sample_cause(rng: &mut StdRng) -> FailureCause {
    let total: f64 = FailureCause::ALL.iter().map(|c| c.paper_percentage()).sum();
    let mut u = rng.random_range(0.0..total);
    for cause in FailureCause::ALL {
        u -= cause.paper_percentage();
        if u <= 0.0 {
            return cause;
        }
    }
    FailureCause::AppsCrash // numerically unreachable fallback
}

/// Samples the repair delay (days between failure and IMT): geometric
/// with the given mean, capped at 30 days; a mean of 0 means same-day.
pub fn sample_repair_delay(mean_days: f64, rng: &mut StdRng) -> i64 {
    if mean_days <= 0.0 {
        return 0;
    }
    let p = (1.0 / (mean_days + 1.0)).clamp(1e-6, 1.0 - 1e-6);
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    ((u.ln() / (1.0 - p).ln()).floor() as i64).clamp(0, 30)
}

/// Creates the trouble ticket for a failure on `failure_day`.
pub fn make_ticket(
    serial: SerialNumber,
    failure_day: i64,
    cause: FailureCause,
    mean_repair_delay: f64,
    rng: &mut StdRng,
) -> TroubleTicket {
    let delay = sample_repair_delay(mean_repair_delay, rng);
    TroubleTicket::new(
        serial,
        mfpa_telemetry::DayStamp::new(failure_day + delay),
        cause,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_telemetry::{FailureLevel, Vendor};
    use rand::SeedableRng;

    #[test]
    fn cause_distribution_matches_table_i() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut drive_level = 0usize;
        for _ in 0..n {
            if sample_cause(&mut rng).level() == FailureLevel::Drive {
                drive_level += 1;
            }
        }
        let pct = drive_level as f64 / n as f64 * 100.0;
        assert!((pct - 31.62).abs() < 1.5, "drive-level = {pct:.2}%");
    }

    #[test]
    fn repair_delay_mean_and_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let delays: Vec<i64> = (0..n).map(|_| sample_repair_delay(4.0, &mut rng)).collect();
        assert!(delays.iter().all(|&d| (0..=30).contains(&d)));
        let mean: f64 = delays.iter().sum::<i64>() as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.6, "mean = {mean}");
    }

    #[test]
    fn zero_mean_delay_is_same_day() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(sample_repair_delay(0.0, &mut rng), 0);
        }
    }

    #[test]
    fn ticket_imt_not_before_failure() {
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..100 {
            let t = make_ticket(
                SerialNumber::new(Vendor::II, i),
                50,
                FailureCause::Bootloop,
                5.0,
                &mut rng,
            );
            assert!(t.imt().day() >= 50);
            assert!(t.imt().day() <= 80);
        }
    }
}
