//! Bathtub hazard model and firmware hazard multipliers.
//!
//! Obs #1 (Fig 2): plotting failures against power-on hours "fits the
//! bathtub curve of the SSD lifecycle" — elevated infant mortality, a
//! stable useful-life plateau, then wear-out. Obs #2 (Fig 3): "the
//! earlier the firmware version, the higher the failure rate".

use mfpa_telemetry::Vendor;
use rand::rngs::StdRng;
use rand::RngExt;

/// The normalised bathtub hazard shape over drive age (days).
///
/// `shape(age)` integrates to roughly `age_span` over a deployment
/// lifetime, i.e. it averages to ≈1, so a vendor's scale factor maps
/// directly to a per-day hazard.
///
/// # Example
///
/// ```
/// use mfpa_fleetsim::hazard::Bathtub;
///
/// let b = Bathtub::default();
/// // Infant mortality: day 5 is riskier than day 300.
/// assert!(b.shape(5.0) > b.shape(300.0));
/// // Wear-out: day 900 is riskier than day 300.
/// assert!(b.shape(900.0) > b.shape(300.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bathtub {
    /// Infant-mortality amplitude.
    pub infant_amp: f64,
    /// Infant-mortality decay constant (days).
    pub infant_tau: f64,
    /// Constant useful-life hazard.
    pub base: f64,
    /// Wear-out amplitude.
    pub wear_amp: f64,
    /// Wear-out onset scale (days).
    pub wear_scale: f64,
    /// Wear-out polynomial exponent.
    pub wear_pow: f64,
    norm: f64,
}

impl Default for Bathtub {
    fn default() -> Self {
        let mut b = Bathtub {
            infant_amp: 6.0,
            infant_tau: 55.0,
            base: 1.0,
            wear_amp: 10.0,
            wear_scale: 730.0,
            wear_pow: 4.0,
            norm: 1.0,
        };
        b.normalise(910.0);
        b
    }
}

impl Bathtub {
    /// Raw (unnormalised) hazard shape at `age` days.
    fn raw(&self, age: f64) -> f64 {
        let age = age.max(0.0);
        self.infant_amp * (-age / self.infant_tau).exp()
            + self.base
            + self.wear_amp * (age / self.wear_scale).powf(self.wear_pow)
    }

    /// Rescales the shape so its mean over `[0, span]` is 1.
    pub fn normalise(&mut self, span: f64) {
        self.norm = 1.0;
        let mean = self.integrate(0.0, span) / span;
        self.norm = 1.0 / mean;
    }

    /// Normalised hazard shape at `age` days.
    pub fn shape(&self, age: f64) -> f64 {
        self.raw(age) * self.norm
    }

    /// Trapezoidal integral of the shape over `[from, to]` (1-day steps).
    pub fn integrate(&self, from: f64, to: f64) -> f64 {
        if to <= from {
            return 0.0;
        }
        let steps = ((to - from).ceil() as usize).max(1);
        let dx = (to - from) / steps as f64;
        let mut acc = 0.0;
        for i in 0..steps {
            let a = from + i as f64 * dx;
            acc += 0.5 * (self.raw(a) + self.raw(a + dx)) * dx;
        }
        acc * self.norm
    }
}

/// Firmware hazard multiplier: release `seq` (1-based, 1 = oldest) out of
/// `count` releases for a vendor. Each release back in time multiplies
/// hazard by `per_release`; the newest release has multiplier 1.
///
/// # Example
///
/// ```
/// use mfpa_fleetsim::hazard::firmware_multiplier;
///
/// assert_eq!(firmware_multiplier(5, 5, 1.7), 1.0);
/// assert!(firmware_multiplier(1, 5, 1.7) > firmware_multiplier(2, 5, 1.7));
/// ```
pub fn firmware_multiplier(seq: u32, count: u32, per_release: f64) -> f64 {
    // mfpa-lint: allow(d6, "firmware release counts are single digits; i32 cannot truncate them")
    per_release.powi(count.saturating_sub(seq) as i32)
}

/// Default per-release hazard factor used by the fleet (Fig 3 shape).
pub const FIRMWARE_HAZARD_PER_RELEASE: f64 = 1.7;

/// Expected firmware multiplier for a vendor under the fleet's deployment
/// model (uniform deployment over firmware eras, with
/// [`FIRMWARE_UPDATE_PROB`] of drives having moved one release forward).
/// Used to calibrate the vendor hazard scale so firmware skew doesn't
/// shift the overall replacement rate.
pub fn expected_firmware_multiplier(vendor: Vendor) -> f64 {
    let count = vendor.firmware_count();
    let mut acc = 0.0;
    for era in 1..=count {
        let updated = (era + 1).min(count);
        acc += (1.0 - FIRMWARE_UPDATE_PROB)
            * firmware_multiplier(era, count, FIRMWARE_HAZARD_PER_RELEASE)
            + FIRMWARE_UPDATE_PROB
                * firmware_multiplier(updated, count, FIRMWARE_HAZARD_PER_RELEASE);
    }
    acc / count as f64
}

/// Probability that a drive updated past its deployment-era firmware
/// (Obs #2: "most SSDs in the historical dataset remain on the fixed F").
pub const FIRMWARE_UPDATE_PROB: f64 = 0.15;

/// Samples the firmware release for a drive deployed `age0` days before
/// the campaign, assuming `count` releases spread uniformly over the
/// deployment window `[0, max_age0]`: older cohorts shipped with older
/// firmware, and a minority updated one release.
pub fn sample_firmware_seq(age0: f64, max_age0: f64, count: u32, rng: &mut StdRng) -> u32 {
    // Era 1 = oldest cohort (largest age0).
    let frac = 1.0 - (age0 / max_age0).clamp(0.0, 1.0);
    // mfpa-lint: allow(d6, "era is clamped to [1, count] with count a small firmware release total")
    let era = ((frac * count as f64).floor() as u32 + 1).min(count);
    if rng.random_range(0.0..1.0) < FIRMWARE_UPDATE_PROB {
        (era + 1).min(count)
    } else {
        era
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shape_mean_is_one() {
        let b = Bathtub::default();
        let mean = b.integrate(0.0, 910.0) / 910.0;
        assert!((mean - 1.0).abs() < 1e-6, "mean = {mean}");
    }

    #[test]
    fn bathtub_has_both_ends_elevated() {
        let b = Bathtub::default();
        let infant = b.shape(1.0);
        let mid = b.shape(365.0);
        let old = b.shape(900.0);
        assert!(infant > 2.0 * mid);
        assert!(old > 1.5 * mid);
    }

    #[test]
    fn integral_is_additive() {
        let b = Bathtub::default();
        let whole = b.integrate(0.0, 400.0);
        let parts = b.integrate(0.0, 150.0) + b.integrate(150.0, 400.0);
        assert!((whole - parts).abs() < 1e-9);
        assert_eq!(b.integrate(100.0, 100.0), 0.0);
        assert_eq!(b.integrate(200.0, 100.0), 0.0);
    }

    #[test]
    fn firmware_multiplier_monotone_decreasing_in_seq() {
        for count in 2..=5u32 {
            for seq in 1..count {
                assert!(
                    firmware_multiplier(seq, count, 1.7) > firmware_multiplier(seq + 1, count, 1.7)
                );
            }
        }
    }

    #[test]
    fn expected_multiplier_positive_and_vendor_dependent() {
        let e1 = expected_firmware_multiplier(Vendor::I); // 5 releases
        let e4 = expected_firmware_multiplier(Vendor::IV); // 2 releases
        assert!(e1 > e4, "{e1} vs {e4}");
        assert!(e4 >= 1.0);
    }

    #[test]
    fn firmware_sampling_respects_cohorts() {
        let mut rng = StdRng::seed_from_u64(1);
        // Very old cohort → mostly release 1; fresh cohort → newest.
        let mut old_hits = 0;
        let mut new_hits = 0;
        for _ in 0..200 {
            if sample_firmware_seq(720.0, 730.0, 5, &mut rng) <= 2 {
                old_hits += 1;
            }
            if sample_firmware_seq(5.0, 730.0, 5, &mut rng) == 5 {
                new_hits += 1;
            }
        }
        assert!(old_hits > 150, "old cohort hits = {old_hits}");
        assert!(new_hits > 150, "new cohort hits = {new_hits}");
    }
}
