//! SMART degradation trajectories for healthy and failing drives.
//!
//! Drive-level failures (Table I, 31.62%) degrade SMART hard: media
//! errors ramp, spare capacity collapses, the critical-warning bit trips.
//! System-level failures (68.38%) may keep SMART largely quiet — a
//! configurable fraction is "SMART-silent" — which is precisely why the
//! paper's W/B features add TPR over the SMART-only model. A small
//! fraction of *healthy* drives exhibits benign SMART anomalies (ageing
//! media-error blips), which is what drives the SMART-only model's FPR.

use mfpa_telemetry::{FailureLevel, SmartAttr, SmartValues};
use rand::rngs::StdRng;
use rand::RngExt;
use rand_distr::{Distribution, Normal, Poisson};

use crate::usage::UsageProfile;

/// Days before failure at which degradation signals start ramping.
pub const RAMP_DAYS: f64 = 14.0;

/// The failure plan attached to a drive destined to fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePlan {
    /// Campaign day on which the drive dies.
    pub day: i64,
    /// Drive-level or system-level manifestation.
    pub level: FailureLevel,
    /// Whether SMART stays quiet (only W/B precursors fire).
    pub smart_silent: bool,
    /// Scale on the W/B pre-failure storm: 1.0 for ordinary failures,
    /// ≈0.05 for sudden deaths (controller drops dead without OS-visible
    /// precursors). A failure that is both SMART-silent and sudden is
    /// unpredictable by any feature set — the source of MFPA's residual
    /// ~2% misses.
    pub precursor_scale: f64,
    /// Whether the failure is thermally driven (Table I overtemperature).
    pub overtemp: bool,
}

/// Stateful generator of one drive's SMART values over its observed days.
///
/// Call [`SmartTrajectory::record_for`] once per observed day, in
/// chronological order; cumulative counters advance one active day per
/// call.
#[derive(Debug, Clone)]
pub struct SmartTrajectory {
    capacity_gb: u32,
    hours_per_day: f64,
    write_units_per_day: f64,
    read_factor: f64,
    endurance_units: f64,
    noisy_smart: bool,
    plan: Option<FailurePlan>,
    // Cumulative state.
    poh: f64,
    cycles: f64,
    written: f64,
    read: f64,
    write_cmds: f64,
    read_cmds: f64,
    busy_minutes: f64,
    unsafe_shutdowns: f64,
    media_errors: f64,
    err_log: f64,
    spare: f64,
}

impl SmartTrajectory {
    /// Creates a trajectory for a drive that is `age0` days old at
    /// campaign start. `noisy_smart` marks the benign-anomaly healthy
    /// subpopulation; `plan` is `Some` for drives destined to fail.
    pub fn new(
        profile: &UsageProfile,
        capacity_gb: u32,
        age0: f64,
        noisy_smart: bool,
        plan: Option<FailurePlan>,
        rng: &mut StdRng,
    ) -> Self {
        let write_units_per_day = rng.random_range(8.0..40.0);
        let active_days_before = age0 * profile.daily_on_prob;
        let written0 = active_days_before * write_units_per_day;
        let read_factor = rng.random_range(1.1..1.8);
        SmartTrajectory {
            capacity_gb,
            hours_per_day: profile.hours_per_day,
            write_units_per_day,
            read_factor,
            // Scale so heavy writers on small drives approach high wear
            // within a couple of years.
            endurance_units: capacity_gb as f64 * 60.0,
            noisy_smart,
            plan,
            poh: active_days_before * profile.hours_per_day,
            cycles: active_days_before * 1.4,
            written: written0,
            read: written0 * read_factor,
            write_cmds: written0 * 2_000.0,
            read_cmds: written0 * read_factor * 2_400.0,
            busy_minutes: active_days_before * profile.hours_per_day * 1.1,
            unsafe_shutdowns: (active_days_before * 0.02).floor(),
            media_errors: 0.0,
            err_log: (active_days_before * 0.01).floor(),
            spare: 100.0,
        }
    }

    /// Days until the planned failure as of `day` (`None` for healthy).
    fn days_to_failure(&self, day: i64) -> Option<f64> {
        self.plan.map(|p| (p.day - day) as f64)
    }

    /// Advances one active day and returns the SMART snapshot for `day`.
    /// `drift` scales benign anomaly rates (Fig 12/16 covariate drift).
    pub fn record_for(&mut self, day: i64, drift: f64, rng: &mut StdRng) -> SmartValues {
        // --- workload counters -------------------------------------------------
        let daily_write = (self.write_units_per_day * rng.random_range(0.5..1.5)).max(0.0);
        let daily_read = daily_write * self.read_factor;
        self.poh += self.hours_per_day * rng.random_range(0.6..1.4);
        self.cycles += rng.random_range(1.0..2.2f64).round();
        self.written += daily_write;
        self.read += daily_read;
        self.write_cmds += daily_write * 2_000.0 * rng.random_range(0.8..1.2);
        self.read_cmds += daily_read * 2_400.0 * rng.random_range(0.8..1.2);
        self.busy_minutes += self.hours_per_day * rng.random_range(0.8..1.4);

        let dtf = self.days_to_failure(day);
        // Post-failure (zombie-reporter) days stay at the peak ramp.
        let ramp = match dtf {
            Some(d) if d <= RAMP_DAYS => ((RAMP_DAYS - d.max(0.0)) / 3.5).exp(),
            _ => 0.0,
        };
        let (level, silent, overtemp) = match self.plan {
            Some(p) => (Some(p.level), p.smart_silent, p.overtemp),
            None => (None, false, false),
        };

        // --- error counters ----------------------------------------------------
        let media_rate = match (level, silent) {
            (Some(_), true) | (None, _) => 0.0,
            (Some(FailureLevel::Drive), false) => 0.5 * ramp,
            (Some(FailureLevel::System), false) => 0.12 * ramp,
        } + if self.noisy_smart {
            0.08 * drift
        } else {
            0.002 * drift
        };
        self.media_errors += poisson(media_rate, rng);

        let unsafe_rate = match (level, silent) {
            (Some(_), false) => 0.35 * (ramp / (1.0 + ramp)).min(1.0) * 4.0,
            // SMART-silent failures by definition leave no SMART trace
            // beyond the healthy baseline.
            (Some(_), true) | (None, _) => 0.0,
        } + 0.02 * drift;
        self.unsafe_shutdowns += poisson(unsafe_rate, rng);

        self.err_log += self.media_errors * 0.02 + poisson(0.01 * drift, rng);

        // --- spare capacity ----------------------------------------------------
        let wear = (self.written / self.endurance_units * 100.0).min(100.0);
        let healthy_spare = (100.0 - wear * 0.08).max(85.0);
        if let (Some(FailureLevel::Drive), Some(d)) = (level, dtf) {
            if d <= 10.0 && !silent {
                self.spare -= rng.random_range(2.0..9.0);
            }
        }
        self.spare = self.spare.min(healthy_spare).max(0.0);

        // --- assemble the snapshot ---------------------------------------------
        let threshold = 10.0;
        let critical = if self.spare < threshold || self.media_errors > 60.0 {
            1.0
        } else {
            0.0
        };
        let temp_boost = match (overtemp, dtf) {
            (true, Some(d)) if d <= 5.0 => 9.0,
            _ => 0.0,
        };
        let temperature = normal(38.0, 3.0, rng) + temp_boost;

        let mut s = SmartValues::default();
        s.set(SmartAttr::CriticalWarning, critical);
        s.set(SmartAttr::CompositeTemperature, temperature);
        s.set(SmartAttr::AvailableSpare, self.spare.floor());
        s.set(SmartAttr::AvailableSpareThreshold, threshold);
        s.set(SmartAttr::PercentageUsed, wear.floor());
        s.set(SmartAttr::DataUnitsRead, self.read.floor());
        s.set(SmartAttr::DataUnitsWritten, self.written.floor());
        s.set(SmartAttr::HostReadCommands, self.read_cmds.floor());
        s.set(SmartAttr::HostWriteCommands, self.write_cmds.floor());
        s.set(SmartAttr::ControllerBusyTime, self.busy_minutes.floor());
        s.set(SmartAttr::PowerCycles, self.cycles.floor());
        s.set(SmartAttr::PowerOnHours, self.poh.floor());
        s.set(SmartAttr::UnsafeShutdowns, self.unsafe_shutdowns.floor());
        s.set(SmartAttr::MediaErrors, self.media_errors.floor());
        s.set(SmartAttr::ErrorLogEntries, self.err_log.floor());
        s.set(SmartAttr::Capacity, self.capacity_gb as f64);
        s
    }

    /// Current cumulative power-on hours.
    pub fn power_on_hours(&self) -> f64 {
        self.poh
    }
}

fn poisson(lambda: f64, rng: &mut StdRng) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    Poisson::new(lambda).map_or(0.0, |d| d.sample(rng))
}

fn normal(mean: f64, std: f64, rng: &mut StdRng) -> f64 {
    Normal::new(mean, std).map_or(mean, |d| d.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(plan: Option<FailurePlan>, noisy: bool, days: i64, seed: u64) -> Vec<SmartValues> {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = UsageProfile::always_on();
        let mut traj = SmartTrajectory::new(&profile, 512, 200.0, noisy, plan, &mut rng);
        (0..days)
            .map(|d| traj.record_for(d, 1.0, &mut rng))
            .collect()
    }

    fn last(v: &[SmartValues], attr: SmartAttr) -> f64 {
        v.last().unwrap().get(attr)
    }

    #[test]
    fn cumulative_counters_monotone() {
        let recs = run(None, false, 60, 1);
        for attr in [
            SmartAttr::PowerOnHours,
            SmartAttr::DataUnitsWritten,
            SmartAttr::PowerCycles,
            SmartAttr::MediaErrors,
        ] {
            let vals: Vec<f64> = recs.iter().map(|r| r.get(attr)).collect();
            assert!(vals.windows(2).all(|w| w[1] >= w[0]), "{attr} not monotone");
        }
    }

    #[test]
    fn healthy_drive_stays_clean() {
        let recs = run(None, false, 120, 2);
        assert!(last(&recs, SmartAttr::MediaErrors) < 5.0);
        assert!(last(&recs, SmartAttr::AvailableSpare) > 80.0);
        assert_eq!(last(&recs, SmartAttr::CriticalWarning), 0.0);
    }

    #[test]
    fn drive_level_failure_degrades_smart() {
        let plan = FailurePlan {
            day: 100,
            level: FailureLevel::Drive,
            smart_silent: false,
            precursor_scale: 1.0,
            overtemp: false,
        };
        let recs = run(Some(plan), false, 101, 3);
        assert!(
            last(&recs, SmartAttr::MediaErrors) > 30.0,
            "media errors = {}",
            last(&recs, SmartAttr::MediaErrors)
        );
        assert!(last(&recs, SmartAttr::AvailableSpare) < 60.0);
    }

    #[test]
    fn smart_silent_failure_keeps_media_errors_low() {
        let plan = FailurePlan {
            day: 100,
            level: FailureLevel::System,
            smart_silent: true,
            precursor_scale: 1.0,
            overtemp: false,
        };
        let recs = run(Some(plan), false, 101, 4);
        assert!(last(&recs, SmartAttr::MediaErrors) < 5.0);
        assert!(last(&recs, SmartAttr::AvailableSpare) > 80.0);
    }

    #[test]
    fn noisy_healthy_accumulates_benign_errors() {
        let recs = run(None, true, 150, 5);
        let me = last(&recs, SmartAttr::MediaErrors);
        assert!(me > 3.0, "media errors = {me}");
        assert!(me < 40.0, "media errors = {me}");
    }

    #[test]
    fn overtemp_failure_heats_up_near_death() {
        let plan = FailurePlan {
            day: 30,
            level: FailureLevel::Drive,
            smart_silent: false,
            precursor_scale: 1.0,
            overtemp: true,
        };
        let recs = run(Some(plan), false, 31, 6);
        let early: f64 = recs[..20]
            .iter()
            .map(|r| r.get(SmartAttr::CompositeTemperature))
            .sum::<f64>()
            / 20.0;
        let late: f64 = recs[26..]
            .iter()
            .map(|r| r.get(SmartAttr::CompositeTemperature))
            .sum::<f64>()
            / 5.0;
        assert!(late > early + 4.0, "early {early:.1}, late {late:.1}");
    }

    #[test]
    fn capacity_constant_and_threshold_fixed() {
        let recs = run(None, false, 10, 7);
        for r in &recs {
            assert_eq!(r.get(SmartAttr::Capacity), 512.0);
            assert_eq!(r.get(SmartAttr::AvailableSpareThreshold), 10.0);
        }
    }

    #[test]
    fn age_seeds_cumulative_state() {
        let mut rng = StdRng::seed_from_u64(8);
        let profile = UsageProfile::always_on();
        let old = SmartTrajectory::new(&profile, 256, 700.0, false, None, &mut rng);
        let new = SmartTrajectory::new(&profile, 256, 10.0, false, None, &mut rng);
        assert!(old.power_on_hours() > new.power_on_hours() * 10.0);
    }
}
