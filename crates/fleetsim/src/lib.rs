//! Synthetic production consumer storage system (CSS).
//!
//! The paper studies ~2.3 million consumer M.2 NVMe SSDs with proprietary
//! Huawei telemetry; this crate is the substitution documented in
//! DESIGN.md: a generative fleet model that encodes the paper's empirical
//! observations so the MFPA pipeline exercises the same phenomena:
//!
//! * **Bathtub lifetimes** (Obs #1 / Fig 2): per-drive hazard is a Weibull
//!   infant-mortality term + constant + wear-out term ([`hazard`]).
//! * **Firmware effects** (Obs #2 / Fig 3): earlier firmware releases
//!   carry higher hazard multipliers; most drives never update.
//! * **Windows events and BSODs as precursors** (Obs #3–#4 / Figs 4–5):
//!   Poisson event processes whose rates ramp up before failure
//!   ([`events`]), much more strongly for system-level failures.
//! * **Discontinuous observation** (Fig 6): consumer machines are not
//!   powered on daily; a per-user activity profile plus vacation gaps
//!   drive which days produce records ([`usage`]).
//! * **Drive-level vs system-level failure mix** (Table I): failure causes
//!   are drawn from the RaSRF taxonomy; drive-level failures degrade
//!   SMART hard, system-level ones may be SMART-silent ([`degradation`]).
//! * **Repair procrastination** (§III-C(2)): trouble tickets carry an
//!   initial maintenance time days after the true failure ([`tickets`]).
//! * **Covariate drift** (Fig 12/16): healthy baseline rates drift month
//!   over month, eroding a frozen model's FPR ([`drift`]).
//! * **Corrupted collection**: consumer telemetry arrives through a flaky
//!   client/uplink path; an optional deterministic fault-injection layer
//!   ([`faults`], configured via [`FaultConfig`]) corrupts the emitted
//!   stream with sentinel SMART pages, stuck-at attributes, counter
//!   rollovers, duplicated / reordered deliveries, missing attributes and
//!   clock skew.
//!
//! # Example
//!
//! ```
//! use mfpa_fleetsim::{FleetConfig, SimulatedFleet};
//!
//! let fleet = SimulatedFleet::generate(&FleetConfig::tiny(42));
//! assert!(!fleet.tickets().is_empty());
//! assert_eq!(fleet.drives().iter().filter(|d| d.truth().is_some()).count(),
//!            fleet.failures().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
pub mod degradation;
pub mod drift;
pub mod events;
pub mod faults;
mod fleet;
pub mod hazard;
pub mod replay;
pub mod tickets;
pub mod usage;

pub use config::{FaultConfig, FleetConfig, STUDY_DAYS};
pub use faults::FaultCounts;
pub use fleet::{FailureRecord, FailureTruth, SimulatedDrive, SimulatedFleet, VendorStats};
pub use replay::{ArrivalEvent, TransportFaultConfig, TransportFaultCounts};
