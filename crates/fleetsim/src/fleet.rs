//! Fleet generation: populations, failures, telemetry and tickets.

use mfpa_par::{ordered_map, Workers};
use mfpa_telemetry::{
    DailyRecord, DayStamp, DriveHistory, DriveModel, FailureCause, FailureLevel, FirmwareVersion,
    SerialNumber, TroubleTicket, Vendor,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::config::FleetConfig;
use crate::degradation::{FailurePlan, SmartTrajectory};
use crate::drift::drift_multiplier;
use crate::events::{daily_b_counts, daily_w_counts, EventContext};
use crate::faults::{inject, FaultCounts};
use crate::hazard::{
    expected_firmware_multiplier, firmware_multiplier, sample_firmware_seq, Bathtub,
    FIRMWARE_HAZARD_PER_RELEASE,
};
use crate::tickets::sample_cause;
use crate::usage::UsageProfile;

/// Maximum drive age (days) at campaign start; deployment is uniform over
/// this window, matching the paper's "nearly two years" of history.
pub const MAX_AGE0: f64 = 730.0;

/// Population statistics for one vendor (Table VI reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorStats {
    /// The vendor.
    pub vendor: Vendor,
    /// Drives instantiated for this vendor.
    pub population: u64,
    /// Drives that failed during the campaign.
    pub failures: u64,
}

impl VendorStats {
    /// In-campaign replacement rate (failures / population).
    pub fn replacement_rate(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.failures as f64 / self.population as f64
        }
    }
}

/// Ground truth about one failed drive (evaluation only — the pipeline
/// itself labels via trouble tickets, like the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureTruth {
    /// The day the drive actually died.
    pub failure_day: DayStamp,
    /// The recorded failure cause.
    pub cause: FailureCause,
}

/// One failure in the population (drives Fig 2 and Fig 3).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Serial of the failed drive.
    pub serial: SerialNumber,
    /// Drive model.
    pub model: DriveModel,
    /// Firmware it was running.
    pub firmware: FirmwareVersion,
    /// Campaign day of death.
    pub failure_day: DayStamp,
    /// Drive age (days since deployment) at death.
    pub age_at_failure_days: i64,
    /// Cumulative power-on hours at death.
    pub poh_at_failure: f64,
    /// Failure cause (Table I taxonomy).
    pub cause: FailureCause,
}

/// One drive with full telemetry (all failed drives plus a sampled
/// healthy cohort).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedDrive {
    history: DriveHistory,
    raw_records: Vec<DailyRecord>,
    firmware: FirmwareVersion,
    truth: Option<FailureTruth>,
}

impl SimulatedDrive {
    /// The drive's telemetry history: the collector's view after sorting
    /// by day and collapsing duplicated days (last record wins). With
    /// fault injection enabled the *values* in here are still corrupted —
    /// only delivery-order artefacts are normalised away.
    pub fn history(&self) -> &DriveHistory {
        &self.history
    }

    /// The raw emission stream exactly as the collector received it:
    /// possibly duplicated, out of order, clock-skewed and value-corrupted
    /// ([`crate::faults`]). With fault injection disabled this equals
    /// [`SimulatedDrive::history`]'s records. This is what a sanitization
    /// stage should consume.
    pub fn raw_records(&self) -> &[DailyRecord] {
        &self.raw_records
    }

    /// The drive's serial number.
    pub fn serial(&self) -> SerialNumber {
        self.history.serial()
    }

    /// The drive's vendor.
    pub fn vendor(&self) -> Vendor {
        self.serial().vendor()
    }

    /// The firmware version the drive runs.
    pub fn firmware(&self) -> &FirmwareVersion {
        &self.firmware
    }

    /// Ground-truth failure info (`None` = healthy). Evaluation only;
    /// training labels come from tickets.
    pub fn truth(&self) -> Option<&FailureTruth> {
        self.truth.as_ref()
    }
}

/// Per-firmware population/failure counts (Fig 3 reproduction).
#[derive(Debug, Clone, PartialEq)]
pub struct FirmwareStats {
    /// The firmware version.
    pub firmware: FirmwareVersion,
    /// Drives running it.
    pub population: u64,
    /// Failures among them.
    pub failures: u64,
}

impl FirmwareStats {
    /// Failure rate of this firmware version.
    pub fn failure_rate(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.failures as f64 / self.population as f64
        }
    }
}

/// A generated fleet: population statistics, telemetry histories for the
/// failed + sampled-healthy cohort, trouble tickets, and the full failure
/// list.
#[derive(Debug, Clone)]
pub struct SimulatedFleet {
    config: FleetConfig,
    stats: Vec<VendorStats>,
    firmware_stats: Vec<FirmwareStats>,
    drives: Vec<SimulatedDrive>,
    tickets: Vec<TroubleTicket>,
    failures: Vec<FailureRecord>,
    age_exposure_days: Vec<f64>,
    injected_faults: FaultCounts,
}

/// A healthy drive awaiting the telemetry lottery.
#[derive(Debug, Clone, Copy)]
struct HealthyStub {
    serial: SerialNumber,
    model_ix: u8,
    age0: f64,
    fw_seq: u32,
}

/// A failed drive before telemetry generation.
#[derive(Debug, Clone, Copy)]
struct FailureStub {
    serial: SerialNumber,
    model_ix: u8,
    age0: f64,
    fw_seq: u32,
    failure_day: i64,
    cause: FailureCause,
}

/// One drive's fully-planned telemetry job. Every draw from the shared
/// fleet RNG has already happened by the time a job exists, so jobs can
/// run on any worker in any order: telemetry content comes from a
/// per-drive generator seeded by `(fleet seed, serial)`.
#[derive(Debug, Clone, Copy)]
struct TelemetryJob {
    serial: SerialNumber,
    model_ix: u8,
    age0: f64,
    fw_seq: u32,
    plan: Option<FailurePlan>,
    noisy_smart: bool,
    noisy_os: bool,
    last_day: i64,
}

impl SimulatedFleet {
    /// Generates a fleet deterministically from the configuration.
    pub fn generate(config: &FleetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let horizon = config.horizon_days;
        let bathtub = Bathtub::default();
        // Cumulative hazard-shape table at integer ages for O(1) interval
        // integrals.
        let table_len = (MAX_AGE0 as usize) + horizon as usize + 2;
        let mut cum = Vec::with_capacity(table_len + 1);
        cum.push(0.0);
        for i in 0..table_len {
            let a = i as f64;
            cum.push(cum[i] + 0.5 * (bathtub.shape(a) + bathtub.shape(a + 1.0)));
        }
        let interval = |a: f64, b: f64| -> f64 {
            let lerp = |x: f64| -> f64 {
                let x = x.clamp(0.0, table_len as f64);
                let i = x.floor() as usize;
                let f = x - i as f64;
                if i + 1 < cum.len() {
                    cum[i] * (1.0 - f) + cum[i + 1] * f
                } else {
                    cum[table_len]
                }
            };
            (lerp(b) - lerp(a)).max(0.0)
        };

        let mut stats = Vec::new();
        let mut fw_pop = std::collections::BTreeMap::<(usize, u32), (u64, u64)>::new();
        let mut healthy_pool: Vec<HealthyStub> = Vec::new();
        let mut failure_stubs: Vec<FailureStub> = Vec::new();
        // Difference array over integer drive ages: +1 day of exposure for
        // every age a drive passes through during the campaign.
        let mut exposure_diff = vec![0.0f64; table_len + 2];

        for vendor in Vendor::ALL {
            let n =
                ((vendor.paper_population() as f64) * config.population_fraction).round() as u64;
            let n = n.max(1);
            let p_target = config.campaign_failure_probability(vendor.paper_replacement_rate());
            let e_fw = expected_firmware_multiplier(vendor);
            let models = vendor.models();
            let mut failures = 0u64;
            for id in 0..n {
                let serial = SerialNumber::new(vendor, id);
                // Consumer fleets skew young: shipments grow year over
                // year, so the deployment-age density falls with age.
                let age0 = MAX_AGE0 * rng.random_range(0.0..1.0f64).powf(1.5);
                let fw_seq = sample_firmware_seq(age0, MAX_AGE0, vendor.firmware_count(), &mut rng);
                let model_ix = rng.random_range(0..models.len());
                let fw_mult = firmware_multiplier(
                    fw_seq,
                    vendor.firmware_count(),
                    FIRMWARE_HAZARD_PER_RELEASE,
                );
                let lo = (age0 as usize).min(table_len);
                let hi = ((age0 + horizon as f64) as usize).min(table_len + 1);
                exposure_diff[lo] += 1.0;
                exposure_diff[hi] -= 1.0;
                let shape_int = interval(age0, age0 + horizon as f64);
                let p = (p_target * (shape_int / horizon as f64) * (fw_mult / e_fw)).min(0.95);
                let entry = fw_pop.entry((vendor.index(), fw_seq)).or_insert((0, 0));
                entry.0 += 1;
                if rng.random_range(0.0..1.0) < p {
                    failures += 1;
                    entry.1 += 1;
                    // Inverse-transform the failure day along the hazard.
                    let v: f64 = rng.random_range(0.0..1.0);
                    let total = shape_int.max(1e-12);
                    let mut lo = 0i64;
                    let mut hi = horizon;
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        if interval(age0, age0 + mid as f64) / total < v {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    let failure_day = lo.min(horizon - 1);
                    failure_stubs.push(FailureStub {
                        serial,
                        model_ix: models[model_ix].index() as u8,
                        age0,
                        fw_seq,
                        failure_day,
                        cause: sample_cause(&mut rng),
                    });
                } else {
                    healthy_pool.push(HealthyStub {
                        serial,
                        model_ix: models[model_ix].index() as u8,
                        age0,
                        fw_seq,
                    });
                }
            }
            stats.push(VendorStats {
                vendor,
                population: n,
                failures,
            });
        }

        // Healthy telemetry lottery.
        let want_healthy = ((failure_stubs.len() as f64) * config.healthy_per_failure)
            .round()
            .min(healthy_pool.len() as f64) as usize;
        healthy_pool.shuffle(&mut rng);
        healthy_pool.truncate(want_healthy);
        // Stable order for reproducibility of downstream iteration.
        healthy_pool.sort_by_key(|s| s.serial);

        // Telemetry planning: every remaining shared-RNG draw (failure
        // shape, repair delay, zombie window, healthy noise flags) happens
        // here, serially, so the plan is independent of worker count.
        let mut jobs = Vec::with_capacity(failure_stubs.len() + healthy_pool.len());
        let mut delays = Vec::with_capacity(failure_stubs.len());
        for stub in &failure_stubs {
            let level = stub.cause.level();
            let (sudden_fraction, silent_fraction) = match level {
                FailureLevel::Drive => (
                    config.sudden_drive_fraction,
                    config.smart_silent_drive_fraction,
                ),
                FailureLevel::System => {
                    (config.sudden_system_fraction, config.smart_silent_fraction)
                }
            };
            // Vendor heterogeneity: vendor IV's budget controllers die
            // abruptly far more often, so its failures carry much weaker
            // precursors — combined with its small failure count this is
            // why the per-vendor IV model performs poorly (Fig 11).
            let (sudden_fraction, silent_fraction) = match stub.serial.vendor() {
                Vendor::IV => (
                    (sudden_fraction * 3.0).min(0.8),
                    (silent_fraction * 4.0).min(0.5),
                ),
                _ => (sudden_fraction, silent_fraction),
            };
            let smart_silent = rng.random_range(0.0..1.0) < silent_fraction;
            // Abrupt deaths tend to be silent on every channel at once, so
            // SMART-silent failures are disproportionately sudden — the
            // joint events are MFPA's residual ~2% misses.
            let sudden_fraction = if smart_silent { 0.35 } else { sudden_fraction };
            let plan = FailurePlan {
                day: stub.failure_day,
                level,
                smart_silent,
                precursor_scale: if rng.random_range(0.0..1.0) < sudden_fraction {
                    0.004
                } else {
                    1.0
                },
                overtemp: stub.cause == FailureCause::Overtemperature,
            };
            // The repair delay is sampled up front: some system-level,
            // non-sudden failures keep limping (and reporting degraded
            // telemetry) until the user finally seeks repair, which is
            // what makes θ-labelling genuinely ambiguous.
            let delay = crate::tickets::sample_repair_delay(config.mean_repair_delay, &mut rng);
            let zombie_until = if level == FailureLevel::System
                && plan.precursor_scale >= 1.0
                && rng.random_range(0.0..1.0) < 0.25
            {
                (stub.failure_day + delay).min(config.horizon_days - 1)
            } else {
                stub.failure_day
            };
            delays.push(delay);
            jobs.push(TelemetryJob {
                serial: stub.serial,
                model_ix: stub.model_ix,
                age0: stub.age0,
                fw_seq: stub.fw_seq,
                plan: Some(plan),
                noisy_smart: false,
                noisy_os: false,
                last_day: zombie_until,
            });
        }
        for stub in &healthy_pool {
            let noisy_smart = rng.random_range(0.0..1.0) < config.noisy_smart_fraction;
            let noisy_os = rng.random_range(0.0..1.0) < config.noisy_os_fraction;
            jobs.push(TelemetryJob {
                serial: stub.serial,
                model_ix: stub.model_ix,
                age0: stub.age0,
                fw_seq: stub.fw_seq,
                plan: None,
                noisy_smart,
                noisy_os,
                last_day: config.horizon_days - 1,
            });
        }

        // Telemetry generation: per-drive RNGs make the jobs independent,
        // and the shared layer returns results in job order — the fleet is
        // bit-identical at any worker count.
        let generated = ordered_map(&jobs, Workers::from_config(config.n_threads), |_, job| {
            let mut job_rng = StdRng::seed_from_u64(telemetry_seed(config.seed, job.serial));
            generate_history(config, job, &mut job_rng)
        });

        // Serial in-order assembly (drive list, tickets, failure records,
        // fault-count merge).
        let mut drives = Vec::with_capacity(jobs.len());
        let mut tickets = Vec::with_capacity(failure_stubs.len());
        let mut failures = Vec::with_capacity(failure_stubs.len());
        let mut injected_faults = FaultCounts::default();
        let mut generated = generated.into_iter();
        for (stub, delay) in failure_stubs.iter().zip(delays) {
            // mfpa-lint: allow(d8, "ordered_map yields exactly one result per submitted job")
            let telemetry = generated.next().expect("one result per job");
            injected_faults.merge(&telemetry.fault_counts);
            failures.push(FailureRecord {
                serial: stub.serial,
                model: DriveModel::ALL[stub.model_ix as usize],
                firmware: telemetry.firmware.clone(),
                failure_day: DayStamp::new(stub.failure_day),
                age_at_failure_days: stub.age0 as i64 + stub.failure_day,
                poh_at_failure: telemetry.poh,
                cause: stub.cause,
            });
            tickets.push(TroubleTicket::new(
                stub.serial,
                DayStamp::new(stub.failure_day + delay),
                stub.cause,
            ));
            drives.push(SimulatedDrive {
                history: telemetry.history,
                raw_records: telemetry.raw_records,
                firmware: telemetry.firmware,
                truth: Some(FailureTruth {
                    failure_day: DayStamp::new(stub.failure_day),
                    cause: stub.cause,
                }),
            });
        }
        for telemetry in generated {
            injected_faults.merge(&telemetry.fault_counts);
            drives.push(SimulatedDrive {
                history: telemetry.history,
                raw_records: telemetry.raw_records,
                firmware: telemetry.firmware,
                truth: None,
            });
        }

        let firmware_stats = fw_pop
            .into_iter()
            .map(|((vendor_ix, seq), (population, failures))| FirmwareStats {
                firmware: FirmwareVersion::new(
                    // mfpa-lint: allow(d8, "vendor_ix was produced by Vendor::index on this table")
                    Vendor::from_index(vendor_ix).expect("valid vendor index"),
                    seq,
                ),
                population,
                failures,
            })
            .collect();

        let mut age_exposure_days = Vec::with_capacity(table_len);
        let mut acc = 0.0;
        for d in exposure_diff.iter().take(table_len) {
            acc += d;
            age_exposure_days.push(acc);
        }

        SimulatedFleet {
            config: config.clone(),
            stats,
            firmware_stats,
            drives,
            tickets,
            failures,
            age_exposure_days,
            injected_faults,
        }
    }

    /// The configuration the fleet was generated with.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Per-vendor population statistics (Table VI).
    pub fn stats(&self) -> &[VendorStats] {
        &self.stats
    }

    /// Per-firmware population/failure statistics (Fig 3).
    pub fn firmware_stats(&self) -> &[FirmwareStats] {
        &self.firmware_stats
    }

    /// Drives with telemetry (all failed + sampled healthy).
    pub fn drives(&self) -> &[SimulatedDrive] {
        &self.drives
    }

    /// The RaSRF trouble-ticket stream.
    pub fn tickets(&self) -> &[TroubleTicket] {
        &self.tickets
    }

    /// Every failure in the population (Fig 2 / Fig 3 inputs).
    pub fn failures(&self) -> &[FailureRecord] {
        &self.failures
    }

    /// Total instantiated population.
    pub fn population(&self) -> u64 {
        self.stats.iter().map(|s| s.population).sum()
    }

    /// Drive-days of exposure per integer drive age (index = age in
    /// days). Dividing per-age failure counts by this yields the
    /// empirical hazard — the bathtub of Fig 2.
    pub fn age_exposure_days(&self) -> &[f64] {
        &self.age_exposure_days
    }

    /// Aggregate fault-injection counts over every telemetry drive
    /// (all zero when `config.faults` is disabled).
    pub fn injected_faults(&self) -> &FaultCounts {
        &self.injected_faults
    }
}

/// One drive's generated telemetry: the collector-view history, the raw
/// emission stream, final power-on hours, firmware, and injected-fault
/// accounting.
struct GeneratedTelemetry {
    history: DriveHistory,
    raw_records: Vec<DailyRecord>,
    poh: f64,
    firmware: FirmwareVersion,
    fault_counts: FaultCounts,
}

/// Derives the seed of one drive's telemetry RNG from the fleet seed and
/// the drive's serial (SplitMix64-style finalizer). The constants differ
/// from the fault injector's [`crate::faults`] derivation so the two
/// per-drive streams never correlate.
fn telemetry_seed(fleet_seed: u64, serial: SerialNumber) -> u64 {
    let mut z = fleet_seed.wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ serial.id().wrapping_mul(0x2545_F491_4F6C_DD1D)
        ^ ((serial.vendor().index() as u64).wrapping_add(1) << 48);
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

/// Generates one drive's telemetry history from its planned job.
/// `job.last_day` is the final day the machine may report (the failure
/// day, or later for zombie reporters, or the horizon for healthy
/// drives).
///
/// `rng` is the drive's own telemetry generator (seeded by
/// [`telemetry_seed`]); fault injection (when enabled) corrupts the
/// emitted stream with yet another generator derived from
/// `(config.seed, serial)` — neither draws from any shared state, so the
/// result depends only on the job and the fleet seed.
fn generate_history(
    config: &FleetConfig,
    job: &TelemetryJob,
    rng: &mut StdRng,
) -> GeneratedTelemetry {
    let TelemetryJob {
        serial,
        model_ix,
        age0,
        fw_seq,
        plan,
        noisy_smart,
        noisy_os,
        last_day,
    } = *job;
    let model = DriveModel::ALL[model_ix as usize];
    let firmware = FirmwareVersion::new(serial.vendor(), fw_seq);
    let profile = UsageProfile::sample(rng);
    let mut days: Vec<i64> = profile
        .observed_days(config.horizon_days, rng)
        .into_iter()
        .filter(|&d| d <= last_day)
        .collect();
    // A drive that dies outright reports on its dying day — that is how
    // the user noticed (Table I symptoms). Zombie reporters instead trail
    // off wherever their usage pattern ends.
    if let Some(p) = plan {
        if last_day == p.day && days.last() != Some(&p.day) {
            days.push(p.day);
        }
    }
    if days.is_empty() {
        days.push(last_day.max(0));
    }

    let mut trajectory = SmartTrajectory::new(
        &profile,
        model.capacity().gigabytes(),
        age0,
        noisy_smart,
        plan,
        rng,
    );
    let mut records = Vec::with_capacity(days.len());
    for &day in &days {
        let drift = drift_multiplier(day, config.drift_per_month);
        let smart = trajectory.record_for(day, drift, rng);
        let ctx = EventContext {
            days_to_failure: plan.map(|p| (p.day - day) as f64),
            level: plan.map(|p| p.level),
            precursor: plan.map_or(1.0, |p| p.precursor_scale),
            noisy_os,
            drift,
        };
        records.push(DailyRecord {
            day: DayStamp::new(day),
            smart,
            firmware: firmware.clone(),
            w_counts: daily_w_counts(&ctx, rng),
            b_counts: daily_b_counts(&ctx, rng),
        });
    }
    let poh = trajectory.power_on_hours();
    let (raw_records, fault_counts) = inject(&config.faults, config.seed, serial, &records);
    // The collector's history is built from the *corrupted* stream —
    // construction sorts by day and keeps the last record of a
    // duplicated day, which is exactly what a naive backend does. When
    // injection is disabled `raw_records == records` and this is the
    // pre-fault-layer history, bit for bit.
    drop(records);
    let history = DriveHistory::new(serial, model, raw_records.clone());
    GeneratedTelemetry {
        history,
        raw_records,
        poh,
        firmware,
        fault_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_fleet() -> &'static SimulatedFleet {
        static FLEET: std::sync::OnceLock<SimulatedFleet> = std::sync::OnceLock::new();
        FLEET.get_or_init(|| SimulatedFleet::generate(&FleetConfig::tiny(7)))
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SimulatedFleet::generate(&FleetConfig::tiny(5));
        let b = SimulatedFleet::generate(&FleetConfig::tiny(5));
        assert_eq!(a.drives().len(), b.drives().len());
        assert_eq!(a.failures().len(), b.failures().len());
        assert_eq!(a.drives()[0].history(), b.drives()[0].history());
        let c = SimulatedFleet::generate(&FleetConfig::tiny(6));
        assert!(
            !(a.failures().len() == c.failures().len()
                && a.drives()[0].history() == c.drives()[0].history())
        );
    }

    #[test]
    fn bit_identical_at_any_thread_count() {
        let reference = SimulatedFleet::generate(&FleetConfig::tiny(7).with_threads(1));
        for n in [3, 7] {
            let fleet = SimulatedFleet::generate(&FleetConfig::tiny(7).with_threads(n));
            assert_eq!(fleet.drives(), reference.drives(), "n_threads = {n}");
            assert_eq!(fleet.failures(), reference.failures());
            assert_eq!(fleet.tickets(), reference.tickets());
            assert_eq!(fleet.stats(), reference.stats());
        }
    }

    #[test]
    fn faults_do_not_perturb_the_main_stream() {
        use crate::config::FaultConfig;
        let base = FleetConfig::tiny(9);
        let clean = SimulatedFleet::generate(&base);
        let faulty = SimulatedFleet::generate(&base.clone().with_faults(FaultConfig::uniform(0.1)));
        // Injection draws from per-drive generators only, so the failure
        // lottery, cohort selection and usage patterns are untouched.
        assert_eq!(clean.failures().len(), faulty.failures().len());
        let serials = |f: &SimulatedFleet| -> Vec<SerialNumber> {
            f.drives().iter().map(|d| d.serial()).collect()
        };
        assert_eq!(serials(&clean), serials(&faulty));
        assert!(faulty.injected_faults().total() > 0);
        assert_eq!(clean.injected_faults().total(), 0);
        // Without faults the raw emission stream IS the history.
        for d in clean.drives().iter().take(50) {
            assert_eq!(d.raw_records(), d.history().records());
        }
        // With faults at least some drive's emission differs from its
        // collapsed history (duplicates / reordering / skew).
        assert!(faulty
            .drives()
            .iter()
            .any(|d| d.raw_records() != d.history().records()));
    }

    #[test]
    fn population_matches_fraction() {
        let fleet = tiny_fleet();
        for s in fleet.stats() {
            let expect = (s.vendor.paper_population() as f64 * fleet.config().population_fraction)
                .round() as u64;
            assert_eq!(s.population, expect.max(1));
        }
    }

    #[test]
    fn vendor_replacement_rate_ordering_preserved() {
        // Vendor I must fail the most, III the least (Table VI ratios).
        let fleet = SimulatedFleet::generate(&FleetConfig::tiny(1));
        let rr: Vec<f64> = fleet.stats().iter().map(|s| s.replacement_rate()).collect();
        assert!(rr[0] > rr[1], "I={} II={}", rr[0], rr[1]);
        assert!(rr[0] > rr[2], "I={} III={}", rr[0], rr[2]);
        assert!(rr[0] > rr[3], "I={} IV={}", rr[0], rr[3]);
    }

    #[test]
    fn all_failures_have_tickets_and_telemetry() {
        let fleet = tiny_fleet();
        assert_eq!(fleet.tickets().len(), fleet.failures().len());
        let telemetry_failed = fleet
            .drives()
            .iter()
            .filter(|d| d.truth().is_some())
            .count();
        assert_eq!(telemetry_failed, fleet.failures().len());
        assert!(
            !fleet.failures().is_empty(),
            "tiny fleet should fail some drives"
        );
    }

    #[test]
    fn ticket_imt_at_or_after_failure() {
        let fleet = tiny_fleet();
        for (ticket, failure) in fleet.tickets().iter().zip(fleet.failures()) {
            assert_eq!(ticket.serial(), failure.serial);
            assert!(ticket.imt() >= failure.failure_day);
        }
    }

    #[test]
    fn failed_drive_history_ends_at_or_shortly_after_failure() {
        let fleet = tiny_fleet();
        let mut at_failure = 0usize;
        for d in fleet.drives().iter().filter(|d| d.truth().is_some()) {
            let truth = d.truth().unwrap();
            let last = d.history().last_day().unwrap();
            // Zombie reporters may trail up to the repair-delay cap; no
            // record can postdate the ticket window.
            assert!(
                last <= truth.failure_day + 31,
                "last {last} vs {}",
                truth.failure_day
            );
            if last == truth.failure_day {
                at_failure += 1;
            }
        }
        // Most failures still die outright on their failure day.
        let failed = fleet.failures().len();
        assert!(at_failure * 10 >= failed * 6, "{at_failure}/{failed}");
    }

    #[test]
    fn healthy_ratio_roughly_honoured() {
        let fleet = tiny_fleet();
        let failed = fleet.failures().len() as f64;
        let healthy = (fleet.drives().len() as f64) - failed;
        let ratio = healthy / failed;
        assert!(
            (ratio - fleet.config().healthy_per_failure).abs() < 1.0,
            "ratio = {ratio}"
        );
    }

    #[test]
    fn firmware_stats_cover_population() {
        let fleet = tiny_fleet();
        let pop: u64 = fleet.firmware_stats().iter().map(|f| f.population).sum();
        assert_eq!(pop, fleet.population());
        let fails: u64 = fleet.firmware_stats().iter().map(|f| f.failures).sum();
        assert_eq!(fails, fleet.failures().len() as u64);
    }

    #[test]
    fn earlier_firmware_fails_more() {
        // Aggregate over a somewhat larger fleet for stability.
        let cfg = FleetConfig::tiny(3).with_population_fraction(0.004);
        let fleet = SimulatedFleet::generate(&cfg);
        // Compare vendor I's earliest firmware vs its latest.
        let get = |seq: u32| {
            fleet
                .firmware_stats()
                .iter()
                .find(|f| f.firmware.vendor() == Vendor::I && f.firmware.seq() == seq)
                .map(|f| f.failure_rate())
        };
        if let (Some(oldest), Some(newest)) = (get(1), get(5)) {
            assert!(oldest > newest, "oldest {oldest} vs newest {newest}");
        }
    }

    #[test]
    fn failure_days_within_horizon() {
        let fleet = tiny_fleet();
        let h = fleet.config().horizon_days;
        for f in fleet.failures() {
            assert!((0..h).contains(&f.failure_day.day()));
            assert!(f.age_at_failure_days >= f.failure_day.day());
            assert!(f.poh_at_failure > 0.0);
        }
    }

    #[test]
    fn histories_are_discontinuous() {
        let fleet = tiny_fleet();
        let with_gaps = fleet
            .drives()
            .iter()
            .filter(|d| d.history().gaps().iter().any(|&g| g > 1))
            .count();
        // The vast majority of consumer machines skip days.
        assert!(with_gaps * 10 > fleet.drives().len() * 8);
    }
}
