//! Deterministic telemetry fault injection.
//!
//! Consumer telemetry reaches the fleet backend through a client agent,
//! a flaky uplink and a best-effort collector, so the raw stream is not
//! the clean per-day sequence the drive produced. This module corrupts a
//! drive's emitted records with the corruption classes observed in such
//! pipelines — SMART sentinel pages, stuck-at attributes, counter
//! rollovers, duplicated / reordered deliveries, missing attributes and
//! clock-skewed day stamps — at independently configurable rates
//! ([`FaultConfig`]).
//!
//! Determinism contract: each drive gets its own generator derived from
//! `(fleet seed, serial)`, so injection never consumes words from the
//! fleet's main RNG stream. With every rate at zero [`inject`] is the
//! identity and allocates no generator at all, which keeps a faultless
//! fleet bit-identical to one built before this layer existed.

use mfpa_telemetry::{DailyRecord, DayStamp, SerialNumber, SmartAttr};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::config::FaultConfig;

/// Sentinel value for an all-ones 32-bit SMART read (`0xFFFF_FFFF`).
pub const SENTINEL_U32: f64 = u32::MAX as f64;

/// Sentinel value for an all-ones 64-bit SMART read
/// (`0xFFFF_FFFF_FFFF_FFFF`).
pub const SENTINEL_U64: f64 = u64::MAX as f64;

/// Maximum absolute day-stamp skew injected by the clock-skew fault.
pub const MAX_CLOCK_SKEW_DAYS: i64 = 5;

/// How many injected faults of each class a stream carries.
///
/// Returned per drive by [`inject`] and aggregated per fleet; the
/// robustness experiment prints the totals next to the sanitizer's
/// quarantine counters so injected and detected corruption can be
/// compared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Records replaced by a sentinel SMART page.
    pub sentinel_resets: u64,
    /// Drives given a stuck-at attribute.
    pub stuck_attributes: u64,
    /// Drives whose cumulative counters rolled over.
    pub counter_rollovers: u64,
    /// Records emitted twice.
    pub duplicated_records: u64,
    /// Adjacent emission swaps.
    pub out_of_order_swaps: u64,
    /// Individual attribute values blanked to NaN.
    pub missing_values: u64,
    /// Records with a skewed day stamp.
    pub clock_skews: u64,
}

impl FaultCounts {
    /// Total injected fault events across all classes.
    pub fn total(&self) -> u64 {
        self.sentinel_resets
            + self.stuck_attributes
            + self.counter_rollovers
            + self.duplicated_records
            + self.out_of_order_swaps
            + self.missing_values
            + self.clock_skews
    }

    /// Adds another drive's counts into this accumulator.
    pub fn merge(&mut self, other: &FaultCounts) {
        self.sentinel_resets += other.sentinel_resets;
        self.stuck_attributes += other.stuck_attributes;
        self.counter_rollovers += other.counter_rollovers;
        self.duplicated_records += other.duplicated_records;
        self.out_of_order_swaps += other.out_of_order_swaps;
        self.missing_values += other.missing_values;
        self.clock_skews += other.clock_skews;
    }
}

/// Seeds the per-drive injector generator from the fleet seed and the
/// drive's serial, via one SplitMix64-style mixing round so that nearby
/// serials do not produce correlated streams.
fn drive_seed(fleet_seed: u64, serial: SerialNumber) -> u64 {
    let mut z = fleet_seed
        ^ serial.id().wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((serial.vendor().index() as u64).wrapping_add(1) << 56);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Corrupts one drive's clean, day-ordered record sequence into the raw
/// emission stream the collector would actually receive.
///
/// The output may contain duplicated days, out-of-order records, skewed
/// day stamps, NaN attributes and sentinel/stuck/rolled-over SMART
/// values, depending on the configured rates. With all rates zero the
/// input is returned unchanged (and no RNG is created).
pub fn inject(
    cfg: &FaultConfig,
    fleet_seed: u64,
    serial: SerialNumber,
    clean: &[DailyRecord],
) -> (Vec<DailyRecord>, FaultCounts) {
    let mut counts = FaultCounts::default();
    if !cfg.is_enabled() || clean.is_empty() {
        return (clean.to_vec(), counts);
    }
    let mut rng = StdRng::seed_from_u64(drive_seed(fleet_seed, serial));
    let mut records = clean.to_vec();

    // Per-drive faults first: they shape the whole trajectory, and the
    // per-record faults below then corrupt the already-degraded stream.
    if rng.random_bool(cfg.stuck_attribute_rate) {
        let attr = *SmartAttr::ALL
            .as_slice()
            .choose(&mut rng)
            // mfpa-lint: allow(d8, "SmartAttr::ALL is a non-empty const table")
            .expect("non-empty");
        let start = rng.random_range(0..records.len());
        let frozen = records[start].smart.get(attr);
        for r in &mut records[start..] {
            r.smart.set(attr, frozen);
        }
        counts.stuck_attributes += 1;
    }
    if records.len() > 1 && rng.random_bool(cfg.counter_rollover_rate) {
        let at = rng.random_range(1..records.len());
        // The counter wraps: everything from `at` on reads relative to
        // the value it had reached, i.e. the counter restarts near zero
        // and keeps counting.
        for attr in SmartAttr::ALL {
            if !attr.is_cumulative() {
                continue;
            }
            let base = records[at].smart.get(attr);
            if !base.is_finite() {
                continue;
            }
            for r in &mut records[at..] {
                let v = r.smart.get(attr);
                if v.is_finite() {
                    r.smart.set(attr, (v - base).max(0.0));
                }
            }
        }
        counts.counter_rollovers += 1;
    }

    // Per-record value faults, in emission order.
    for r in &mut records {
        if rng.random_bool(cfg.sentinel_reset_rate) {
            let sentinel = match rng.random_range(0..3u32) {
                0 => 0.0,
                1 => SENTINEL_U32,
                _ => SENTINEL_U64,
            };
            for attr in SmartAttr::ALL {
                r.smart.set(attr, sentinel);
            }
            counts.sentinel_resets += 1;
        }
        if rng.random_bool(cfg.missing_attribute_rate) {
            for attr in SmartAttr::ALL {
                if rng.random_bool(0.4) {
                    r.smart.set(attr, f64::NAN);
                    counts.missing_values += 1;
                }
            }
        }
        if rng.random_bool(cfg.clock_skew_rate) {
            let mut skew = rng.random_range(-MAX_CLOCK_SKEW_DAYS..=MAX_CLOCK_SKEW_DAYS);
            if skew == 0 {
                skew = 1;
            }
            r.day = DayStamp::new(r.day.day() + skew);
            counts.clock_skews += 1;
        }
    }

    // Delivery faults: duplication then transport reordering.
    let mut emitted = Vec::with_capacity(records.len() + 4);
    for r in records {
        let dup = rng.random_bool(cfg.duplicate_record_rate);
        emitted.push(r.clone());
        if dup {
            emitted.push(r);
            counts.duplicated_records += 1;
        }
    }
    for i in 1..emitted.len() {
        if rng.random_bool(cfg.out_of_order_rate) {
            emitted.swap(i - 1, i);
            counts.out_of_order_swaps += 1;
        }
    }

    (emitted, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_telemetry::{DriveModel, FirmwareVersion, SmartValues, Vendor};

    fn clean_stream(n: i64) -> Vec<DailyRecord> {
        (0..n)
            .map(|d| {
                let mut smart = SmartValues::default();
                smart.set(SmartAttr::PowerOnHours, 24.0 * d as f64);
                smart.set(SmartAttr::DataUnitsWritten, 500.0 * d as f64);
                smart.set(SmartAttr::Capacity, 512.0);
                DailyRecord {
                    day: DayStamp::new(d),
                    smart,
                    firmware: FirmwareVersion::new(Vendor::I, 1),
                    w_counts: [0; 9],
                    b_counts: [0; 23],
                }
            })
            .collect()
    }

    fn serial() -> SerialNumber {
        SerialNumber::new(Vendor::I, 7)
    }

    #[test]
    fn disabled_injection_is_identity() {
        let clean = clean_stream(30);
        let (out, counts) = inject(&FaultConfig::none(), 42, serial(), &clean);
        assert_eq!(out, clean);
        assert_eq!(counts, FaultCounts::default());
    }

    /// NaN-proof canonical form: derived `PartialEq` on records is
    /// useless once NaN attributes are injected, so compare bit patterns.
    fn bits(records: &[DailyRecord]) -> Vec<(i64, Vec<u64>)> {
        records
            .iter()
            .map(|r| {
                (
                    r.day.day(),
                    r.smart.as_slice().iter().map(|v| v.to_bits()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn injection_is_deterministic_per_seed_and_serial() {
        let clean = clean_stream(60);
        let cfg = FaultConfig::uniform(0.2);
        let (a, ca) = inject(&cfg, 42, serial(), &clean);
        let (b, cb) = inject(&cfg, 42, serial(), &clean);
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(ca, cb);
        let (c, _) = inject(&cfg, 43, serial(), &clean);
        let (d, _) = inject(&cfg, 42, SerialNumber::new(Vendor::I, 8), &clean);
        assert_ne!(
            bits(&a),
            bits(&c),
            "different fleet seed must change the corruption"
        );
        assert_ne!(
            bits(&a),
            bits(&d),
            "different serial must change the corruption"
        );
    }

    #[test]
    fn high_rates_produce_every_fault_class() {
        let clean = clean_stream(120);
        let cfg = FaultConfig::uniform(0.5);
        let (out, counts) = inject(&cfg, 7, serial(), &clean);
        assert!(counts.sentinel_resets > 0);
        assert!(counts.duplicated_records > 0);
        assert!(counts.out_of_order_swaps > 0);
        assert!(counts.missing_values > 0);
        assert!(counts.clock_skews > 0);
        assert_eq!(
            out.len(),
            clean.len() + counts.duplicated_records as usize,
            "duplication is the only length-changing fault"
        );
        assert!(out
            .iter()
            .any(|r| r.smart.as_slice().iter().any(|v| v.is_nan())));
    }

    #[test]
    fn rollover_drops_cumulative_counters() {
        let clean = clean_stream(90);
        let cfg = FaultConfig {
            counter_rollover_rate: 1.0,
            ..FaultConfig::none()
        };
        let (out, counts) = inject(&cfg, 3, serial(), &clean);
        assert_eq!(counts.counter_rollovers, 1);
        let poh: Vec<f64> = out
            .iter()
            .map(|r| r.smart.get(SmartAttr::PowerOnHours))
            .collect();
        assert!(
            poh.windows(2).any(|w| w[1] < w[0]),
            "rollover must break monotonicity: {poh:?}"
        );
        // Gauges are untouched by rollovers.
        assert!(out
            .iter()
            .all(|r| r.smart.get(SmartAttr::Capacity) == 512.0));
    }

    #[test]
    fn clock_skew_is_bounded() {
        let clean = clean_stream(50);
        let cfg = FaultConfig {
            clock_skew_rate: 1.0,
            ..FaultConfig::none()
        };
        let (out, counts) = inject(&cfg, 11, serial(), &clean);
        assert_eq!(counts.clock_skews, 50);
        for (raw, orig) in out.iter().zip(&clean) {
            let skew = (raw.day.day() - orig.day.day()).abs();
            assert!((1..=MAX_CLOCK_SKEW_DAYS).contains(&skew), "skew {skew}");
        }
    }

    #[test]
    fn drive_model_is_untouched() {
        // The injector corrupts values and delivery, never identity: the
        // same serial/model pair must reconstruct downstream.
        let clean = clean_stream(10);
        let (out, _) = inject(&FaultConfig::uniform(0.9), 1, serial(), &clean);
        let _ = DriveModel::ALL[0];
        assert!(out.iter().all(|r| r.firmware == clean[0].firmware));
    }
}
