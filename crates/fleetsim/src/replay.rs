//! Arrival-ordered traffic replay with transport-fault injection.
//!
//! The per-drive fault layer ([`crate::faults`]) corrupts what each
//! drive *emits*; this module models the collector side: it interleaves
//! every drive's raw emission stream into one arrival-ordered event
//! stream (the order a fleet backend would actually receive records
//! in), chops it into fixed-size batches, and optionally injects the
//! transport-level fault classes a serving path must additionally
//! survive:
//!
//! * **batch truncation** — an uplink flush dies mid-batch and the tail
//!   of the batch never arrives;
//! * **shard-targeted burst loss** — a collector partition goes dark
//!   for a few batches, dropping exactly the records whose serials hash
//!   to one shard ([`mfpa_telemetry::SerialNumber::shard`], the same
//!   routing the fleet monitor uses);
//! * **checkpoint bit-flips** ([`flip_one_byte`]) — storage corruption
//!   of a monitor checkpoint, used to prove the recovery path rejects
//!   damaged state instead of loading it.
//!
//! Everything is deterministic in `(seed, config)`: the interleaving
//! key and the fault generator are seeded hashes, never wall-clock or
//! global RNG state.

use mfpa_telemetry::{DailyRecord, SerialNumber};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::fleet::SimulatedFleet;

/// One record as the collector receives it: the drive it came from plus
/// the (possibly corrupted) daily record.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalEvent {
    /// The emitting drive.
    pub serial: SerialNumber,
    /// The delivered record.
    pub record: DailyRecord,
}

/// Transport-fault rates for the batched replay ([`into_batches`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportFaultConfig {
    /// Probability a batch is truncated (its tail dropped at a random
    /// cut point).
    pub batch_truncation_rate: f64,
    /// Probability, per batch, that a shard-targeted loss burst starts:
    /// for the next [`TransportFaultConfig::burst_len`] batches every
    /// record routed to one (randomly chosen) shard is dropped.
    pub burst_loss_rate: f64,
    /// Length of a loss burst, in batches.
    pub burst_len: u64,
    /// Shard count used to target bursts; align it with the consuming
    /// monitor's shard count so a burst starves exactly one shard.
    pub n_shards: usize,
}

impl TransportFaultConfig {
    /// All rates zero: transport is lossless.
    pub fn none() -> Self {
        TransportFaultConfig {
            batch_truncation_rate: 0.0,
            burst_loss_rate: 0.0,
            burst_len: 3,
            n_shards: 8,
        }
    }

    /// Whether any transport fault class is active.
    pub fn is_enabled(&self) -> bool {
        self.batch_truncation_rate > 0.0 || self.burst_loss_rate > 0.0
    }
}

impl Default for TransportFaultConfig {
    fn default() -> Self {
        TransportFaultConfig::none()
    }
}

/// Accounting for one batched replay: every record the transport layer
/// dropped, by class. `delivered + truncated_records + burst_dropped`
/// equals the arrival stream's length.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportFaultCounts {
    /// Batches produced (after faults).
    pub batches: u64,
    /// Batches that lost their tail.
    pub truncated_batches: u64,
    /// Records dropped by batch truncation.
    pub truncated_records: u64,
    /// Loss bursts started.
    pub bursts: u64,
    /// Records dropped by shard-targeted bursts.
    pub burst_dropped: u64,
    /// Records surviving into the delivered batches.
    pub delivered: u64,
}

/// SplitMix64-style finalizer for the interleaving tie-break key.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Interleaves every drive's raw emission stream into one
/// arrival-ordered event stream.
///
/// Each record's arrival stamp is the *running maximum* day its drive
/// has emitted so far — uplinks deliver a drive's queue in emission
/// order, so a clock-skewed or swapped record travels with its
/// neighbours rather than teleporting across the stream. Events are
/// stably sorted by `(stamp, hash(serial, stamp))`: per-drive emission
/// order is preserved exactly (stamps are non-decreasing within a
/// drive), while drives reporting on the same day arrive interleaved
/// in a deterministic pseudo-random order rather than serial order.
pub fn arrival_stream(fleet: &SimulatedFleet) -> Vec<ArrivalEvent> {
    let mut keyed: Vec<(i64, u64, ArrivalEvent)> = Vec::new();
    for drive in fleet.drives() {
        let serial = drive.serial();
        let mut stamp = i64::MIN;
        for record in drive.raw_records() {
            stamp = stamp.max(record.day.day());
            let tie = mix64(
                serial
                    .id()
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(((serial.vendor().index() as u64) + 1) << 59)
                    ^ (stamp as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            );
            keyed.push((
                stamp,
                tie,
                ArrivalEvent {
                    serial,
                    record: record.clone(),
                },
            ));
        }
    }
    // Stable sort: same-drive same-stamp records keep emission order.
    keyed.sort_by_key(|(stamp, tie, _)| (*stamp, *tie));
    keyed.into_iter().map(|(_, _, ev)| ev).collect()
}

/// Seeds the transport-fault generator; the constant keeps it disjoint
/// from the fleet, telemetry and per-drive fault streams.
fn transport_seed(seed: u64) -> u64 {
    mix64(seed ^ 0x7472_616E_7370_6F72) // "transpor"
}

/// Chops an arrival stream into fixed-size batches, injecting the
/// configured transport faults. Deterministic in `(events, batch_size,
/// faults, seed)`.
pub fn into_batches(
    events: Vec<ArrivalEvent>,
    batch_size: usize,
    faults: &TransportFaultConfig,
    seed: u64,
) -> (Vec<Vec<ArrivalEvent>>, TransportFaultCounts) {
    let batch_size = batch_size.max(1);
    let mut counts = TransportFaultCounts::default();
    let mut batches: Vec<Vec<ArrivalEvent>> = Vec::with_capacity(events.len() / batch_size + 1);
    let mut rng = StdRng::seed_from_u64(transport_seed(seed));
    let mut burst_remaining = 0u64;
    let mut burst_shard = 0usize;
    let mut batch = Vec::with_capacity(batch_size);
    let mut flush =
        |batch: &mut Vec<ArrivalEvent>, rng: &mut StdRng, counts: &mut TransportFaultCounts| {
            if batch.is_empty() {
                return;
            }
            if faults.batch_truncation_rate > 0.0 && rng.random_bool(faults.batch_truncation_rate) {
                let keep = rng.random_range(0..batch.len());
                counts.truncated_batches += 1;
                counts.truncated_records += (batch.len() - keep) as u64;
                batch.truncate(keep);
            }
            counts.delivered += batch.len() as u64;
            counts.batches += 1;
            batches.push(std::mem::take(batch));
        };
    for ev in events {
        if batch.is_empty() {
            // Burst state advances per batch, decided as the batch opens.
            if burst_remaining > 0 {
                burst_remaining -= 1;
            } else if faults.burst_loss_rate > 0.0 && rng.random_bool(faults.burst_loss_rate) {
                burst_remaining = faults.burst_len.max(1);
                burst_shard = rng.random_range(0..faults.n_shards.max(1));
                counts.bursts += 1;
            }
        }
        if burst_remaining > 0 && ev.serial.shard(faults.n_shards.max(1)) == burst_shard {
            counts.burst_dropped += 1;
            continue;
        }
        batch.push(ev);
        if batch.len() == batch_size {
            flush(&mut batch, &mut rng, &mut counts);
        }
    }
    flush(&mut batch, &mut rng, &mut counts);
    (batches, counts)
}

/// Flips one bit of `data` at a seed-derived position, simulating
/// storage corruption of a checkpoint file. Returns the flipped byte's
/// offset, or `None` for empty input.
pub fn flip_one_byte(data: &mut [u8], seed: u64) -> Option<usize> {
    if data.is_empty() {
        return None;
    }
    let pos = (mix64(seed ^ 0x666C_6970) % data.len() as u64) as usize;
    // mfpa-lint: allow(d6, "bit index is bounded 0..8 by the modulo on the same line")
    let bit = (mix64(seed ^ 0x6269_7421) % 8) as u8;
    data[pos] ^= 1 << bit;
    Some(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FaultConfig, FleetConfig};
    use std::collections::BTreeMap;

    fn fleet() -> SimulatedFleet {
        SimulatedFleet::generate(
            &FleetConfig::tiny(11)
                .with_population_fraction(0.0005)
                .with_faults(FaultConfig::uniform(0.02)),
        )
    }

    /// Bit-exact event identity. Injected faults put NaNs in SMART
    /// pages, so `PartialEq` (NaN != NaN) cannot prove two streams
    /// equal — compare bit patterns instead.
    fn fingerprint(events: &[ArrivalEvent]) -> Vec<(SerialNumber, i64, [u64; 16])> {
        events
            .iter()
            .map(|ev| {
                let mut bits = [0u64; 16];
                for (b, v) in bits.iter_mut().zip(ev.record.smart.as_slice()) {
                    *b = v.to_bits();
                }
                (ev.serial, ev.record.day.day(), bits)
            })
            .collect()
    }

    #[test]
    fn arrival_stream_preserves_per_drive_emission_order() {
        let fleet = fleet();
        let stream = arrival_stream(&fleet);
        let total: usize = fleet.drives().iter().map(|d| d.raw_records().len()).sum();
        assert_eq!(stream.len(), total);
        // Partition back per drive: each drive's subsequence must be its
        // raw emission stream, bit for bit.
        let mut per_drive: BTreeMap<SerialNumber, Vec<&DailyRecord>> = BTreeMap::new();
        for ev in &stream {
            per_drive.entry(ev.serial).or_default().push(&ev.record);
        }
        for drive in fleet.drives() {
            let got = per_drive.remove(&drive.serial()).unwrap_or_default();
            let want: Vec<&DailyRecord> = drive.raw_records().iter().collect();
            assert_eq!(got.len(), want.len(), "drive {}", drive.serial());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.day, w.day);
                let gb: Vec<u64> = g.smart.as_slice().iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u64> = w.smart.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb);
            }
        }
        // Arrival stamps are globally non-decreasing.
        let mut per_drive_stamp: BTreeMap<SerialNumber, i64> = BTreeMap::new();
        let mut last = i64::MIN;
        for ev in &stream {
            let s = per_drive_stamp.entry(ev.serial).or_insert(i64::MIN);
            *s = (*s).max(ev.record.day.day());
            assert!(*s >= last, "arrival stamps regressed");
            last = *s;
        }
    }

    #[test]
    fn arrival_stream_is_deterministic_and_interleaved() {
        let fleet = fleet();
        let a = arrival_stream(&fleet);
        let b = arrival_stream(&fleet);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // Not clustered per drive: adjacent events usually switch drives.
        let switches = a.windows(2).filter(|w| w[0].serial != w[1].serial).count();
        assert!(
            switches * 2 > a.len(),
            "{switches} switches in {} events",
            a.len()
        );
    }

    #[test]
    fn lossless_batching_partitions_the_stream() {
        let fleet = fleet();
        let stream = arrival_stream(&fleet);
        let n = stream.len();
        let (batches, counts) = into_batches(stream.clone(), 128, &TransportFaultConfig::none(), 5);
        assert_eq!(counts.delivered as usize, n);
        assert_eq!(counts.truncated_records + counts.burst_dropped, 0);
        let rejoined: Vec<ArrivalEvent> = batches.into_iter().flatten().collect();
        assert_eq!(rejoined.len(), n);
        assert_eq!(fingerprint(&rejoined), fingerprint(&stream));
    }

    #[test]
    fn transport_faults_account_for_every_dropped_record() {
        let fleet = fleet();
        let stream = arrival_stream(&fleet);
        let n = stream.len() as u64;
        let cfg = TransportFaultConfig {
            batch_truncation_rate: 0.1,
            burst_loss_rate: 0.05,
            burst_len: 2,
            n_shards: 8,
        };
        let (batches, counts) = into_batches(stream, 128, &cfg, 5);
        assert_eq!(
            counts.delivered + counts.truncated_records + counts.burst_dropped,
            n,
            "{counts:?}"
        );
        assert!(counts.truncated_batches > 0);
        assert!(counts.bursts > 0);
        let delivered: u64 = batches.iter().map(|b| b.len() as u64).sum();
        assert_eq!(delivered, counts.delivered);
        // Deterministic replay.
        let fleet2 = super::super::fleet::SimulatedFleet::generate(fleet.config());
        let (batches2, counts2) = into_batches(arrival_stream(&fleet2), 128, &cfg, 5);
        assert_eq!(counts, counts2);
        assert_eq!(batches.len(), batches2.len());
        for (a, b) in batches.iter().zip(&batches2) {
            assert_eq!(fingerprint(a), fingerprint(b));
        }
    }

    #[test]
    fn bursts_starve_exactly_one_shard() {
        let fleet = fleet();
        let stream = arrival_stream(&fleet);
        let cfg = TransportFaultConfig {
            batch_truncation_rate: 0.0,
            burst_loss_rate: 1.0,
            burst_len: 1,
            n_shards: 4,
        };
        let (batches, counts) = into_batches(stream.clone(), 64, &cfg, 9);
        assert!(counts.burst_dropped > 0);
        assert!(counts.bursts > 1, "{counts:?}");
        // With rate 1.0 and burst_len 1 a fresh burst opens every other
        // batch; those batches are missing one shard's records while
        // batches between bursts see all four shards.
        let starved = batches
            .iter()
            .filter(|batch| {
                let shards: std::collections::BTreeSet<usize> =
                    batch.iter().map(|ev| ev.serial.shard(4)).collect();
                shards.len() < 4
            })
            .count();
        assert!(
            starved * 3 > batches.len(),
            "{starved} starved of {} batches",
            batches.len()
        );
    }

    #[test]
    fn flip_one_byte_flips_exactly_one_bit() {
        let mut data = vec![0u8; 257];
        let orig = data.clone();
        let pos = flip_one_byte(&mut data, 3).expect("non-empty");
        let diff: Vec<usize> = (0..data.len()).filter(|&i| data[i] != orig[i]).collect();
        assert_eq!(diff, vec![pos]);
        assert_eq!((data[pos] ^ orig[pos]).count_ones(), 1);
        assert_eq!(flip_one_byte(&mut [], 3), None);
    }
}
