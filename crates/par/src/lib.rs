//! Deterministic scoped parallelism for the MFPA workspace.
//!
//! Every hot loop in the reproduction — per-drive fleet simulation,
//! per-drive sanitize/preprocess, grid-search candidates, batched
//! scoring, per-tree forest fitting — is embarrassingly parallel over an
//! indexed work list. This crate provides the one shape they all share:
//! a **std-only, scoped, ordered chunked map** plus a **parallel reduce
//! with fixed reduction order**, built so that the result is
//! *bit-identical at any worker count*.
//!
//! The determinism contract (see DESIGN.md §6):
//!
//! * [`ordered_map`] hands each closure invocation the item's global
//!   index and writes its result into the slot of the same index. The
//!   output vector therefore equals the serial `items.iter().map(..)`
//!   regardless of how items were chunked across workers.
//! * [`map_reduce`] runs the (expensive) map in parallel and then folds
//!   the mapped values **serially, in input order**. Because the fold
//!   itself is the plain left fold, the result is exactly the serial
//!   `items.iter().map(f).fold(init, g)` — including for
//!   non-associative operations such as `f64` addition.
//! * [`Workers`] resolves the worker count once, from an explicit
//!   configuration value, the `MFPA_THREADS` environment variable, or
//!   the machine; `n_threads = 1` degrades to a plain serial loop with
//!   no thread spawned at all.
//!
//! # Example
//!
//! ```
//! use mfpa_par::{map_reduce, ordered_map, Workers};
//!
//! let xs: Vec<u64> = (0..100).collect();
//! let squares = ordered_map(&xs, Workers::new(4), |_, &x| x * x);
//! assert_eq!(squares[10], 100);
//! // Fixed-order reduce: identical to the serial fold at any width.
//! let sum = map_reduce(&xs, Workers::new(7), |_, &x| x as f64, 0.0, |a, b| a + b);
//! assert_eq!(sum, xs.iter().map(|&x| x as f64).sum::<f64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::num::NonZeroUsize;
use std::ops::Range;

/// Environment variable overriding the automatic worker count.
pub const THREADS_ENV: &str = "MFPA_THREADS";

/// A resolved worker count (always ≥ 1).
///
/// Configuration structs across the workspace store a raw `usize` where
/// `0` means "decide for me"; [`Workers::from_config`] performs that
/// resolution in one place: explicit value → `MFPA_THREADS` → machine
/// parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workers(NonZeroUsize);

impl Workers {
    /// An explicit worker count; `0` is clamped to `1`.
    pub fn new(n: usize) -> Self {
        Workers(NonZeroUsize::new(n).unwrap_or(NonZeroUsize::MIN))
    }

    /// Resolves the automatic worker count: `MFPA_THREADS` when set to a
    /// positive integer, otherwise the machine's available parallelism.
    pub fn auto() -> Self {
        if let Some(n) = env_threads() {
            return Workers::new(n);
        }
        // mfpa-lint: allow(d9, "worker count only; every primitive here is thread-count-invariant by the ordered_map contract")
        Workers::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// Resolves a configuration knob where `0` means automatic.
    pub fn from_config(n_threads: usize) -> Self {
        if n_threads == 0 {
            Workers::auto()
        } else {
            Workers::new(n_threads)
        }
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0.get()
    }
}

/// `MFPA_THREADS` as a positive integer, if set and parseable.
fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Splits `0..len` into at most `n_chunks` contiguous, ascending,
/// near-equal ranges covering every index exactly once. Deterministic in
/// its arguments; an empty input yields no ranges.
pub fn chunk_ranges(len: usize, n_chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let n_chunks = n_chunks.clamp(1, len);
    let chunk = len.div_ceil(n_chunks);
    let mut out = Vec::with_capacity(n_chunks);
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// Applies `f(index, item)` to every item and returns the results in
/// input order, using up to `workers` scoped threads.
///
/// The closure receives each item's **global** index — derived from the
/// actual chunk offsets, never recomputed from a nominal chunk size — so
/// index-keyed seeding stays correct for any chunk layout. The output is
/// bit-identical to the serial map for every worker count, because each
/// invocation's result lands in the slot of its own index and the
/// closure is given nothing that depends on the chunking.
pub fn ordered_map<T, R, F>(items: &[T], workers: Workers, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    ordered_collect(items.len(), workers, |i| f(i, &items[i]))
}

/// Index-driven form of [`ordered_map`]: computes `f(0), f(1), ..,
/// f(len - 1)` with up to `workers` scoped threads and returns the
/// results in index order. Useful when the work list is implicit (matrix
/// rows, tree indices) and materialising a slice would only cost an
/// allocation.
pub fn ordered_collect<R, F>(len: usize, workers: Workers, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n_workers = workers.get().min(len);
    if n_workers <= 1 {
        return (0..len).map(f).collect();
    }
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(len, || None);
    let chunk_len = len.div_ceil(n_workers);
    std::thread::scope(|scope| {
        let f = &f;
        // The chunk base is accumulated from the chunks actually handed
        // out, so uneven tail chunks can never shift later indices.
        let mut base = 0usize;
        for chunk in results.chunks_mut(chunk_len) {
            let chunk_base = base;
            base += chunk.len();
            scope.spawn(move || {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(chunk_base + offset));
                }
            });
        }
    });
    results
        .into_iter()
        // mfpa-lint: allow(d8, "each scoped worker writes its own disjoint slot before join")
        .map(|slot| slot.expect("every slot filled by its chunk's worker"))
        .collect()
}

/// In-place variant of [`ordered_map`]: applies `f(index, &mut item)`
/// to every item with up to `workers` scoped threads and returns the
/// per-item results in input order.
///
/// This is the primitive for sharded mutable state (one worker owns a
/// contiguous run of shards for the duration of the call): each item is
/// visited exactly once, by exactly one worker, with its **global**
/// index, so both the mutations and the returned vector are
/// bit-identical to the serial loop at any worker count. The closure is
/// `Fn`, not `FnMut` — any cross-item state would reintroduce
/// chunk-layout dependence.
pub fn ordered_map_mut<T, R, F>(items: &mut [T], workers: Workers, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let len = items.len();
    let n_workers = workers.get().min(len);
    if n_workers <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(len, || None);
    let chunk_len = len.div_ceil(n_workers);
    std::thread::scope(|scope| {
        let f = &f;
        // Item and result chunks are split identically, so the base
        // accumulated from actual chunk lengths stays in lockstep.
        let mut base = 0usize;
        for (item_chunk, slot_chunk) in items
            .chunks_mut(chunk_len)
            .zip(results.chunks_mut(chunk_len))
        {
            let chunk_base = base;
            base += item_chunk.len();
            scope.spawn(move || {
                for (offset, (item, slot)) in
                    item_chunk.iter_mut().zip(slot_chunk.iter_mut()).enumerate()
                {
                    *slot = Some(f(chunk_base + offset, item));
                }
            });
        }
    });
    results
        .into_iter()
        // mfpa-lint: allow(d8, "each scoped worker fills its own disjoint slot before join")
        .map(|slot| slot.expect("every slot filled by its chunk's worker"))
        .collect()
}

/// Parallel map followed by a **serial, in-order** left fold of the
/// mapped values: `fold(.. fold(fold(init, f(0, &items[0])), f(1,
/// &items[1])) ..)`.
///
/// Equals the serial `map → fold` exactly — for any `fold`, associative
/// or not — because only the map runs concurrently; the reduction order
/// is the input order by construction. Use this when the per-item map is
/// the expensive part (simulating a drive, fitting a tree) and the fold
/// is cheap (merging counters, summing losses).
pub fn map_reduce<T, R, A, F, G>(items: &[T], workers: Workers, f: F, init: A, fold: G) -> A
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    ordered_map(items, workers, f).into_iter().fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_matches_serial_at_every_width() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64))
            .collect();
        for n in [1, 2, 3, 7, 16, 300] {
            let par = ordered_map(&items, Workers::new(n), |i, &x| {
                x.wrapping_mul(31).wrapping_add(i as u64)
            });
            assert_eq!(par, serial, "n_threads = {n}");
        }
    }

    #[test]
    fn ordered_map_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(ordered_map(&empty, Workers::new(4), |_, &x| x).is_empty());
        assert_eq!(
            ordered_map(&[9u8], Workers::new(4), |_, &x| x + 1),
            vec![10]
        );
    }

    #[test]
    fn indices_are_global_for_uneven_chunks() {
        // 10 items over 4 workers → chunks of 3,3,3,1; the tail chunk's
        // base must be 9, not 3 * ceil(10/4).
        let items = vec![0u8; 10];
        let ixs = ordered_map(&items, Workers::new(4), |i, _| i);
        assert_eq!(ixs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_map_mut_matches_serial_at_every_width() {
        let reference: Vec<u64> = {
            let mut items: Vec<u64> = (0..257).collect();
            let rs: Vec<u64> = items
                .iter_mut()
                .enumerate()
                .map(|(i, x)| {
                    *x = x.wrapping_mul(7).wrapping_add(i as u64);
                    *x ^ 0x5555
                })
                .collect();
            items.extend(rs);
            items
        };
        for n in [1, 2, 3, 7, 16, 300] {
            let mut items: Vec<u64> = (0..257).collect();
            let rs = ordered_map_mut(&mut items, Workers::new(n), |i, x| {
                *x = x.wrapping_mul(7).wrapping_add(i as u64);
                *x ^ 0x5555
            });
            items.extend(rs);
            assert_eq!(items, reference, "n_threads = {n}");
        }
    }

    #[test]
    fn ordered_map_mut_handles_empty_and_uneven() {
        let mut empty: Vec<u8> = Vec::new();
        assert!(ordered_map_mut(&mut empty, Workers::new(4), |_, x| *x).is_empty());
        // 10 items over 4 workers: tail chunk's global indices must not
        // shift (same invariant as ordered_map).
        let mut items = vec![0usize; 10];
        let ixs = ordered_map_mut(&mut items, Workers::new(4), |i, x| {
            *x = i;
            i
        });
        assert_eq!(ixs, (0..10).collect::<Vec<_>>());
        assert_eq!(items, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn map_reduce_equals_serial_fold_for_floats() {
        // Sums of many magnitudes: any change in addition order shows.
        let items: Vec<f64> = (0..1000)
            .map(|i| (i as f64).exp2().recip() + i as f64 * 1e-3)
            .collect();
        let serial = items.iter().fold(0.0f64, |a, &b| a + b);
        for n in [1, 2, 7, 64] {
            let par = map_reduce(&items, Workers::new(n), |_, &x| x, 0.0f64, |a, b| a + b);
            assert_eq!(par.to_bits(), serial.to_bits(), "n_threads = {n}");
        }
    }

    #[test]
    fn map_reduce_supports_non_associative_folds() {
        let items: Vec<f64> = vec![3.0, 5.0, 7.0, 11.0];
        let serial = items.iter().fold(100.0f64, |a, &b| a / b);
        let par = map_reduce(&items, Workers::new(3), |_, &x| x, 100.0f64, |a, b| a / b);
        assert_eq!(par.to_bits(), serial.to_bits());
    }

    #[test]
    fn chunk_ranges_partition_the_input() {
        for (len, n) in [(0, 4), (1, 4), (10, 3), (10, 4), (100, 7), (5, 100)] {
            let ranges = chunk_ranges(len, n);
            let mut covered = 0;
            for (k, r) in ranges.iter().enumerate() {
                assert_eq!(r.start, covered, "len={len} n={n} chunk {k}");
                assert!(r.end > r.start);
                covered = r.end;
            }
            assert_eq!(covered, len);
            if len > 0 {
                assert!(ranges.len() <= n.max(1));
            }
        }
    }

    #[test]
    fn workers_resolution() {
        assert_eq!(Workers::new(0).get(), 1);
        assert_eq!(Workers::new(5).get(), 5);
        assert_eq!(Workers::from_config(3).get(), 3);
        assert!(Workers::from_config(0).get() >= 1);
        assert!(Workers::auto().get() >= 1);
    }
}
