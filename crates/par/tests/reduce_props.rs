//! Property tests for the determinism contract: the parallel primitives
//! must equal their serial counterparts for arbitrary inputs and worker
//! counts.

use mfpa_par::{map_reduce, ordered_map, Workers};
use proptest::prelude::*;

proptest! {
    #[test]
    fn map_reduce_equals_serial_fold(
        items in prop::collection::vec(-1e12f64..1e12, 0..300),
        n_threads in 1usize..12,
    ) {
        // f64 addition is not associative, so this only holds because
        // the reduction order is fixed to the input order.
        let serial = items
            .iter()
            .map(|&x| x * 0.5 + 1.0)
            .fold(0.0f64, |a, b| a + b);
        let par = map_reduce(
            &items,
            Workers::new(n_threads),
            |_, &x| x * 0.5 + 1.0,
            0.0f64,
            |a, b| a + b,
        );
        prop_assert_eq!(par.to_bits(), serial.to_bits());
    }

    #[test]
    fn ordered_map_equals_serial_map(
        items in prop::collection::vec(any::<u64>(), 0..300),
        n_threads in 1usize..12,
    ) {
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.rotate_left((i % 64) as u32))
            .collect();
        let par = ordered_map(&items, Workers::new(n_threads), |i, &x| {
            x.rotate_left((i % 64) as u32)
        });
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn non_associative_fold_still_matches(
        items in prop::collection::vec(1.0f64..1e6, 1..120),
        n_threads in 1usize..9,
    ) {
        let serial = items.iter().fold(1e9f64, |a, &b| a / b);
        let par = map_reduce(
            &items,
            Workers::new(n_threads),
            |_, &x| x,
            1e9f64,
            |a, b| a / b,
        );
        prop_assert_eq!(par.to_bits(), serial.to_bits());
    }
}
