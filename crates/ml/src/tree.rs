//! CART decision trees.
//!
//! One tree implementation serves both the Random Forest (classification:
//! for binary 0/1 targets, minimising weighted squared error is identical
//! to minimising Gini impurity, since `Var = p(1−p) = Gini/2`) and GBDT
//! (regression on gradients with Newton leaf values `Σg / Σh`).
//!
//! Two split-search strategies share the same tree structure:
//!
//! * **Exact** ([`TreeParams::max_bins`] `== 0`): every candidate
//!   feature is re-sorted at every node and all `n − 1` thresholds are
//!   scanned — `O(F · n log n)` per node. Kept for parity testing and as
//!   the reference semantics.
//! * **Histogram** (`max_bins > 0`, the default): features are
//!   quantized once into a [`BinnedMatrix`]; each node accumulates
//!   per-bin `(Σtarget, count)` histograms in `O(n · F)` and scans at
//!   most `max_bins − 1` boundaries per feature. When a node considers
//!   *all* features (the GBDT configuration), the larger child's
//!   histograms are obtained for free by subtracting the smaller
//!   child's from the parent's.

use mfpa_dataset::Matrix;
use mfpa_par::Workers;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::binning::{BinnedMatrix, DEFAULT_MAX_BINS};
use crate::error::{check_fit_inputs, check_predict_inputs, MlError};
use crate::model::Classifier;

/// How many candidate features each split considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// All features (classic CART).
    All,
    /// `ceil(sqrt(n))` random features (Random-Forest default).
    Sqrt,
    /// `ceil(log2(n))` random features.
    Log2,
    /// An explicit count (clamped to `[1, n]`).
    Count(usize),
}

impl MaxFeatures {
    /// Resolves to a concrete count for `n_features` features.
    pub fn resolve(self, n_features: usize) -> usize {
        let n = n_features.max(1);
        match self {
            MaxFeatures::All => n,
            MaxFeatures::Sqrt => (n as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (n as f64).log2().ceil().max(1.0) as usize,
            MaxFeatures::Count(c) => c.clamp(1, n),
        }
    }
}

/// Tree growth hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a node needs to be split further.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
    /// Number of candidate features per split.
    pub max_features: MaxFeatures,
    /// Bin budget for histogram split search; `0` selects the exact
    /// (re-sorting) path. Values above 256 are clamped — bin codes are
    /// `u8`.
    pub max_bins: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            max_bins: DEFAULT_MAX_BINS,
        }
    }
}

pub(crate) const LEAF: u32 = u32::MAX;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Node {
    /// Split feature, or [`LEAF`].
    pub(crate) feature: u32,
    /// Split threshold: `value <= threshold` goes left.
    pub(crate) threshold: f64,
    pub(crate) left: u32,
    pub(crate) right: u32,
    /// Leaf prediction (mean target / Newton value); also kept on inner
    /// nodes for debugging.
    pub(crate) value: f64,
}

/// A CART decision tree for binary classification or regression.
///
/// # Example
///
/// ```
/// use mfpa_dataset::Matrix;
/// use mfpa_ml::{Classifier, DecisionTree, TreeParams};
///
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![0.2], vec![0.9], vec![1.0], vec![1.1],
/// ]).unwrap();
/// let y = [false, false, false, true, true, true];
/// let mut t = DecisionTree::new(TreeParams::default());
/// t.fit(&x, &y)?;
/// assert_eq!(t.predict(&x)?, y);
/// # Ok::<(), mfpa_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    params: TreeParams,
    seed: u64,
    nodes: Vec<Node>,
    n_features: Option<usize>,
    importances: Vec<f64>,
}

struct BuildCtx<'a> {
    x: &'a Matrix,
    targets: &'a [f64],
    hessians: Option<&'a [f64]>,
    params: TreeParams,
    rng: StdRng,
    feature_pool: Vec<usize>,
}

struct BinnedCtx<'a> {
    binned: &'a BinnedMatrix,
    targets: &'a [f64],
    hessians: Option<&'a [f64]>,
    params: TreeParams,
    rng: StdRng,
    feature_pool: Vec<usize>,
}

/// Per-bin `(Σtarget, count)` histogram of one feature at one node.
///
/// The split gain uses only target sums and counts (hessians enter at
/// the leaf values, not the scan), so two arrays per feature suffice.
#[derive(Debug, Clone)]
struct Hist {
    sum: Vec<f64>,
    cnt: Vec<u32>,
}

impl Hist {
    /// Accumulates the histogram of `feature` over `indices`.
    fn accumulate(ctx: &BinnedCtx<'_>, feature: usize, indices: &[usize]) -> Hist {
        let col = ctx.binned.column(feature);
        let n_bins = ctx.binned.n_bins(feature);
        let mut sum = vec![0.0; n_bins];
        let mut cnt = vec![0u32; n_bins];
        for &i in indices {
            let b = col[i] as usize;
            sum[b] += ctx.targets[i];
            cnt[b] += 1;
        }
        Hist { sum, cnt }
    }

    /// The sibling's histogram: parent minus this child. For 0/1
    /// classification targets the sums are small integers, so the
    /// subtraction is exact and bit-identical to direct accumulation.
    fn sibling_from(&self, parent: &Hist) -> Hist {
        Hist {
            sum: parent
                .sum
                .iter()
                .zip(&self.sum)
                .map(|(p, c)| p - c)
                .collect(),
            cnt: parent
                .cnt
                .iter()
                .zip(&self.cnt)
                .map(|(p, c)| p - c)
                .collect(),
        }
    }
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(params: TreeParams) -> Self {
        DecisionTree {
            params,
            seed: 0,
            nodes: Vec::new(),
            n_features: None,
            importances: Vec::new(),
        }
    }

    /// Sets the RNG seed used for feature subsampling.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Per-feature split-gain importances, normalised to sum to 1
    /// (all zeros if the tree is a single leaf).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Fits the tree as a regressor on `targets`, with optional per-sample
    /// `hessians` for Newton leaf values `Σtarget / Σhessian` (GBDT).
    ///
    /// With [`TreeParams::max_bins`] `> 0` (the default) the features
    /// are quantized internally and the histogram path is used; `0`
    /// selects the exact path. Ensembles that reuse one quantization
    /// across many trees should build a [`BinnedMatrix`] once and call
    /// [`DecisionTree::fit_binned`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] or [`MlError::LabelMismatch`]
    /// for degenerate inputs.
    pub fn fit_regression(
        &mut self,
        x: &Matrix,
        targets: &[f64],
        hessians: Option<&[f64]>,
    ) -> Result<(), MlError> {
        if x.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if targets.len() != x.n_rows() {
            return Err(MlError::LabelMismatch {
                rows: x.n_rows(),
                labels: targets.len(),
            });
        }
        if let Some(h) = hessians {
            if h.len() != x.n_rows() {
                return Err(MlError::LabelMismatch {
                    rows: x.n_rows(),
                    labels: h.len(),
                });
            }
        }
        if self.params.max_bins > 0 {
            let binned = BinnedMatrix::build(x, self.params.max_bins, Workers::new(1));
            let all: Vec<usize> = (0..x.n_rows()).collect();
            return self.fit_binned(&binned, &all, targets, hessians);
        }
        self.nodes.clear();
        self.importances = vec![0.0; x.n_cols()];
        self.n_features = Some(x.n_cols());
        let mut ctx = BuildCtx {
            x,
            targets,
            hessians,
            params: self.params,
            rng: StdRng::seed_from_u64(self.seed),
            feature_pool: (0..x.n_cols()).collect(),
        };
        let all: Vec<usize> = (0..x.n_rows()).collect();
        self.build(&mut ctx, all, 0);
        self.normalise_importances();
        Ok(())
    }

    /// Fits the tree on pre-quantized features: `rows` selects the
    /// training rows of `binned` (indices may repeat, enabling bootstrap
    /// sampling), while `targets`/`hessians` are indexed by the binned
    /// matrix's **global** row ids. Ensembles build the [`BinnedMatrix`]
    /// once per fit and share it across every tree and boosting round.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] or [`MlError::LabelMismatch`]
    /// for degenerate inputs.
    pub fn fit_binned(
        &mut self,
        binned: &BinnedMatrix,
        rows: &[usize],
        targets: &[f64],
        hessians: Option<&[f64]>,
    ) -> Result<(), MlError> {
        if rows.is_empty() || binned.n_rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        if targets.len() != binned.n_rows() {
            return Err(MlError::LabelMismatch {
                rows: binned.n_rows(),
                labels: targets.len(),
            });
        }
        if let Some(h) = hessians {
            if h.len() != binned.n_rows() {
                return Err(MlError::LabelMismatch {
                    rows: binned.n_rows(),
                    labels: h.len(),
                });
            }
        }
        self.nodes.clear();
        self.importances = vec![0.0; binned.n_cols()];
        self.n_features = Some(binned.n_cols());
        let mut ctx = BinnedCtx {
            binned,
            targets,
            hessians,
            params: self.params,
            rng: StdRng::seed_from_u64(self.seed),
            feature_pool: (0..binned.n_cols()).collect(),
        };
        self.build_binned(&mut ctx, rows.to_vec(), 0, Vec::new());
        self.normalise_importances();
        Ok(())
    }

    fn normalise_importances(&mut self) {
        let total: f64 = self.importances.iter().sum();
        if total > 0.0 {
            for imp in &mut self.importances {
                *imp /= total;
            }
        }
    }

    /// Predicts the raw tree value for each row (class-probability for
    /// classification fits, regression value otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] / [`MlError::FeatureMismatch`].
    pub fn predict_values(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        check_predict_inputs(x, self.n_features)?;
        Ok(x.rows().map(|row| self.predict_row(row)).collect())
    }

    /// Predicts the raw tree value for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "tree is not fitted");
        let mut ix = 0usize;
        loop {
            let node = &self.nodes[ix];
            if node.feature == LEAF {
                return node.value;
            }
            ix = if row[node.feature as usize] <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Depth of the fitted tree (a lone leaf has depth 0).
    ///
    /// Iterative (explicit work list) so that arbitrarily deep trees —
    /// e.g. from unbounded-depth configs — cannot overflow the call
    /// stack.
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut max_depth = 0usize;
        let mut stack = vec![(0u32, 0usize)];
        while let Some((ix, d)) = stack.pop() {
            let n = &self.nodes[ix as usize];
            if n.feature == LEAF {
                max_depth = max_depth.max(d);
            } else {
                stack.push((n.left, d + 1));
                stack.push((n.right, d + 1));
            }
        }
        max_depth
    }

    /// Read-only view of the flat node pool (root at index 0); used by
    /// the post-fit compiler in [`crate::compile`].
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    fn build(&mut self, ctx: &mut BuildCtx<'_>, indices: Vec<usize>, depth: usize) -> u32 {
        let node_ix = self.nodes.len() as u32;
        let sum_t: f64 = indices.iter().map(|&i| ctx.targets[i]).sum();
        let sum_h: f64 = match ctx.hessians {
            Some(h) => indices.iter().map(|&i| h[i]).sum(),
            None => indices.len() as f64,
        };
        let value = if sum_h.abs() > 1e-12 {
            sum_t / sum_h
        } else {
            0.0
        };
        self.nodes.push(Node {
            feature: LEAF,
            threshold: 0.0,
            left: 0,
            right: 0,
            value,
        });

        if indices.is_empty()
            || depth >= ctx.params.max_depth
            || indices.len() < ctx.params.min_samples_split
        {
            return node_ix;
        }
        // Pure node (zero SSE): nothing left to explain.
        let sum_sq: f64 = indices
            .iter()
            .map(|&i| ctx.targets[i] * ctx.targets[i])
            .sum();
        let node_sse = sum_sq - sum_t * sum_t / indices.len() as f64;
        if node_sse < 1e-12 {
            return node_ix;
        }
        let Some(split) = self.best_split(ctx, &indices) else {
            return node_ix;
        };

        self.importances[split.feature] += split.gain;
        let (left_ix, right_ix): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| ctx.x.get(i, split.feature) <= split.threshold);
        let left = self.build(ctx, left_ix, depth + 1);
        let right = self.build(ctx, right_ix, depth + 1);
        let node = &mut self.nodes[node_ix as usize];
        node.feature = split.feature as u32;
        node.threshold = split.threshold;
        node.left = left;
        node.right = right;
        node_ix
    }

    fn best_split(&self, ctx: &mut BuildCtx<'_>, indices: &[usize]) -> Option<Split> {
        if indices.is_empty() {
            return None;
        }
        let n_candidates = ctx.params.max_features.resolve(ctx.feature_pool.len());
        ctx.feature_pool.shuffle(&mut ctx.rng);
        let candidates: Vec<usize> = ctx.feature_pool[..n_candidates].to_vec();

        let total_sum: f64 = indices.iter().map(|&i| ctx.targets[i]).sum();
        let total_n = indices.len() as f64;
        let parent_score = total_sum * total_sum / total_n;

        let mut best: Option<Split> = None;
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(indices.len());
        for feature in candidates {
            pairs.clear();
            pairs.extend(
                indices
                    .iter()
                    .map(|&i| (ctx.x.get(i, feature), ctx.targets[i])),
            );
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            if pairs.first().map(|p| p.0) == pairs.last().map(|p| p.0) {
                continue; // constant feature in this node
            }
            let mut left_sum = 0.0;
            let mut left_n = 0.0;
            for w in 0..pairs.len() - 1 {
                left_sum += pairs[w].1;
                left_n += 1.0;
                if pairs[w].0 == pairs[w + 1].0 {
                    continue; // can only split between distinct values
                }
                let right_n = total_n - left_n;
                if right_n < 1.0
                    || (left_n as usize) < ctx.params.min_samples_leaf
                    || (right_n as usize) < ctx.params.min_samples_leaf
                {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                // Maximising Σ²/n of the children == minimising child SSE.
                let score = left_sum * left_sum / left_n + right_sum * right_sum / right_n;
                // Zero-gain splits are accepted on impure nodes (the
                // caller has already checked impurity): patterns like XOR
                // have no first-split gain yet are learnable.
                let gain = (score - parent_score).max(0.0);
                if best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(Split {
                        feature,
                        threshold: 0.5 * (pairs[w].0 + pairs[w + 1].0),
                        gain,
                    });
                }
            }
        }
        best
    }

    /// Histogram analogue of [`DecisionTree::build`]. `hists` carries
    /// per-feature histograms inherited from the parent's subtraction
    /// (all `None` at the root and whenever subtraction is off).
    fn build_binned(
        &mut self,
        ctx: &mut BinnedCtx<'_>,
        indices: Vec<usize>,
        depth: usize,
        hists: Vec<Option<Hist>>,
    ) -> u32 {
        let node_ix = self.nodes.len() as u32;
        let sum_t: f64 = indices.iter().map(|&i| ctx.targets[i]).sum();
        let sum_h: f64 = match ctx.hessians {
            Some(h) => indices.iter().map(|&i| h[i]).sum(),
            None => indices.len() as f64,
        };
        let value = if sum_h.abs() > 1e-12 {
            sum_t / sum_h
        } else {
            0.0
        };
        self.nodes.push(Node {
            feature: LEAF,
            threshold: 0.0,
            left: 0,
            right: 0,
            value,
        });

        if indices.is_empty()
            || depth >= ctx.params.max_depth
            || indices.len() < ctx.params.min_samples_split
        {
            return node_ix;
        }
        let sum_sq: f64 = indices
            .iter()
            .map(|&i| ctx.targets[i] * ctx.targets[i])
            .sum();
        let node_sse = sum_sq - sum_t * sum_t / indices.len() as f64;
        if node_sse < 1e-12 {
            return node_ix;
        }

        // Same candidate draw (and RNG consumption) as the exact path.
        let n_features = ctx.feature_pool.len();
        let n_candidates = ctx.params.max_features.resolve(n_features);
        ctx.feature_pool.shuffle(&mut ctx.rng);
        let candidates: Vec<usize> = ctx.feature_pool[..n_candidates].to_vec();
        // Subtraction only pays when the children will reuse *every*
        // feature's histogram — i.e. no per-node feature subsampling.
        let use_subtraction = n_candidates == n_features;

        let mut hists = if hists.is_empty() {
            vec![None; ctx.binned.n_cols()]
        } else {
            hists
        };
        for &f in &candidates {
            if hists[f].is_none() {
                hists[f] = Some(Hist::accumulate(ctx, f, &indices));
            }
        }

        let Some(split) = Self::best_split_binned(ctx, &indices, sum_t, &candidates, &hists) else {
            return node_ix;
        };

        self.importances[split.feature] += split.gain;
        let col = ctx.binned.column(split.feature);
        let (left_ix, right_ix): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| (col[i] as usize) <= split.bin);

        let (left_hists, right_hists) = if use_subtraction {
            // Accumulate the smaller child; the larger is parent − smaller.
            let left_is_small = left_ix.len() <= right_ix.len();
            let small_ix = if left_is_small { &left_ix } else { &right_ix };
            let mut small = Vec::with_capacity(n_features);
            let mut large = Vec::with_capacity(n_features);
            for (f, parent) in hists.iter().enumerate() {
                // mfpa-lint: allow(d8, "hists holds one accumulated entry per feature by construction")
                let parent = parent.as_ref().expect("all features accumulated");
                let child = Hist::accumulate(ctx, f, small_ix);
                large.push(Some(child.sibling_from(parent)));
                small.push(Some(child));
            }
            if left_is_small {
                (small, large)
            } else {
                (large, small)
            }
        } else {
            (Vec::new(), Vec::new())
        };
        drop(hists);

        let left = self.build_binned(ctx, left_ix, depth + 1, left_hists);
        let right = self.build_binned(ctx, right_ix, depth + 1, right_hists);
        let node = &mut self.nodes[node_ix as usize];
        node.feature = split.feature as u32;
        node.threshold = split.threshold;
        node.left = left;
        node.right = right;
        node_ix
    }

    /// Scans at most `n_bins − 1` boundaries per candidate feature over
    /// the pre-accumulated histograms. Gain arithmetic mirrors
    /// [`DecisionTree::best_split`] operation-for-operation so that the
    /// two paths agree bit-for-bit whenever the bin sums do.
    fn best_split_binned(
        ctx: &BinnedCtx<'_>,
        indices: &[usize],
        total_sum: f64,
        candidates: &[usize],
        hists: &[Option<Hist>],
    ) -> Option<BinnedSplit> {
        if indices.is_empty() {
            return None;
        }
        let total_n = indices.len() as f64;
        let total_cnt = indices.len() as u32;
        let parent_score = total_sum * total_sum / total_n;

        let mut best: Option<BinnedSplit> = None;
        for &feature in candidates {
            let edges = ctx.binned.edges(feature);
            if edges.is_empty() {
                continue; // globally constant feature
            }
            // mfpa-lint: allow(d8, "candidates are exactly the features accumulated into hists")
            let hist = hists[feature].as_ref().expect("candidate accumulated");
            let mut left_sum = 0.0;
            let mut left_cnt = 0u32;
            for (b, &edge) in edges.iter().enumerate() {
                left_sum += hist.sum[b];
                left_cnt += hist.cnt[b];
                if left_cnt == 0 {
                    continue; // nothing routes left of this boundary
                }
                let right_cnt: u32 = total_cnt - left_cnt;
                if right_cnt == 0 {
                    break; // nothing ever routes right of here
                }
                if (left_cnt as usize) < ctx.params.min_samples_leaf
                    || (right_cnt as usize) < ctx.params.min_samples_leaf
                {
                    continue;
                }
                let left_n = left_cnt as f64;
                let right_n = right_cnt as f64;
                let right_sum = total_sum - left_sum;
                let score = left_sum * left_sum / left_n + right_sum * right_sum / right_n;
                let gain = (score - parent_score).max(0.0);
                if best.as_ref().is_none_or(|s| gain > s.gain) {
                    best = Some(BinnedSplit {
                        feature,
                        bin: b,
                        threshold: edge,
                        gain,
                    });
                }
            }
        }
        best
    }
}

#[derive(Debug)]
struct Split {
    feature: usize,
    threshold: f64,
    gain: f64,
}

#[derive(Debug)]
struct BinnedSplit {
    feature: usize,
    /// Rows with bin code `<= bin` route left.
    bin: usize,
    /// The bin edge, recorded as the node threshold so raw-value routing
    /// at prediction time matches bin-code routing at training time.
    threshold: f64,
    gain: f64,
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> Result<(), MlError> {
        check_fit_inputs(x, y)?;
        let targets: Vec<f64> = y.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        self.fit_regression(x, &targets, None)
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        Ok(self
            .predict_values(x)?
            .into_iter()
            .map(|v| v.clamp(0.0, 1.0))
            .collect())
    }

    fn name(&self) -> &'static str {
        "DecisionTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<bool>) {
        // XOR needs depth >= 2 and is unlearnable by a linear model.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for &(a, b) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for k in 0..5 {
                rows.push(vec![a + 0.01 * k as f64, b - 0.01 * k as f64]);
                y.push((a > 0.5) != (b > 0.5));
            }
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&x).unwrap(), y);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn max_depth_zero_gives_single_leaf() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.depth(), 0);
        // Leaf predicts the base rate.
        let p = t.predict_proba(&x).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = [false, false, true, true];
        let mut t = DecisionTree::new(TreeParams {
            min_samples_leaf: 2,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        // Only the middle split satisfies the leaf minimum; tree is a stump.
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn importances_normalised() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&x, &y).unwrap();
        let sum: f64 = t.feature_importances().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_with_newton_leaves() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![1.0], vec![1.0]]).unwrap();
        let grads = [0.4, 0.6, -0.2, -0.4];
        let hess = [0.5, 0.5, 0.5, 0.5];
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit_regression(&x, &grads, Some(&hess)).unwrap();
        let v = t.predict_values(&x).unwrap();
        assert!((v[0] - 1.0).abs() < 1e-9); // (0.4+0.6)/(0.5+0.5)
        assert!((v[2] + 0.6).abs() < 1e-9); // (-0.6)/(1.0)
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(45), 45);
        assert_eq!(MaxFeatures::Sqrt.resolve(45), 7);
        assert_eq!(MaxFeatures::Log2.resolve(45), 6);
        assert_eq!(MaxFeatures::Count(100).resolve(45), 45);
        assert_eq!(MaxFeatures::Count(0).resolve(45), 1);
        assert_eq!(MaxFeatures::Log2.resolve(1), 1);
    }

    #[test]
    fn deterministic_per_seed_with_subsampled_features() {
        let (x, y) = xor_data();
        let params = TreeParams {
            max_features: MaxFeatures::Count(1),
            ..TreeParams::default()
        };
        let mut a = DecisionTree::new(params).with_seed(3);
        let mut b = DecisionTree::new(params).with_seed(3);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn constant_features_yield_leaf() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]).unwrap();
        let y = [true, false, true];
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&x, &y).unwrap();
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        let mut t = DecisionTree::new(TreeParams::default());
        assert_eq!(
            t.fit(&Matrix::with_cols(2), &[]),
            Err(MlError::EmptyTrainingSet)
        );
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(t.predict_values(&x).is_err()); // not fitted
    }

    #[test]
    fn depth_survives_pathologically_deep_trees() {
        // A left-leaning chain 200k nodes deep. The recursive depth_at
        // this replaced would need ~200k stack frames; prove the
        // iterative version copes by running it on a 256 KiB stack.
        const DEPTH: u32 = 200_000;
        // Inner node at 2d chains to the next inner node via `right`
        // (index 2d + 2); its `left` child (2d + 1) is a leaf.
        let mut nodes = Vec::with_capacity(2 * DEPTH as usize + 1);
        for d in 0..DEPTH {
            let base = 2 * d;
            nodes.push(Node {
                feature: 0,
                threshold: 0.5,
                left: base + 1,
                right: base + 2,
                value: 0.0,
            });
            nodes.push(Node {
                feature: LEAF,
                threshold: 0.0,
                left: 0,
                right: 0,
                value: 1.0,
            });
        }
        nodes.push(Node {
            feature: LEAF,
            threshold: 0.0,
            left: 0,
            right: 0,
            value: 2.0,
        });
        let tree = DecisionTree {
            params: TreeParams::default(),
            seed: 0,
            nodes,
            n_features: Some(1),
            importances: vec![0.0],
        };
        let handle = std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(move || {
                assert_eq!(tree.depth(), DEPTH as usize);
                // predict_row is iterative too: the all-right path ends
                // in the deepest leaf.
                assert_eq!(tree.predict_row(&[1.0]), 2.0);
            })
            .unwrap();
        handle.join().unwrap();
    }
}
