//! Gradient-boosted decision trees with logistic loss.
//!
//! Newton boosting: each round fits a regression tree to the gradient
//! residuals `y − p` and sets leaf values with the second-order step
//! `Σ(y − p) / Σ p(1 − p)`, then the ensemble score is updated with
//! shrinkage. Optional row subsampling makes it stochastic GBDT.

use mfpa_dataset::Matrix;
use mfpa_par::{ordered_collect, Workers};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::binning::{BinnedMatrix, DEFAULT_MAX_BINS};
use crate::error::{check_fit_inputs, check_predict_inputs, MlError};
use crate::model::Classifier;
use crate::tree::{DecisionTree, MaxFeatures, TreeParams};

/// Gradient-boosted decision-tree binary classifier.
///
/// # Example
///
/// ```
/// use mfpa_dataset::Matrix;
/// use mfpa_ml::{Classifier, Gbdt};
///
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![0.2], vec![0.9], vec![1.0], vec![1.1],
/// ]).unwrap();
/// let y = [false, false, false, true, true, true];
/// let mut g = Gbdt::new(30, 0.2, 3).with_seed(1);
/// g.fit(&x, &y)?;
/// assert_eq!(g.predict(&x)?, y);
/// # Ok::<(), mfpa_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    n_rounds: usize,
    learning_rate: f64,
    max_depth: usize,
    subsample: f64,
    min_samples_leaf: usize,
    max_bins: usize,
    seed: u64,
    n_threads: usize,
    base_score: f64,
    trees: Vec<DecisionTree>,
    n_features: Option<usize>,
}

impl Gbdt {
    /// Creates a booster with `n_rounds` trees, shrinkage `learning_rate`
    /// and per-tree `max_depth`. Row subsampling defaults to 1.0 (off).
    pub fn new(n_rounds: usize, learning_rate: f64, max_depth: usize) -> Self {
        Gbdt {
            n_rounds: n_rounds.max(1),
            learning_rate,
            max_depth,
            subsample: 1.0,
            min_samples_leaf: 1,
            max_bins: DEFAULT_MAX_BINS,
            seed: 0,
            n_threads: Workers::auto().get(),
            base_score: 0.0,
            trees: Vec::new(),
            n_features: None,
        }
    }

    /// Sets the RNG seed (row subsampling).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables stochastic boosting with the given row fraction per round.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn with_subsample(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "subsample fraction must be in (0, 1]"
        );
        self.subsample = fraction;
        self
    }

    /// Sets the minimum samples per leaf of each tree.
    pub fn with_min_samples_leaf(mut self, n: usize) -> Self {
        self.min_samples_leaf = n.max(1);
        self
    }

    /// Overrides the per-feature bin budget for histogram split search;
    /// `0` selects the exact (re-sorting) training path. The binned
    /// matrix is built once per fit and reused across every round.
    pub fn with_max_bins(mut self, n: usize) -> Self {
        self.max_bins = n;
        self
    }

    /// Limits the number of worker threads used for the per-row work of
    /// each boosting round and for batch scoring. Boosting rounds stay
    /// strictly sequential (round *t* needs round *t − 1*'s scores), and
    /// per-row updates are independent, so the fitted model and its
    /// predictions are bit-identical at any worker count.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.n_threads = n.max(1);
        self
    }

    /// Number of boosting rounds configured.
    pub fn n_rounds(&self) -> usize {
        self.n_rounds
    }

    /// Raw additive scores (log-odds) for each row.
    ///
    /// # Errors
    ///
    /// Same as [`Classifier::predict_proba`].
    pub fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        check_predict_inputs(x, self.n_features)?;
        // Per-row sums accumulate in round order, exactly as the serial
        // trees-outer loop would — bit-identical at any worker count.
        Ok(ordered_collect(
            x.n_rows(),
            Workers::new(self.n_threads),
            |i| {
                let row = x.row(i);
                let mut s = self.base_score;
                for tree in &self.trees {
                    s += self.learning_rate * tree.predict_row(row);
                }
                s
            },
        ))
    }

    /// Mean per-feature split-gain importances over all rounds.
    pub fn feature_importances(&self) -> Vec<f64> {
        let Some(n_features) = self.n_features else {
            return Vec::new();
        };
        let mut imp = vec![0.0; n_features];
        for t in &self.trees {
            for (a, b) in imp.iter_mut().zip(t.feature_importances()) {
                *a += b;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

pub(crate) fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z.clamp(-700.0, 700.0)).exp())
}

impl Classifier for Gbdt {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> Result<(), MlError> {
        check_fit_inputs(x, y)?;
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(MlError::InvalidParameter(format!(
                "learning_rate must be positive, got {}",
                self.learning_rate
            )));
        }
        let n = x.n_rows();
        let targets: Vec<f64> = y.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        let pos = targets.iter().sum::<f64>();
        // F0 = log-odds of the base rate.
        let p0 = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        self.base_score = (p0 / (1.0 - p0)).ln();

        let mut rng = StdRng::seed_from_u64(self.seed);
        let workers = Workers::new(self.n_threads);
        let mut scores = vec![self.base_score; n];
        let params = TreeParams {
            max_depth: self.max_depth,
            min_samples_split: 2,
            min_samples_leaf: self.min_samples_leaf,
            max_features: MaxFeatures::All,
            max_bins: self.max_bins,
        };
        // Quantize once; every boosting round trains on bin codes and
        // never re-reads the row-major matrix.
        let binned = if self.max_bins > 0 {
            Some(BinnedMatrix::build(x, self.max_bins, workers))
        } else {
            None
        };
        let mut trees = Vec::with_capacity(self.n_rounds);
        let mut all_rows: Vec<usize> = (0..n).collect();
        for round in 0..self.n_rounds {
            let probs: Vec<f64> = scores.iter().map(|&s| sigmoid(s)).collect();
            let grads: Vec<f64> = targets.iter().zip(&probs).map(|(t, p)| t - p).collect();
            let hess: Vec<f64> = probs.iter().map(|p| (p * (1.0 - p)).max(1e-6)).collect();

            let mut tree = DecisionTree::new(params).with_seed(
                self.seed
                    .wrapping_add(round as u64)
                    .wrapping_mul(0x9E37_79B9),
            );
            let rows: &[usize] = if self.subsample < 1.0 {
                all_rows.shuffle(&mut rng);
                let k = ((n as f64) * self.subsample).ceil().max(2.0) as usize;
                &all_rows[..k.min(n)]
            } else {
                &all_rows
            };
            if let Some(binned) = &binned {
                tree.fit_binned(binned, rows, &grads, Some(&hess))?;
            } else if rows.len() < n {
                let bx = x.select_rows(rows);
                let bg: Vec<f64> = rows.iter().map(|&i| grads[i]).collect();
                let bh: Vec<f64> = rows.iter().map(|&i| hess[i]).collect();
                tree.fit_regression(&bx, &bg, Some(&bh))?;
            } else {
                tree.fit_regression(x, &grads, Some(&hess))?;
            }
            // Rounds are inherently sequential, but within a round every
            // row's score update is independent.
            let deltas = ordered_collect(n, workers, |i| tree.predict_row(x.row(i)));
            for (s, d) in scores.iter_mut().zip(deltas) {
                *s += self.learning_rate * d;
            }
            trees.push(tree);
        }
        self.trees = trees;
        self.n_features = Some(x.n_cols());
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        Ok(self
            .decision_function(x)?
            .into_iter()
            .map(sigmoid)
            .collect())
    }

    fn name(&self) -> &'static str {
        "GBDT"
    }

    fn compile(&self) -> Option<crate::compile::CompiledEnsemble> {
        let n_features = self.n_features?;
        crate::compile::CompiledEnsemble::from_gbdt(
            &self.trees,
            n_features,
            self.base_score,
            self.learning_rate,
            self.n_threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;
    use rand::RngExt;

    fn ring_data(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        // Positive = inside the unit circle: nonlinear boundary.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.random_range(-1.5..1.5);
            let b: f64 = rng.random_range(-1.5..1.5);
            rows.push(vec![a, b]);
            y.push(a * a + b * b < 1.0);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (x, y) = ring_data(400, 1);
        let mut g = Gbdt::new(60, 0.2, 3).with_seed(2);
        g.fit(&x, &y).unwrap();
        let p = g.predict_proba(&x).unwrap();
        assert!(auc(&y, &p) > 0.97, "auc = {}", auc(&y, &p));
    }

    #[test]
    fn training_loss_decreases_with_rounds() {
        let (x, y) = ring_data(200, 3);
        let loss = |model: &Gbdt| -> f64 {
            let p = model.predict_proba(&x).unwrap();
            -y.iter()
                .zip(&p)
                .map(|(&t, &pi)| {
                    let pi = pi.clamp(1e-9, 1.0 - 1e-9);
                    if t {
                        pi.ln()
                    } else {
                        (1.0 - pi).ln()
                    }
                })
                .sum::<f64>()
                / y.len() as f64
        };
        let mut small = Gbdt::new(5, 0.2, 3).with_seed(4);
        let mut big = Gbdt::new(50, 0.2, 3).with_seed(4);
        small.fit(&x, &y).unwrap();
        big.fit(&x, &y).unwrap();
        assert!(loss(&big) < loss(&small));
    }

    #[test]
    fn base_score_matches_base_rate() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0], vec![1.0]]).unwrap();
        let y = [false, false, false, true];
        let mut g = Gbdt::new(1, 1e-9, 1).with_seed(0);
        g.fit(&x, &y).unwrap();
        // With a negligible learning rate, probability ≈ base rate 0.25.
        let p = g.predict_proba(&x).unwrap();
        assert!((p[0] - 0.25).abs() < 1e-3, "p = {}", p[0]);
    }

    #[test]
    fn subsampled_boosting_still_learns() {
        let (x, y) = ring_data(300, 5);
        let mut g = Gbdt::new(60, 0.2, 3).with_seed(6).with_subsample(0.5);
        g.fit(&x, &y).unwrap();
        assert!(auc(&y, &g.predict_proba(&x).unwrap()) > 0.95);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = ring_data(100, 7);
        let mut a = Gbdt::new(10, 0.3, 3).with_seed(8).with_subsample(0.7);
        let mut b = Gbdt::new(10, 0.3, 3).with_seed(8).with_subsample(0.7);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        let (x, y) = ring_data(90, 11);
        let fit_at = |n: usize| {
            let mut g = Gbdt::new(12, 0.3, 3)
                .with_seed(4)
                .with_subsample(0.8)
                .with_threads(n);
            g.fit(&x, &y).unwrap();
            g.predict_proba(&x).unwrap()
        };
        let expected = fit_at(1);
        let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
        for n in [2, 7] {
            assert_eq!(bits(&fit_at(n)), bits(&expected), "n_threads = {n}");
        }
    }

    #[test]
    fn invalid_learning_rate_rejected() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let mut g = Gbdt::new(5, 0.0, 2);
        assert!(matches!(
            g.fit(&x, &[true, false]),
            Err(MlError::InvalidParameter(_))
        ));
    }

    #[test]
    fn decision_function_monotone_with_proba() {
        let (x, y) = ring_data(80, 9);
        let mut g = Gbdt::new(20, 0.2, 3).with_seed(1);
        g.fit(&x, &y).unwrap();
        let d = g.decision_function(&x).unwrap();
        let p = g.predict_proba(&x).unwrap();
        for (di, pi) in d.iter().zip(&p) {
            assert!((sigmoid(*di) - pi).abs() < 1e-12);
        }
    }
}
