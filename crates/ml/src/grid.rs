//! Grid search over model hyperparameters (§III-C(4)).
//!
//! "We utilize Grid Search, combined with time-series-based
//! cross-validation, to optimize the value of hyperparameters." The grid
//! is a cartesian product of named numeric parameter values; the caller
//! supplies cross-validation folds (typically
//! [`mfpa_dataset::cv::time_series_cv`]) and a factory building a
//! [`Classifier`] from a parameter assignment. Candidates are ranked by
//! mean validation AUC.
//!
//! Candidates are independent, so they are evaluated in parallel on the
//! deterministic layer ([`mfpa_par`]): each worker builds, fits and
//! scores its own models, results come back in candidate order, and the
//! trial log is bit-identical at any worker count.

use std::collections::BTreeMap;

use mfpa_dataset::cv::Fold;
use mfpa_dataset::Matrix;
use mfpa_par::{ordered_map, Workers};

use crate::error::MlError;
use crate::metrics::auc;
use crate::model::Classifier;

/// A concrete hyperparameter assignment (name → value).
pub type ParamSet = BTreeMap<String, f64>;

/// Cartesian hyperparameter grid.
///
/// # Example
///
/// ```
/// use mfpa_ml::grid::ParamGrid;
///
/// let grid = ParamGrid::new()
///     .add("n_trees", &[50.0, 100.0])
///     .add("max_depth", &[4.0, 8.0, 12.0]);
/// assert_eq!(grid.candidates().len(), 6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamGrid {
    axes: Vec<(String, Vec<f64>)>,
}

impl ParamGrid {
    /// Creates an empty grid (one empty candidate).
    pub fn new() -> Self {
        ParamGrid::default()
    }

    /// Adds a parameter axis.
    pub fn add(mut self, name: &str, values: &[f64]) -> Self {
        self.axes.push((name.to_owned(), values.to_vec()));
        self
    }

    /// Enumerates all parameter assignments (cartesian product).
    pub fn candidates(&self) -> Vec<ParamSet> {
        let mut out: Vec<ParamSet> = vec![ParamSet::new()];
        for (name, values) in &self.axes {
            let mut next = Vec::with_capacity(out.len() * values.len());
            for base in &out {
                for &v in values {
                    let mut p = base.clone();
                    p.insert(name.clone(), v);
                    next.push(p);
                }
            }
            out = next;
        }
        out
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The parameter assignment.
    pub params: ParamSet,
    /// Mean validation AUC across folds.
    pub mean_auc: f64,
}

/// Grid-search result: the winning assignment plus the full trial log.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// The best parameter assignment.
    pub best_params: ParamSet,
    /// Its mean validation AUC.
    pub best_auc: f64,
    /// All trials in evaluation order.
    pub trials: Vec<Trial>,
}

/// Runs an exhaustive grid search.
///
/// For every candidate assignment, a fresh model is built by `factory`,
/// trained on each fold's training rows and scored by AUC on the fold's
/// validation rows; candidates are ranked by mean AUC. Folds whose
/// validation set has a single class contribute AUC 0.5 (no information).
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] for an empty fold list and
/// propagates model fit/predict errors; folds whose *training* rows have
/// a single class are skipped, and a candidate with no usable folds
/// scores 0.
///
/// # Example
///
/// ```
/// use mfpa_dataset::{cv::kfold, Matrix};
/// use mfpa_ml::grid::{grid_search, ParamGrid};
/// use mfpa_ml::RandomForest;
///
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![0.2], vec![0.3],
///     vec![1.0], vec![1.1], vec![1.2], vec![1.3],
/// ]).unwrap();
/// let y = [false, false, false, false, true, true, true, true];
/// let folds = kfold(8, 4, 0)?;
/// let grid = ParamGrid::new().add("max_depth", &[2.0, 4.0]);
/// let result = grid_search(&grid, &folds, &x, &y, |p| {
///     Box::new(RandomForest::new(10, p["max_depth"] as usize).with_seed(1))
/// })?;
/// // Tiny folds can validate on a single class (AUC 0.5), so the mean
/// // is informative but not 1.0.
/// assert!(result.best_auc > 0.6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn grid_search<F>(
    grid: &ParamGrid,
    folds: &[Fold],
    x: &Matrix,
    y: &[bool],
    factory: F,
) -> Result<GridSearchResult, MlError>
where
    F: Fn(&ParamSet) -> Box<dyn Classifier> + Sync,
{
    grid_search_with_threads(grid, folds, x, y, 0, factory)
}

/// [`grid_search`] with an explicit worker count (`0` = automatic:
/// `MFPA_THREADS` or the machine). Candidates are distributed across
/// workers; the trial log and the winner are bit-identical at any count.
///
/// # Errors
///
/// Same as [`grid_search`].
pub fn grid_search_with_threads<F>(
    grid: &ParamGrid,
    folds: &[Fold],
    x: &Matrix,
    y: &[bool],
    n_threads: usize,
    factory: F,
) -> Result<GridSearchResult, MlError>
where
    F: Fn(&ParamSet) -> Box<dyn Classifier> + Sync,
{
    if folds.is_empty() {
        return Err(MlError::InvalidParameter(
            "grid search needs at least one fold".into(),
        ));
    }
    let candidates = grid.candidates();
    let evaluated = ordered_map(
        &candidates,
        Workers::from_config(n_threads),
        |_, params| -> Result<f64, MlError> {
            let mut fold_aucs = Vec::new();
            for fold in folds {
                let train_y: Vec<bool> = fold.train.iter().map(|&i| y[i]).collect();
                let pos = train_y.iter().filter(|&&l| l).count();
                if pos == 0 || pos == train_y.len() {
                    continue; // untrainable fold
                }
                let train_x = x.select_rows(&fold.train);
                let val_x = x.select_rows(&fold.validate);
                let val_y: Vec<bool> = fold.validate.iter().map(|&i| y[i]).collect();
                let mut model = factory(params);
                model.fit(&train_x, &train_y)?;
                let scores = model.predict_proba(&val_x)?;
                fold_aucs.push(auc(&val_y, &scores));
            }
            Ok(if fold_aucs.is_empty() {
                0.0
            } else {
                fold_aucs.iter().sum::<f64>() / fold_aucs.len() as f64
            })
        },
    );
    let mut trials = Vec::with_capacity(candidates.len());
    for (params, mean_auc) in candidates.into_iter().zip(evaluated) {
        trials.push(Trial {
            params,
            mean_auc: mean_auc?,
        });
    }
    let best = trials
        .iter()
        .max_by(|a, b| a.mean_auc.total_cmp(&b.mean_auc))
        .ok_or_else(|| MlError::InvalidParameter("empty parameter grid".into()))?;
    Ok(GridSearchResult {
        best_params: best.params.clone(),
        best_auc: best.mean_auc,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_bayes::GaussianNb;
    use mfpa_dataset::cv::kfold;

    fn toy() -> (Matrix, Vec<bool>) {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 / 10.0 + if i % 2 == 0 { 5.0 } else { 0.0 }])
            .collect();
        let y: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn empty_grid_yields_single_candidate() {
        assert_eq!(ParamGrid::new().candidates().len(), 1);
    }

    #[test]
    fn cartesian_product_size() {
        let g = ParamGrid::new()
            .add("a", &[1.0, 2.0])
            .add("b", &[1.0, 2.0, 3.0])
            .add("c", &[0.0]);
        assert_eq!(g.candidates().len(), 6);
    }

    #[test]
    fn search_evaluates_all_candidates() {
        let (x, y) = toy();
        let folds = kfold(x.n_rows(), 4, 0).unwrap();
        let grid = ParamGrid::new().add("smoothing", &[1e-9, 1e-3, 1e-1]);
        let res = grid_search(&grid, &folds, &x, &y, |p| {
            Box::new(GaussianNb::new().with_var_smoothing(p["smoothing"]))
        })
        .unwrap();
        assert_eq!(res.trials.len(), 3);
        assert!(res.best_auc > 0.9);
        assert!(res.trials.iter().all(|t| t.mean_auc <= res.best_auc));
    }

    #[test]
    fn trials_identical_at_any_thread_count() {
        let (x, y) = toy();
        let folds = kfold(x.n_rows(), 4, 0).unwrap();
        // Three candidates over seven workers also exercises the
        // workers > items degenerate case.
        let grid = ParamGrid::new().add("smoothing", &[1e-9, 1e-3, 1e-1]);
        let run = |n: usize| {
            grid_search_with_threads(&grid, &folds, &x, &y, n, |p| {
                Box::new(GaussianNb::new().with_var_smoothing(p["smoothing"]))
            })
            .unwrap()
        };
        let reference = run(1);
        for n in [2, 7] {
            let res = run(n);
            assert_eq!(res.best_params, reference.best_params, "n_threads = {n}");
            assert_eq!(res.best_auc.to_bits(), reference.best_auc.to_bits());
            for (a, b) in res.trials.iter().zip(&reference.trials) {
                assert_eq!(a.params, b.params);
                assert_eq!(a.mean_auc.to_bits(), b.mean_auc.to_bits());
            }
        }
    }

    #[test]
    fn no_folds_rejected() {
        let (x, y) = toy();
        let grid = ParamGrid::new();
        assert!(grid_search(&grid, &[], &x, &y, |_| Box::new(GaussianNb::new())).is_err());
    }

    #[test]
    fn single_class_folds_skipped() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![0.1], vec![0.9]]).unwrap();
        let y = [false, true, false, true];
        // Fold trains on all-negative rows → skipped; candidate scores 0.
        let folds = vec![Fold {
            train: vec![0, 2],
            validate: vec![1, 3],
        }];
        let res = grid_search(&ParamGrid::new(), &folds, &x, &y, |_| {
            Box::new(GaussianNb::new())
        })
        .unwrap();
        assert_eq!(res.best_auc, 0.0);
    }
}
