//! Post-fit compilation of tree ensembles into a flat scoring engine.
//!
//! [`CompiledEnsemble`] flattens the pointer-linked trees of a fitted
//! [`crate::RandomForest`] or [`crate::Gbdt`] into breadth-first
//! structure-of-arrays node blocks, quantizes thresholds to `u8` bin
//! cuts where a feature's threshold set fits 255 edges (byte compares
//! on the hot path, with an `f64` raw-threshold fallback lane
//! otherwise), and scores rows in blocks one tree-level at a time.
//! Probabilities are bit-identical to the interpreted
//! `predict_proba` of the source model: node routing uses the exact
//! `value <= threshold` comparisons (the quantized code compare is
//! provably equivalent, see [`Lane`]), and per-row accumulation runs
//! in the same tree order with the same operations.
//!
//! Two scoring paths are exposed:
//!
//! - [`CompiledEnsemble::predict_proba`]: batch scoring of a [`Matrix`],
//!   blocks of [`DENSE_BLOCK`] rows distributed over
//!   [`mfpa_par::ordered_collect`] — bit-identical at any worker count.
//! - [`SequentialScorer`]: incremental per-device scoring for telemetry
//!   streams, exploiting two structural facts of monitoring data: most
//!   features rarely change between consecutive records of one device,
//!   and cumulative counters never decrease. A tree is re-evaluated
//!   only when a comparison outcome on its current root-to-leaf path
//!   can have changed; otherwise its cached leaf is reused. Reuse is
//!   only taken when every comparison outcome is provably unchanged, so
//!   the scores are bit-identical to the batch path at any change rate.
//!
//! The compiled form serializes to a hand-rolled little-endian
//! `.mfpac` artifact with an FNV-1a-64 footer and a truncation-safe
//! decoder (same codec discipline as `core::checkpoint`), so a monitor
//! process can load a model without refitting.

use mfpa_bytes::{unseal, ByteReader, ByteWriter};
use mfpa_dataset::Matrix;
use mfpa_par::{ordered_collect, Workers};

use crate::error::MlError;
use crate::gbdt::sigmoid;
use crate::model::Classifier;
use crate::tree::{DecisionTree, LEAF};

/// Rows per block in the batch (dense) kernel. 64 rows of one feature
/// column are eight 64-byte cache lines; a whole block of 45 features
/// stays L1-resident while every tree level sweeps it.
pub const DENSE_BLOCK: usize = 64;

/// Rows per block in the sequential scorer. The ordered per-tree
/// accumulation is a dependent FMA chain; vectorizing it across 16 rows
/// amortizes the chain latency while the per-tree leaf timeline scratch
/// stays tiny.
const SEQ_BLOCK: usize = 16;

/// Maximum quantized edges per feature; codes and cuts are `u8`.
const MAX_EDGES: usize = 255;

/// How a feature's thresholds are represented on the hot path.
///
/// For a `Quantized` feature, `edges` is the sorted, deduplicated set
/// of every split threshold the ensemble uses on that feature. A raw
/// value maps to the code `#{e in edges : e < v}` (NaN maps past the
/// end), and a node's threshold `t` — itself an edge — to the cut
/// `#{e : e < t}`. Then `code(v) <= cut ⟺ v <= t` *exactly*: every
/// edge below `v` is below `t` iff `v <= t`, so byte compares route
/// rows identically to the raw `f64` compares, NaN included.
#[derive(Debug, Clone, PartialEq)]
pub enum Lane {
    /// Hot path compares raw `f64` values against node thresholds.
    /// Chosen when a feature has more than 255 distinct thresholds or a
    /// NaN threshold (unrepresentable as a cut).
    Raw,
    /// Hot path compares `u8` bin codes against node cuts; `edges` maps
    /// values to codes.
    Quantized(Vec<f64>),
}

/// Ensemble-specific reduction from per-tree leaf sums to a probability.
#[derive(Debug, Clone, PartialEq)]
enum Finalize {
    /// Random forest: mean leaf probability, clamped to `[0, 1]`.
    RfMean,
    /// GBDT: `sigmoid(base_score + Σ learning_rate · leaf)`.
    GbdtLogistic { base_score: f64, learning_rate: f64 },
}

/// A fitted tree ensemble flattened for serving-grade scoring.
///
/// Nodes of all trees live in shared structure-of-arrays storage in
/// per-tree breadth-first order: a node's children are adjacent
/// (`right == left + 1`), each level is a contiguous block, and the
/// hot arrays (`feat`, `cut`, `left`) pack 16–64 nodes per cache line.
///
/// Build one with [`Classifier::compile`] on a fitted
/// [`crate::RandomForest`] or [`crate::Gbdt`].
#[derive(Debug, Clone)]
pub struct CompiledEnsemble {
    n_features: usize,
    /// Split feature per node, or [`LEAF`].
    feat: Vec<u32>,
    /// Raw split threshold per node (always populated).
    thr: Vec<f64>,
    /// Quantized cut per node (valid when the feature's lane is
    /// [`Lane::Quantized`]).
    cut: Vec<u8>,
    /// 1 if this node compares codes, 0 if it compares raw values.
    qflag: Vec<u8>,
    /// Absolute index of the left child; the right child is `left + 1`.
    left: Vec<u32>,
    /// Leaf value (valid when `feat == LEAF`).
    value: Vec<f64>,
    /// Root node index per tree, ascending; node range of tree `t` is
    /// `tree_roots[t]..tree_roots[t + 1]` (with an implicit final bound
    /// of `feat.len()`).
    tree_roots: Vec<u32>,
    /// Height of each tree (a lone leaf has depth 0).
    tree_depths: Vec<u32>,
    lanes: Vec<Lane>,
    finalize: Finalize,
    n_threads: usize,
}

impl CompiledEnsemble {
    /// Compiles GBDT round trees; returns `None` if any tree is empty.
    pub(crate) fn from_gbdt(
        trees: &[DecisionTree],
        n_features: usize,
        base_score: f64,
        learning_rate: f64,
        n_threads: usize,
    ) -> Option<Self> {
        Self::from_trees(
            trees,
            n_features,
            Finalize::GbdtLogistic {
                base_score,
                learning_rate,
            },
            n_threads,
        )
    }

    /// Compiles random-forest trees; returns `None` if any tree is empty.
    pub(crate) fn from_forest(
        trees: &[DecisionTree],
        n_features: usize,
        n_threads: usize,
    ) -> Option<Self> {
        Self::from_trees(trees, n_features, Finalize::RfMean, n_threads)
    }

    fn from_trees(
        trees: &[DecisionTree],
        n_features: usize,
        finalize: Finalize,
        n_threads: usize,
    ) -> Option<Self> {
        if trees.is_empty() || trees.iter().any(|t| t.nodes().is_empty()) {
            return None;
        }
        let total: usize = trees.iter().map(|t| t.nodes().len()).sum();
        if total >= u32::MAX as usize {
            return None;
        }
        let mut ens = CompiledEnsemble {
            n_features,
            feat: Vec::with_capacity(total),
            thr: Vec::with_capacity(total),
            cut: vec![0; total],
            qflag: vec![0; total],
            left: Vec::with_capacity(total),
            value: Vec::with_capacity(total),
            tree_roots: Vec::with_capacity(trees.len()),
            tree_depths: Vec::with_capacity(trees.len()),
            lanes: Vec::new(),
            finalize,
            n_threads: n_threads.max(1),
        };
        // Breadth-first flatten, one tree at a time. `order` holds the
        // original node index of each emitted slot; children are
        // enqueued together so they land adjacent.
        let mut order: Vec<u32> = Vec::new();
        let mut new_left: Vec<u32> = Vec::new();
        for tree in trees {
            let nodes = tree.nodes();
            let base = ens.feat.len();
            ens.tree_roots.push(u32::try_from(base).ok()?);
            ens.tree_depths.push(u32::try_from(tree.depth()).ok()?);
            order.clear();
            new_left.clear();
            order.push(0);
            let mut i = 0usize;
            while i < order.len() {
                let n = &nodes[order[i] as usize];
                if n.feature == LEAF {
                    new_left.push(0);
                } else {
                    let child = u32::try_from(base + order.len()).ok()?;
                    new_left.push(child);
                    order.push(n.left);
                    order.push(n.right);
                }
                i += 1;
            }
            for (slot, &orig) in order.iter().enumerate() {
                let n = &nodes[orig as usize];
                ens.feat.push(n.feature);
                ens.thr.push(n.threshold);
                ens.left.push(new_left[slot]);
                ens.value.push(n.value);
                if n.feature != LEAF && n.feature as usize >= n_features {
                    return None;
                }
            }
        }
        ens.build_lanes();
        Some(ens)
    }

    /// Derives per-feature quantization lanes from the union of node
    /// thresholds and fills in node cuts.
    fn build_lanes(&mut self) {
        let mut per_feat: Vec<Vec<f64>> = vec![Vec::new(); self.n_features];
        for (&f, &t) in self.feat.iter().zip(&self.thr) {
            if f == LEAF || f as usize >= per_feat.len() {
                continue;
            }
            per_feat[f as usize].push(t);
        }
        self.lanes = per_feat
            .into_iter()
            .map(|mut thrs| {
                if thrs.is_empty() || thrs.iter().any(|t| t.is_nan()) {
                    return Lane::Raw;
                }
                thrs.sort_by(f64::total_cmp);
                // Numeric dedup also collapses -0.0/0.0: routing by
                // either representative is numerically identical.
                thrs.dedup_by(|a, b| a == b);
                if thrs.len() > MAX_EDGES {
                    Lane::Raw
                } else {
                    Lane::Quantized(thrs)
                }
            })
            .collect();
        let nodes = self
            .feat
            .iter()
            .zip(&self.thr)
            .zip(self.cut.iter_mut())
            .zip(self.qflag.iter_mut());
        for (((&f, &t), cut), qflag) in nodes {
            if f == LEAF || f as usize >= self.lanes.len() {
                continue;
            }
            if let Lane::Quantized(edges) = &self.lanes[f as usize] {
                let c = edges.partition_point(|&e| e < t);
                debug_assert!(c < edges.len() && edges[c] == t);
                *cut = u8::try_from(c).unwrap_or(u8::MAX);
                *qflag = 1;
            }
        }
    }

    /// Limits worker threads for [`CompiledEnsemble::predict_proba`].
    /// Output is bit-identical at any width.
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        self.n_threads = n.max(1);
        self
    }

    /// Number of trees in the compiled ensemble.
    pub fn n_trees(&self) -> usize {
        self.tree_roots.len()
    }

    /// Total flattened nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.feat.len()
    }

    /// Feature-space width the source model was fitted with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Per-feature threshold lanes (mainly for inspection/tests).
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// Node range of tree `t`.
    fn tree_range(&self, t: usize) -> (usize, usize) {
        let start = self.tree_roots[t] as usize;
        let end = self
            .tree_roots
            .get(t + 1)
            .map_or(self.feat.len(), |&r| r as usize);
        (start, end)
    }

    /// Maps a raw value to its bin code for a quantized feature.
    #[inline]
    fn code(edges: &[f64], v: f64) -> u8 {
        if v.is_nan() {
            // Past every cut: NaN fails `v <= t` for all t, so it must
            // route right at every node.
            u8::try_from(edges.len()).unwrap_or(u8::MAX)
        } else {
            u8::try_from(edges.partition_point(|&e| e < v)).unwrap_or(u8::MAX)
        }
    }

    /// Scores one block of rows (row-major `rows`, `bl` rows), writing
    /// probabilities to `out`. Bit-identical to the interpreted path:
    /// same routing, same per-row accumulation order.
    // `!(v <= thr)` is the routing predicate itself: NaN values (and
    // NaN thresholds on the raw lane) must route right, exactly like
    // the interpreted walk. A positive rewrite would drop the NaN arm.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn score_block(&self, x: &Matrix, row0: usize, bl: usize, out: &mut Vec<f64>) {
        debug_assert!(bl <= DENSE_BLOCK);
        let nf = self.n_features;
        // Transpose the block to feature-major and bin quantized lanes
        // once; every tree level then sweeps contiguous L1-resident
        // columns.
        let mut cols = vec![0.0f64; nf * bl];
        let mut codes = vec![0u8; nf * bl];
        for k in 0..bl {
            let row = x.row(row0 + k);
            for f in 0..nf {
                cols[f * bl + k] = row[f];
            }
        }
        for f in 0..nf {
            if let Lane::Quantized(edges) = &self.lanes[f] {
                let col = &cols[f * bl..(f + 1) * bl];
                let out = &mut codes[f * bl..(f + 1) * bl];
                for k in 0..bl {
                    out[k] = Self::code(edges, col[k]);
                }
            }
        }
        let (init, shrink) = match self.finalize {
            Finalize::RfMean => (0.0, None),
            Finalize::GbdtLogistic {
                base_score,
                learning_rate,
            } => (base_score, Some(learning_rate)),
        };
        let mut acc = [0.0f64; DENSE_BLOCK];
        let mut idx = [0u32; DENSE_BLOCK];
        acc[..bl].fill(init);
        for t in 0..self.n_trees() {
            let (root, _) = self.tree_range(t);
            let root = u32::try_from(root).unwrap_or(u32::MAX);
            idx[..bl].fill(root);
            // One tree level at a time; rows already at a leaf stay put.
            for _ in 0..self.tree_depths[t] {
                for k in 0..bl {
                    let ix = idx[k] as usize;
                    let f = self.feat[ix];
                    if f == LEAF {
                        continue;
                    }
                    let f = f as usize;
                    let go_right = if self.qflag[ix] == 1 {
                        codes[f * bl + k] > self.cut[ix]
                    } else {
                        !(cols[f * bl + k] <= self.thr[ix])
                    };
                    idx[k] = self.left[ix] + u32::from(go_right);
                }
            }
            match shrink {
                Some(lr) => {
                    for k in 0..bl {
                        acc[k] += lr * self.value[idx[k] as usize];
                    }
                }
                None => {
                    for k in 0..bl {
                        acc[k] += self.value[idx[k] as usize];
                    }
                }
            }
        }
        self.push_finalized(&acc[..bl], out);
    }

    /// Applies the ensemble reduction to raw accumulator sums.
    fn push_finalized(&self, acc: &[f64], out: &mut Vec<f64>) {
        out.extend(acc.iter().map(|&s| self.finalize_one(s)));
    }

    /// Predicts positive-class probabilities for each row of `x`,
    /// bit-identical to the source model's interpreted
    /// [`Classifier::predict_proba`] at any worker count.
    ///
    /// # Errors
    ///
    /// [`MlError::FeatureMismatch`] if the width differs from training.
    pub fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        if x.n_cols() != self.n_features {
            return Err(MlError::FeatureMismatch {
                expected: self.n_features,
                actual: x.n_cols(),
            });
        }
        let n = x.n_rows();
        let n_blocks = n.div_ceil(DENSE_BLOCK);
        // Blocks are scored independently and reassembled in index
        // order, so the result is bit-identical at any MFPA_THREADS.
        let blocks = ordered_collect(n_blocks, Workers::new(self.n_threads), |b| {
            let row0 = b * DENSE_BLOCK;
            let bl = DENSE_BLOCK.min(n - row0);
            let mut out = Vec::with_capacity(bl);
            self.score_block(x, row0, bl, &mut out);
            out
        });
        Ok(blocks.into_iter().flatten().collect())
    }

    /// Creates an incremental per-device scorer. `monotone[f]` marks
    /// features that never decrease over one device's record stream
    /// (cumulative counters); this is a performance hint only — the
    /// scorer verifies it per record and falls back to full
    /// re-evaluation on any violation, so scores stay bit-identical
    /// even if the hint is wrong.
    ///
    /// # Errors
    ///
    /// [`MlError::InvalidParameter`] if `monotone` has the wrong length
    /// or the feature space exceeds 64 columns (mask width).
    pub fn sequential(&self, monotone: &[bool]) -> Result<SequentialScorer<'_>, MlError> {
        if monotone.len() != self.n_features {
            return Err(MlError::InvalidParameter(format!(
                "monotone mask has {} entries for {} features",
                monotone.len(),
                self.n_features
            )));
        }
        if self.n_features > 64 {
            return Err(MlError::InvalidParameter(format!(
                "sequential scorer supports at most 64 features, got {}",
                self.n_features
            )));
        }
        let mut mask = 0u64;
        for (f, &m) in monotone.iter().enumerate() {
            if m {
                mask |= 1u64 << f;
            }
        }
        let n_trees = self.n_trees();
        Ok(SequentialScorer {
            ens: self,
            monotone: mask,
            cur_leaf: vec![0.0; n_trees],
            gen: vec![0; n_trees],
            evaled_at: vec![0; n_trees],
            heaps_left: vec![Vec::new(); self.n_features],
            heaps_right: vec![Vec::new(); self.n_features],
            trig_left: vec![f64::INFINITY; self.n_features],
            trig_right: vec![f64::NEG_INFINITY; self.n_features],
            watch_cap: 64 + 2 * self.feat.iter().filter(|&&f| f != LEAF).count(),
            prev_row: vec![0.0; self.n_features],
            started: false,
            rec_counter: 0,
            block_fresh: true,
            last_prob: 0.0,
            leaves_start: vec![0.0; n_trees],
            patches: Vec::new(),
        })
    }

    /// Applies the ensemble reduction to one raw accumulator sum —
    /// the exact per-row operations of the interpreted path.
    #[inline]
    fn finalize_one(&self, s: f64) -> f64 {
        match self.finalize {
            Finalize::RfMean => {
                let k = self.n_trees() as f64;
                (s / k).clamp(0.0, 1.0)
            }
            Finalize::GbdtLogistic { .. } => sigmoid(s),
        }
    }
}

impl Classifier for CompiledEnsemble {
    fn fit(&mut self, _x: &Matrix, _y: &[bool]) -> Result<(), MlError> {
        Err(MlError::InvalidParameter(
            "compiled ensembles are immutable; refit the source model and recompile".to_owned(),
        ))
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        CompiledEnsemble::predict_proba(self, x)
    }

    fn name(&self) -> &'static str {
        "compiled"
    }

    fn compile(&self) -> Option<CompiledEnsemble> {
        Some(self.clone())
    }
}

/// A watched path comparison: when the feature's value crosses `thr`
/// (in the direction the owning heap tracks), the owning tree's cached
/// path is invalidated.
#[derive(Debug, Clone, Copy)]
struct Watch {
    thr: f64,
    tree: u32,
    gen: u32,
}

/// A within-block leaf change: tree `tree` produces `v` from row `r`
/// (block-relative) onward.
#[derive(Debug, Clone, Copy)]
struct Patch {
    tree: u32,
    r: u32,
    v: f64,
}

/// Incremental scorer over one device's chronologically ordered rows.
///
/// Caches each tree's current leaf and re-evaluates a tree only when a
/// comparison on its current root-to-leaf path actually flips. Every
/// active path comparison is registered in a per-feature heap keyed by
/// its threshold:
///
/// - Left-routing comparisons (`v <= t`) sit in a min-heap; they flip
///   exactly when the feature value first exceeds `t`, so only the
///   heap top needs checking per record.
/// - Right-routing comparisons (`v > t`) sit in a max-heap; they flip
///   exactly when the value drops back to `<= t`. Right-routing
///   comparisons on a monotone (non-decreasing) feature can never flip
///   and are not watched at all.
///
/// A feature whose bits change without crossing any watched threshold
/// costs two heap peeks — nothing is re-evaluated. If a
/// monotone-marked feature ever decreases, or any changed feature
/// moves to or from NaN, every tree is re-evaluated for that record —
/// correctness never depends on the hint. Scores are bit-identical to
/// [`CompiledEnsemble::predict_proba`] row by row.
#[derive(Debug)]
pub struct SequentialScorer<'a> {
    ens: &'a CompiledEnsemble,
    monotone: u64,
    /// Cached leaf value per tree.
    cur_leaf: Vec<f64>,
    /// Bumped on every re-evaluation; stale heap entries are skipped.
    gen: Vec<u32>,
    /// Global record counter at each tree's last re-evaluation
    /// (dedups multiple invalidations within one record).
    evaled_at: Vec<u64>,
    /// Per-feature min-heaps over left-routing path comparisons.
    heaps_left: Vec<Vec<Watch>>,
    /// Per-feature max-heaps over right-routing path comparisons
    /// (non-monotone features only).
    heaps_right: Vec<Vec<Watch>>,
    /// Flat per-feature trigger thresholds mirroring the heap tops
    /// (`+∞`/`-∞` when empty): the per-record hot path compares the
    /// incoming value against these two arrays and touches a heap only
    /// when a watched comparison has actually flipped. Values may be
    /// stale-conservative (a stale top triggers a harmless pop-and-skip)
    /// but never miss a live flip.
    trig_left: Vec<f64>,
    trig_right: Vec<f64>,
    /// Heap length that triggers a stale-entry compaction: at most
    /// one watch per internal node is ever live, so anything beyond
    /// that is dead weight from superseded re-evaluations.
    watch_cap: usize,
    prev_row: Vec<f64>,
    started: bool,
    rec_counter: u64,
    /// True until the first re-evaluation of the current block copies
    /// `cur_leaf` into `leaves_start`; blocks with no re-evaluations
    /// skip the copy (and the whole reduction).
    block_fresh: bool,
    /// Probability of the most recently scored row. Rows whose leaf
    /// vector is unchanged reuse it verbatim — same leaves, same
    /// ordered sum, same bits.
    last_prob: f64,
    leaves_start: Vec<f64>,
    patches: Vec<Patch>,
}

impl SequentialScorer<'_> {
    /// Starts a new device stream: drops all cached state.
    pub fn reset(&mut self) {
        self.started = false;
        self.clear_heaps();
    }

    fn clear_heaps(&mut self) {
        for h in &mut self.heaps_left {
            h.clear();
        }
        for h in &mut self.heaps_right {
            h.clear();
        }
        self.trig_left.fill(f64::INFINITY);
        self.trig_right.fill(f64::NEG_INFINITY);
    }

    /// Scores a device's rows (row-major, chronological), appending one
    /// probability per row to `out`. Call [`SequentialScorer::reset`]
    /// between devices.
    ///
    /// # Errors
    ///
    /// [`MlError::FeatureMismatch`] if `rows` is not a whole number of
    /// feature rows.
    pub fn score_rows(&mut self, rows: &[f64], out: &mut Vec<f64>) -> Result<(), MlError> {
        let nf = self.ens.n_features;
        if nf == 0 || !rows.len().is_multiple_of(nf) {
            return Err(MlError::FeatureMismatch {
                expected: nf,
                actual: rows.len() % nf.max(1),
            });
        }
        let n = rows.len() / nf;
        for b0 in (0..n).step_by(SEQ_BLOCK) {
            let bl = SEQ_BLOCK.min(n - b0);
            self.block_fresh = true;
            self.patches.clear();
            for r in 0..bl {
                let row = &rows[(b0 + r) * nf..(b0 + r + 1) * nf];
                self.advance(row, u32::try_from(r).unwrap_or(u32::MAX));
            }
            self.reduce_block(bl, out);
        }
        Ok(())
    }

    /// Processes one record: detects feature changes, invalidates and
    /// re-evaluates affected trees, records leaf patches.
    // The negated comparisons are deliberate: a NaN watch threshold
    // (raw lane) means the node's routing can never flip, and
    // `!(w.thr < v)` / `!(w.thr >= v)` keep such watches parked in
    // their heaps instead of popping them on the NaN arm.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn advance(&mut self, row: &[f64], r: u32) {
        self.rec_counter += 1;
        if !self.started {
            self.started = true;
            self.prime(row);
            self.prev_row.copy_from_slice(row);
            return;
        }
        // Branchless bitwise diff: the compiler vectorizes this into
        // packed compares, so the full-width scan costs a few ns
        // regardless of how many features changed.
        let mut changed = 0u64;
        for (f, (&a, &b)) in self.prev_row.iter().zip(row).enumerate() {
            changed |= u64::from(a.to_bits() != b.to_bits()) << f;
        }
        if changed == 0 {
            // Identical record: every cached leaf (and `prev_row`)
            // still holds, so the row costs only the scan above.
            return;
        }
        // One pass over the changed features classifies each as
        // hint-breaking (`bad`: NaN involved, or a monotone-marked
        // feature decreased — the no-watch-on-right argument dies) or
        // as actually crossing a watched threshold (`need`). Features
        // that changed without reaching their triggers cost two f64
        // compares and no heap traffic.
        let mut bad = false;
        let mut need = 0u64;
        let mut m = changed;
        while m != 0 {
            let f = m.trailing_zeros() as usize;
            m &= m - 1;
            let b = row[f];
            let a = self.prev_row[f];
            if b.is_nan() || a.is_nan() || (self.monotone >> f) & 1 != 0 && !(b >= a) {
                bad = true;
                break;
            }
            if b > self.trig_left[f] || b <= self.trig_right[f] {
                need |= 1u64 << f;
            }
        }
        if bad {
            self.dirty_all(row, r);
        } else {
            let mut m = need;
            while m != 0 {
                let f = m.trailing_zeros() as usize;
                m &= m - 1;
                let v = row[f];
                // Left-routing `v <= thr` flips once v exceeds thr.
                // Watches pushed by re-evaluations inside this loop
                // reflect the *current* row's routing, so they can
                // never flip for this record and the loop terminates.
                while let Some(w) = heap_peek(&self.heaps_left[f]) {
                    if !(w.thr < v) {
                        break;
                    }
                    let w = heap_pop_min(&mut self.heaps_left[f]);
                    // Stale if the tree re-evaluated since the push.
                    if self.gen[w.tree as usize] == w.gen {
                        self.reeval(w.tree as usize, row, r);
                    }
                }
                self.trig_left[f] = heap_peek(&self.heaps_left[f]).map_or(f64::INFINITY, |w| w.thr);
                // Right-routing `v > thr` flips once v drops back
                // to <= thr.
                while let Some(w) = heap_peek(&self.heaps_right[f]) {
                    if !(w.thr >= v) {
                        break;
                    }
                    let w = heap_pop_max(&mut self.heaps_right[f]);
                    if self.gen[w.tree as usize] == w.gen {
                        self.reeval(w.tree as usize, row, r);
                    }
                }
                self.trig_right[f] =
                    heap_peek(&self.heaps_right[f]).map_or(f64::NEG_INFINITY, |w| w.thr);
            }
        }
        self.prev_row.copy_from_slice(row);
    }

    /// Evaluates every tree on the first record of a stream, seeding
    /// the leaf cache and path watches. No patches are recorded: the
    /// row's probability is computed here directly — same tree order,
    /// same per-tree operations as the interpreted path — and parked in
    /// `last_prob` for [`SequentialScorer::reduce_block`] to emit.
    fn prime(&mut self, row: &[f64]) {
        self.clear_heaps();
        let ens = self.ens;
        let (mut s, shrink) = match ens.finalize {
            Finalize::RfMean => (0.0, None),
            Finalize::GbdtLogistic {
                base_score,
                learning_rate,
            } => (base_score, Some(learning_rate)),
        };
        // Watches are appended raw and heapified per touched feature
        // afterwards: O(n) total instead of a sift-up per push.
        let mut touched = 0u64;
        for t in 0..self.cur_leaf.len() {
            self.evaled_at[t] = self.rec_counter;
            self.gen[t] = self.gen[t].wrapping_add(1);
            let t32 = u32::try_from(t).unwrap_or(u32::MAX);
            let g = self.gen[t];
            let mut ix = ens.tree_roots[t] as usize;
            loop {
                let f = ens.feat[ix];
                if f == LEAF {
                    break;
                }
                let fi = f as usize;
                let thr = ens.thr[ix];
                let v = row[fi];
                let go_left = v <= thr;
                if go_left {
                    self.heaps_left[fi].push(Watch {
                        thr,
                        tree: t32,
                        gen: g,
                    });
                    touched |= 1u64 << fi;
                } else if self.monotone & (1u64 << fi) == 0 && !thr.is_nan() && !v.is_nan() {
                    self.heaps_right[fi].push(Watch {
                        thr,
                        tree: t32,
                        gen: g,
                    });
                    touched |= 1u64 << fi;
                }
                ix = ens.left[ix] as usize + usize::from(!go_left);
            }
            let v = ens.value[ix];
            self.cur_leaf[t] = v;
            s += match shrink {
                Some(lr) => lr * v,
                None => v,
            };
        }
        while touched != 0 {
            let f = touched.trailing_zeros() as usize;
            touched &= touched - 1;
            let hl = &mut self.heaps_left[f];
            for i in (0..hl.len() / 2).rev() {
                sift_down(hl, i, false);
            }
            self.trig_left[f] = heap_peek(hl).map_or(f64::INFINITY, |w| w.thr);
            let hr = &mut self.heaps_right[f];
            for i in (0..hr.len() / 2).rev() {
                sift_down(hr, i, true);
            }
            self.trig_right[f] = heap_peek(hr).map_or(f64::NEG_INFINITY, |w| w.thr);
        }
        self.last_prob = ens.finalize_one(s);
    }

    /// Re-evaluates every tree (hint violation mid-stream).
    fn dirty_all(&mut self, row: &[f64], r: u32) {
        // Every watch is about to be re-pushed by the re-evaluations;
        // dropping the old entries keeps the heaps from accumulating
        // stale ones across repeated fallbacks.
        self.clear_heaps();
        for t in 0..self.cur_leaf.len() {
            self.reeval(t, row, r);
        }
    }

    /// Re-traverses tree `t` on `row`, refreshing its cached leaf and
    /// path watches, and recording a block patch if the leaf value
    /// actually changed (identical bits mean an identical ordered sum,
    /// so an unchanged leaf needs no patch).
    fn reeval(&mut self, t: usize, row: &[f64], r: u32) {
        if self.evaled_at[t] == self.rec_counter {
            return;
        }
        self.evaled_at[t] = self.rec_counter;
        self.gen[t] = self.gen[t].wrapping_add(1);
        if self.block_fresh {
            // Lazily snapshot the leaves as of the block start; blocks
            // where nothing re-evaluates never pay the copy.
            self.leaves_start.copy_from_slice(&self.cur_leaf);
            self.block_fresh = false;
        }
        let v = self.traverse(t, row);
        if v.to_bits() != self.cur_leaf[t].to_bits() {
            self.cur_leaf[t] = v;
            self.patches.push(Patch {
                tree: u32::try_from(t).unwrap_or(u32::MAX),
                r,
                v,
            });
        }
    }

    /// Walks tree `t`'s root-to-leaf path on `row`, registering a watch
    /// (and maintaining the flat trigger mirrors) for every comparison
    /// that could flip, and returns the leaf value.
    fn traverse(&mut self, t: usize, row: &[f64]) -> f64 {
        let ens = self.ens;
        let t32 = u32::try_from(t).unwrap_or(u32::MAX);
        let g = self.gen[t];
        let mut ix = ens.tree_roots[t] as usize;
        loop {
            let f = ens.feat[ix];
            if f == LEAF {
                break;
            }
            let fi = f as usize;
            let thr = ens.thr[ix];
            let v = row[fi];
            let go_left = v <= thr;
            let w = Watch {
                thr,
                tree: t32,
                gen: g,
            };
            if go_left {
                // `v <= thr` flips exactly when v first exceeds thr.
                // (thr is never NaN here: NaN fails `v <= thr`.)
                let h = &mut self.heaps_left[fi];
                if h.len() >= self.watch_cap {
                    compact_heap(h, &self.gen, false);
                }
                heap_push_min(h, w);
                if thr < self.trig_left[fi] {
                    self.trig_left[fi] = thr;
                }
            } else if self.monotone & (1u64 << fi) == 0 && !thr.is_nan() && !v.is_nan() {
                // `v > thr` flips exactly when v drops back to <= thr.
                // Right-routing on a non-decreasing feature is
                // permanent; a NaN threshold compares false forever;
                // a NaN value is handled by the dirty-all fallback.
                let h = &mut self.heaps_right[fi];
                if h.len() >= self.watch_cap {
                    compact_heap(h, &self.gen, true);
                }
                heap_push_max(h, w);
                if thr > self.trig_right[fi] {
                    self.trig_right[fi] = thr;
                }
            }
            ix = ens.left[ix] as usize + usize::from(!go_left);
        }
        ens.value[ix]
    }

    /// Emits the block's probabilities. Rows on which no leaf changed
    /// reuse the previous row's probability verbatim (identical leaf
    /// vector ⇒ identical ordered sum ⇒ identical bits); only "change
    /// rows" — those carrying at least one patch — run the full
    /// tree-ordered accumulation, in dedicated SIMD lanes. Accumulation
    /// order and operations match the interpreted path exactly.
    fn reduce_block(&mut self, bl: usize, out: &mut Vec<f64>) {
        if self.patches.is_empty() {
            // Nothing changed anywhere in the block.
            out.resize(out.len() + bl, self.last_prob);
            return;
        }
        let ens = self.ens;
        let (init, shrink) = match ens.finalize {
            Finalize::RfMean => (0.0, None),
            Finalize::GbdtLogistic {
                base_score,
                learning_rate,
            } => (base_score, Some(learning_rate)),
        };
        // Lane k holds the k-th change row's accumulator. Unused lanes
        // compute garbage that is never read; fixed-width loops let the
        // compiler vectorize without a runtime bound.
        let mut rows_mask = 0u32;
        for p in &self.patches {
            rows_mask |= 1u32 << p.r;
        }
        let mut acc = [init; SEQ_BLOCK];
        let mut scratch = [0.0f64; SEQ_BLOCK];
        self.patches.sort_unstable_by_key(|p| (p.tree, p.r));
        let mut pi = 0usize;
        for t in 0..ens.n_trees() {
            let t32 = u32::try_from(t).unwrap_or(u32::MAX);
            if pi < self.patches.len() && self.patches[pi].tree == t32 {
                // Fill this tree's lane values: walk the change rows in
                // ascending order, folding in the tree's patches as
                // their rows are passed.
                let mut v = self.leaves_start[t];
                let mut m = rows_mask;
                let mut li = 0usize;
                while m != 0 {
                    let r = m.trailing_zeros();
                    m &= m - 1;
                    while pi < self.patches.len()
                        && self.patches[pi].tree == t32
                        && self.patches[pi].r <= r
                    {
                        v = self.patches[pi].v;
                        pi += 1;
                    }
                    scratch[li] = v;
                    li += 1;
                }
                match shrink {
                    Some(lr) => {
                        for k in 0..SEQ_BLOCK {
                            acc[k] += lr * scratch[k];
                        }
                    }
                    None => {
                        for k in 0..SEQ_BLOCK {
                            acc[k] += scratch[k];
                        }
                    }
                }
            } else {
                // `lr * leaf` computed once is the same product the
                // per-row loop would compute each time — identical bits.
                let term = match shrink {
                    Some(lr) => lr * self.leaves_start[t],
                    None => self.leaves_start[t],
                };
                for a in &mut acc {
                    *a += term;
                }
            }
        }
        let mut li = 0usize;
        let mut m = rows_mask;
        let mut next_change = m.trailing_zeros();
        for r in 0..u32::try_from(bl).unwrap_or(u32::MAX) {
            if r == next_change {
                self.last_prob = ens.finalize_one(acc[li]);
                li += 1;
                m &= m - 1;
                next_change = if m == 0 { u32::MAX } else { m.trailing_zeros() };
            }
            out.push(self.last_prob);
        }
    }
}

/// Min-heap (by threshold) primitives over a plain `Vec`. Thresholds
/// are never NaN (NaN thresholds route right unconditionally and are
/// never watched), so plain `<` is a total order here.
fn heap_peek(h: &[Watch]) -> Option<Watch> {
    h.first().copied()
}

fn heap_push_min(h: &mut Vec<Watch>, w: Watch) {
    h.push(w);
    let mut i = h.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if h[i].thr < h[parent].thr {
            h.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn heap_pop_min(h: &mut Vec<Watch>) -> Watch {
    let top = h[0];
    let last = h.len() - 1;
    h.swap(0, last);
    h.truncate(last);
    let mut i = 0usize;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut min = i;
        if l < h.len() && h[l].thr < h[min].thr {
            min = l;
        }
        if r < h.len() && h[r].thr < h[min].thr {
            min = r;
        }
        if min == i {
            break;
        }
        h.swap(i, min);
        i = min;
    }
    top
}

/// Drops stale watches (superseded by a later re-evaluation of their
/// tree) and restores the heap property. Amortized O(1) per push when
/// triggered by `watch_cap`, since live entries are bounded by the
/// internal node count.
fn compact_heap(h: &mut Vec<Watch>, gen: &[u32], max: bool) {
    h.retain(|w| gen.get(w.tree as usize).copied() == Some(w.gen));
    for i in (0..h.len() / 2).rev() {
        sift_down(h, i, max);
    }
}

fn sift_down(h: &mut [Watch], mut i: usize, max: bool) {
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let better = |a: f64, b: f64| if max { a > b } else { a < b };
        let mut best = i;
        if l < h.len() && better(h[l].thr, h[best].thr) {
            best = l;
        }
        if r < h.len() && better(h[r].thr, h[best].thr) {
            best = r;
        }
        if best == i {
            break;
        }
        h.swap(i, best);
        i = best;
    }
}

fn heap_push_max(h: &mut Vec<Watch>, w: Watch) {
    h.push(w);
    let mut i = h.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if h[i].thr > h[parent].thr {
            h.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn heap_pop_max(h: &mut Vec<Watch>) -> Watch {
    let top = h[0];
    let last = h.len() - 1;
    h.swap(0, last);
    h.truncate(last);
    let mut i = 0usize;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut max = i;
        if l < h.len() && h[l].thr > h[max].thr {
            max = l;
        }
        if r < h.len() && h[r].thr > h[max].thr {
            max = r;
        }
        if max == i {
            break;
        }
        h.swap(i, max);
        i = max;
    }
    top
}

// --- .mfpac artifact codec ---------------------------------------------

/// `.mfpac` magic: "MFPC" as a little-endian u32.
const MFPAC_MAGIC: u32 = 0x4350_464D;
/// Artifact format version.
const MFPAC_VERSION: u32 = 1;

/// [`mfpa_bytes::ByteReader`] adapter mapping truncation errors into
/// structured [`MlError::CorruptArtifact`] values — every overrun is
/// an error, never a panic.
struct Rd<'a>(ByteReader<'a>);

impl Rd<'_> {
    fn u8(&mut self) -> Result<u8, MlError> {
        self.0.u8().map_err(corrupt)
    }

    fn u32(&mut self) -> Result<u32, MlError> {
        self.0.u32().map_err(corrupt)
    }

    fn f64(&mut self) -> Result<f64, MlError> {
        self.0.f64().map_err(corrupt)
    }

    fn counter(&mut self) -> Result<usize, MlError> {
        self.0.counter().map_err(corrupt)
    }
}

fn corrupt(msg: impl Into<String>) -> MlError {
    MlError::CorruptArtifact(msg.into())
}

impl CompiledEnsemble {
    /// Serializes to the little-endian `.mfpac` format: header, node
    /// arrays, FNV-1a-64 footer over everything before it. Quantization
    /// lanes are not stored — they derive deterministically from the
    /// node thresholds and are rebuilt on load.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n_nodes = self.feat.len();
        let mut w = ByteWriter::with_capacity(64 + n_nodes * 25 + self.tree_roots.len() * 8);
        w.u32(MFPAC_MAGIC);
        w.u32(MFPAC_VERSION);
        w.counter(self.n_features);
        w.counter(self.tree_roots.len());
        w.counter(n_nodes);
        match self.finalize {
            // RfMean carries no parameters; two zero floats keep both
            // arms the same shape so the field layout is tag-independent.
            Finalize::RfMean => {
                w.u8(0);
                w.f64(0.0);
                w.f64(0.0);
            }
            Finalize::GbdtLogistic {
                base_score,
                learning_rate,
            } => {
                w.u8(1);
                w.f64(base_score);
                w.f64(learning_rate);
            }
        }
        for &r in &self.tree_roots {
            w.u32(r);
        }
        for &d in &self.tree_depths {
            w.u32(d);
        }
        for &f in &self.feat {
            w.u32(f);
        }
        for &t in &self.thr {
            w.f64(t);
        }
        for &l in &self.left {
            w.u32(l);
        }
        for &v in &self.value {
            w.f64(v);
        }
        w.into_sealed()
    }

    /// Decodes a `.mfpac` artifact. Any corruption — truncation, bit
    /// flips, inconsistent structure — is refused with a structured
    /// [`MlError::CorruptArtifact`]; this never panics on hostile
    /// input.
    ///
    /// # Errors
    ///
    /// [`MlError::CorruptArtifact`] as described above.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MlError> {
        let body = unseal(bytes).map_err(corrupt)?;
        let mut rd = Rd(ByteReader::new(body));
        if rd.u32()? != MFPAC_MAGIC {
            return Err(corrupt("bad magic (not an .mfpac artifact)"));
        }
        let version = rd.u32()?;
        if version != MFPAC_VERSION {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        let n_features = rd.counter()?;
        let n_trees = rd.counter()?;
        let n_nodes = rd.counter()?;
        if n_features == 0 || n_features > 1 << 20 {
            return Err(corrupt(format!("implausible feature count {n_features}")));
        }
        if n_trees == 0 || n_nodes < n_trees || n_nodes >= u32::MAX as usize {
            return Err(corrupt(format!(
                "implausible shape: {n_trees} trees / {n_nodes} nodes"
            )));
        }
        // The header fully determines the artifact size; require an
        // exact match so trailing garbage is refused too.
        let expected = 8 + 24 + 17 + n_trees * 8 + n_nodes * 24;
        if body.len() != expected {
            return Err(corrupt(format!(
                "length {} does not match header-implied {}",
                bytes.len(),
                expected + 8
            )));
        }
        let finalize = match rd.u8()? {
            0 => {
                rd.f64()?;
                rd.f64()?;
                Finalize::RfMean
            }
            1 => {
                let base_score = rd.f64()?;
                let learning_rate = rd.f64()?;
                if !base_score.is_finite() || !learning_rate.is_finite() {
                    return Err(corrupt("non-finite GBDT finalize parameters"));
                }
                Finalize::GbdtLogistic {
                    base_score,
                    learning_rate,
                }
            }
            tag => return Err(corrupt(format!("unknown finalize tag {tag}"))),
        };
        let mut tree_roots = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            tree_roots.push(rd.u32()?);
        }
        let mut tree_depths = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            tree_depths.push(rd.u32()?);
        }
        let mut feat = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            feat.push(rd.u32()?);
        }
        let mut thr = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            thr.push(rd.f64()?);
        }
        let mut left = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            left.push(rd.u32()?);
        }
        let mut value = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            value.push(rd.f64()?);
        }
        // Structural validation: roots ascending from 0, children
        // adjacent and strictly forward within their tree's range (so
        // traversal can never cycle or escape), features in range, and
        // stored depths equal to the recomputed reachable depth (the
        // level-synchronous kernel iterates exactly that many levels).
        if tree_roots.first() != Some(&0) {
            return Err(corrupt("first tree root must be node 0"));
        }
        for t in 0..n_trees {
            let s = tree_roots[t] as usize;
            let e = if t + 1 < n_trees {
                tree_roots[t + 1] as usize
            } else {
                n_nodes
            };
            if s >= e || e > n_nodes {
                return Err(corrupt(format!("tree {t} has an empty or inverted range")));
            }
            let mut depth = vec![0u32; e - s];
            let mut reached = vec![false; e - s];
            // mfpa-lint: allow(d12, "slot 0 exists: the s >= e refusal above guarantees e - s >= 1")
            reached[0] = true;
            let mut max_depth = 0u32;
            for ix in s..e {
                if !reached[ix - s] {
                    continue;
                }
                let f = feat[ix];
                if f == LEAF {
                    max_depth = max_depth.max(depth[ix - s]);
                    continue;
                }
                if f as usize >= n_features {
                    return Err(corrupt(format!("node {ix} splits on feature {f}")));
                }
                let l = left[ix] as usize;
                if l <= ix || l + 1 >= e || l < s {
                    return Err(corrupt(format!("node {ix} has out-of-range children")));
                }
                let d = depth[ix - s]
                    .checked_add(1)
                    .ok_or_else(|| corrupt("tree deeper than u32"))?;
                depth[l - s] = d;
                depth[l + 1 - s] = d;
                reached[l - s] = true;
                reached[l + 1 - s] = true;
            }
            if max_depth != tree_depths[t] {
                return Err(corrupt(format!(
                    "tree {t} stored depth {} but reachable depth is {max_depth}",
                    tree_depths[t]
                )));
            }
        }
        let mut ens = CompiledEnsemble {
            n_features,
            cut: vec![0; n_nodes],
            qflag: vec![0; n_nodes],
            feat,
            thr,
            left,
            value,
            tree_roots,
            tree_depths,
            lanes: Vec::new(),
            finalize,
            n_threads: 1,
        };
        ens.build_lanes();
        Ok(ens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quantization invariant the whole byte-compare path rests on:
    /// with `edges` the sorted deduped threshold set,
    /// `code(v) <= cut(t) ⟺ v <= t` for every threshold `t` and any
    /// value — below, between, on, above, and NaN.
    #[test]
    fn code_cut_equivalence() {
        let edges = [-3.5, -0.0, 1.0, 1.5, 2.0 + f64::EPSILON, 1e300];
        let probes = [
            f64::NEG_INFINITY,
            -4.0,
            -3.5,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.0,
            1.25,
            1.5,
            2.0,
            2.0 + f64::EPSILON,
            1e300,
            f64::INFINITY,
            f64::NAN,
        ];
        for &t in &edges {
            let cut = edges.partition_point(|&e| e < t);
            for &v in &probes {
                let quantized = CompiledEnsemble::code(&edges, v) <= cut as u8;
                let raw = v <= t;
                assert_eq!(quantized, raw, "v = {v}, t = {t}");
            }
        }
    }

    /// NaN values must route right at *every* node: their code sits
    /// past the largest cut.
    #[test]
    fn nan_codes_past_every_cut() {
        let edges = [0.0, 1.0, 2.0];
        assert_eq!(CompiledEnsemble::code(&edges, f64::NAN), 3);
        let full: Vec<f64> = (0..MAX_EDGES).map(|i| i as f64).collect();
        assert_eq!(CompiledEnsemble::code(&full, f64::NAN), u8::MAX);
    }

    /// The flattened layout invariants the kernels index by: children
    /// adjacent (`right == left + 1` implicitly), strictly forward, and
    /// within the owning tree's node range.
    #[test]
    fn flatten_keeps_children_adjacent_and_in_range() {
        let rows: Vec<Vec<f64>> = (0..32)
            .map(|i| vec![f64::from(i % 5), f64::from(i % 3), f64::from(i % 7)])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let mut gb = crate::Gbdt::new(6, 0.3, 3).with_seed(9);
        gb.fit(&x, &y).unwrap();
        let ens = gb.compile().unwrap();
        for t in 0..ens.n_trees() {
            let (s, e) = ens.tree_range(t);
            assert!(s < e);
            for ix in s..e {
                if ens.feat[ix] == LEAF {
                    continue;
                }
                let l = ens.left[ix] as usize;
                assert!(l > ix && l + 1 < e, "node {ix}: left {l} range {s}..{e}");
            }
        }
    }
}
