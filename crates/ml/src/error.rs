//! Error type for model training and prediction.

use std::error::Error;
use std::fmt;

use mfpa_dataset::DatasetError;

/// Errors returned by model training and prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Training data was empty.
    EmptyTrainingSet,
    /// Labels and features disagree in length.
    LabelMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Training data contained only one class.
    SingleClass,
    /// Prediction input width differs from the fitted width.
    FeatureMismatch {
        /// Width the model was fitted with.
        expected: usize,
        /// Width of the prediction input.
        actual: usize,
    },
    /// The model has not been fitted yet.
    NotFitted,
    /// A hyperparameter was outside its valid range.
    InvalidParameter(String),
    /// An underlying dataset operation failed.
    Dataset(String),
    /// A serialized model artifact failed validation (bad magic,
    /// truncation, checksum mismatch or inconsistent structure).
    CorruptArtifact(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => f.write_str("training set is empty"),
            MlError::LabelMismatch { rows, labels } => {
                write!(f, "label count {labels} does not match row count {rows}")
            }
            MlError::SingleClass => f.write_str(
                "training set contains a single class; need both positives and negatives",
            ),
            MlError::FeatureMismatch { expected, actual } => {
                write!(
                    f,
                    "model fitted with {expected} features, input has {actual}"
                )
            }
            MlError::NotFitted => f.write_str("model has not been fitted"),
            MlError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            MlError::Dataset(msg) => write!(f, "dataset error: {msg}"),
            MlError::CorruptArtifact(msg) => write!(f, "corrupt model artifact: {msg}"),
        }
    }
}

impl Error for MlError {}

impl From<DatasetError> for MlError {
    fn from(e: DatasetError) -> Self {
        MlError::Dataset(e.to_string())
    }
}

/// Validates the common preconditions shared by every `fit`
/// implementation and returns the number of features.
pub(crate) fn check_fit_inputs(x: &mfpa_dataset::Matrix, y: &[bool]) -> Result<usize, MlError> {
    if x.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    if x.n_rows() != y.len() {
        return Err(MlError::LabelMismatch {
            rows: x.n_rows(),
            labels: y.len(),
        });
    }
    let pos = y.iter().filter(|&&l| l).count();
    if pos == 0 || pos == y.len() {
        return Err(MlError::SingleClass);
    }
    Ok(x.n_cols())
}

/// Validates prediction input width against the fitted width.
pub(crate) fn check_predict_inputs(
    x: &mfpa_dataset::Matrix,
    fitted_cols: Option<usize>,
) -> Result<usize, MlError> {
    let expected = fitted_cols.ok_or(MlError::NotFitted)?;
    if x.n_cols() != expected {
        return Err(MlError::FeatureMismatch {
            expected,
            actual: x.n_cols(),
        });
    }
    Ok(expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_dataset::Matrix;

    #[test]
    fn display_variants() {
        assert!(MlError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(MlError::SingleClass.to_string().contains("single class"));
        assert!(MlError::NotFitted.to_string().contains("not been fitted"));
        let e = MlError::FeatureMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn from_dataset_error() {
        let d = DatasetError::Empty;
        let m: MlError = d.into();
        assert!(matches!(m, MlError::Dataset(_)));
    }

    #[test]
    fn fit_input_checks() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(check_fit_inputs(&x, &[true, false]), Ok(1));
        assert!(matches!(
            check_fit_inputs(&x, &[true]),
            Err(MlError::LabelMismatch { .. })
        ));
        assert_eq!(
            check_fit_inputs(&x, &[true, true]),
            Err(MlError::SingleClass)
        );
        let empty = Matrix::with_cols(1);
        assert_eq!(
            check_fit_inputs(&empty, &[]),
            Err(MlError::EmptyTrainingSet)
        );
    }

    #[test]
    fn predict_input_checks() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(check_predict_inputs(&x, Some(2)), Ok(2));
        assert_eq!(check_predict_inputs(&x, None), Err(MlError::NotFitted));
        assert!(matches!(
            check_predict_inputs(&x, Some(3)),
            Err(MlError::FeatureMismatch { .. })
        ));
    }
}
