//! The [`Classifier`] trait implemented by every model in this crate.

use mfpa_dataset::Matrix;

use crate::compile::CompiledEnsemble;
use crate::error::MlError;

/// A binary classifier over dense feature rows.
///
/// All MFPA models implement this trait, which is what makes the paper's
/// "portable in algorithms" claim testable: the pipeline trains and
/// evaluates any `Box<dyn Classifier>` identically.
///
/// Implementations must be deterministic given their configured seed —
/// including at any worker count, for the models that parallelise
/// internally ([`crate::RandomForest`], [`crate::Gbdt`]). The `Send +
/// Sync` bound is what lets a trained model be shared by the parallel
/// batch-scoring paths.
pub trait Classifier: Send + Sync {
    /// Fits the model on feature rows `x` with binary labels `y`
    /// (`true` = positive / faulty).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`], [`MlError::LabelMismatch`] or
    /// [`MlError::SingleClass`] for degenerate inputs, and
    /// model-specific [`MlError::InvalidParameter`] values.
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> Result<(), MlError>;

    /// Predicts the probability of the positive class for each row of `x`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before [`Classifier::fit`] and
    /// [`MlError::FeatureMismatch`] if the width differs from training.
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError>;

    /// Predicts hard labels by thresholding [`Classifier::predict_proba`]
    /// at `0.5`.
    ///
    /// # Errors
    ///
    /// Same as [`Classifier::predict_proba`].
    fn predict(&self, x: &Matrix) -> Result<Vec<bool>, MlError> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| p >= 0.5)
            .collect())
    }

    /// A short human-readable model name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Compiles the fitted model into a flat [`CompiledEnsemble`] for
    /// serving-grade batch scoring, or `None` for model families without
    /// a compiled form (everything except the tree ensembles) and for
    /// unfitted models.
    ///
    /// A compiled ensemble's probabilities are bit-identical to this
    /// model's [`Classifier::predict_proba`].
    fn compile(&self) -> Option<CompiledEnsemble> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A constant-probability stub used to exercise the default
    /// `predict` implementation.
    struct Stub(f64);

    impl Classifier for Stub {
        fn fit(&mut self, _x: &Matrix, _y: &[bool]) -> Result<(), MlError> {
            Ok(())
        }

        fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
            Ok(vec![self.0; x.n_rows()])
        }

        fn name(&self) -> &'static str {
            "stub"
        }
    }

    #[test]
    fn default_predict_thresholds_at_half() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0]]).unwrap();
        assert_eq!(Stub(0.6).predict(&x).unwrap(), vec![true, true]);
        assert_eq!(Stub(0.4).predict(&x).unwrap(), vec![false, false]);
        assert_eq!(Stub(0.5).predict(&x).unwrap(), vec![true, true]);
    }

    #[test]
    fn trait_is_object_safe() {
        let b: Box<dyn Classifier> = Box::new(Stub(0.1));
        assert_eq!(b.name(), "stub");
    }
}
