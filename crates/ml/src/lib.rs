//! From-scratch machine-learning library for the MFPA reproduction.
//!
//! The paper validates its multidimensional features across five model
//! families (§III-C(4)): Bayes, SVM, Random Forest, GBDT and CNN_LSTM.
//! Because the Rust ML ecosystem is thin compared to Python's, this crate
//! implements all five from first principles, plus the evaluation metrics
//! (confusion matrix, ACC/TPR/FPR/PDR, ROC/AUC), the vendor
//! SMART-threshold baseline, grid search with pluggable cross-validation
//! folds, and the sequential forward selection algorithm (Whitney 1971)
//! used for the paper's feature selection (Fig 17).
//!
//! All models implement the [`Classifier`] trait over
//! [`mfpa_dataset::Matrix`] feature rows; the CNN_LSTM additionally
//! interprets each row as a flattened `(steps × features)` sequence.
//!
//! # Example
//!
//! ```
//! use mfpa_dataset::Matrix;
//! use mfpa_ml::{Classifier, RandomForest};
//!
//! // Tiny toy problem: label = (x0 > 0.5).
//! let x = Matrix::from_rows(&[
//!     vec![0.1], vec![0.2], vec![0.3], vec![0.8], vec![0.9], vec![0.7],
//! ]).unwrap();
//! let y = [false, false, false, true, true, true];
//! let mut rf = RandomForest::new(10, 3).with_seed(42);
//! rf.fit(&x, &y)?;
//! let p = rf.predict_proba(&Matrix::from_rows(&[vec![0.95]]).unwrap())?;
//! assert!(p[0] > 0.5);
//! # Ok::<(), mfpa_ml::MlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod binning;
pub mod compile;
mod error;
mod forest;
mod gbdt;
pub mod grid;
mod logistic;
pub mod metrics;
mod model;
mod naive_bayes;
pub mod nn;
pub mod select;
mod svm;
mod threshold;
pub mod tree;

pub use binning::{BinnedMatrix, DEFAULT_MAX_BINS};
pub use compile::{CompiledEnsemble, SequentialScorer};
pub use error::MlError;
pub use forest::RandomForest;
pub use gbdt::Gbdt;
pub use logistic::LogisticRegression;
pub use model::Classifier;
pub use naive_bayes::GaussianNb;
pub use nn::CnnLstm;
pub use svm::LinearSvm;
pub use threshold::{ThresholdDetector, ThresholdRule};
pub use tree::{DecisionTree, MaxFeatures, TreeParams};
