//! Sequential forward selection (Whitney 1971), the paper's feature
//! selection algorithm (§III-C(5), Fig 17).
//!
//! Starting from the empty subset, the feature whose addition maximises a
//! caller-supplied score is added greedily; selection stops when no
//! addition improves the score by at least the configured margin (or the
//! feature budget is exhausted). The full trace is returned so Fig 17's
//! improvement curve can be plotted.

/// One step of the selection trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SfsStep {
    /// The feature added at this step.
    pub added: usize,
    /// The score of the subset after adding it.
    pub score: f64,
    /// The subset after this step (in selection order).
    pub subset: Vec<usize>,
}

/// Result of a sequential forward selection run.
#[derive(Debug, Clone, PartialEq)]
pub struct SfsResult {
    /// The selected subset in selection order.
    pub selected: Vec<usize>,
    /// The final score.
    pub best_score: f64,
    /// Every accepted step, in order.
    pub trace: Vec<SfsStep>,
}

/// Runs sequential forward selection over `n_features` features.
///
/// `eval` scores a candidate subset (higher is better, e.g. validation
/// AUC); it is called `O(n_features²)` times. `min_improvement` is the
/// score gain an addition must provide to be accepted; `max_features`
/// bounds the subset size (use `n_features` for no bound).
///
/// Returns an empty selection if `n_features == 0` or nothing clears the
/// improvement bar on the first step.
///
/// # Example
///
/// ```
/// use mfpa_ml::select::sequential_forward_selection;
///
/// // Feature 2 alone scores 0.9; adding feature 0 reaches 1.0; feature 1
/// // is useless.
/// let score = |s: &[usize]| -> f64 {
///     let mut v: f64 = 0.0;
///     if s.contains(&2) { v += 0.9; }
///     if s.contains(&0) { v += 0.1; }
///     v
/// };
/// let r = sequential_forward_selection(3, score, 3, 1e-6);
/// assert_eq!(r.selected, vec![2, 0]);
/// assert!((r.best_score - 1.0).abs() < 1e-12);
/// ```
pub fn sequential_forward_selection<F>(
    n_features: usize,
    mut eval: F,
    max_features: usize,
    min_improvement: f64,
) -> SfsResult
where
    F: FnMut(&[usize]) -> f64,
{
    let mut selected: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = (0..n_features).collect();
    let mut best_score = f64::NEG_INFINITY;
    let mut trace = Vec::new();

    while !remaining.is_empty() && selected.len() < max_features {
        let mut round_best: Option<(usize, f64)> = None;
        for (pos, &candidate) in remaining.iter().enumerate() {
            let mut subset = selected.clone();
            subset.push(candidate);
            let score = eval(&subset);
            if round_best.is_none_or(|(_, s)| score > s) {
                round_best = Some((pos, score));
            }
        }
        let Some((pos, score)) = round_best else {
            break;
        };
        let improvement = if best_score.is_finite() {
            score - best_score
        } else {
            score
        };
        if improvement < min_improvement {
            break;
        }
        let feature = remaining.remove(pos);
        selected.push(feature);
        best_score = score;
        trace.push(SfsStep {
            added: feature,
            score,
            subset: selected.clone(),
        });
    }

    if best_score.is_infinite() {
        best_score = 0.0;
    }
    SfsResult {
        selected,
        best_score,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_best_single_feature_first() {
        // Additive scores: f0 = 0.3, f1 = 0.5, f2 = 0.1.
        let weights = [0.3, 0.5, 0.1];
        let r = sequential_forward_selection(3, |s| s.iter().map(|&i| weights[i]).sum(), 3, 1e-9);
        assert_eq!(r.selected, vec![1, 0, 2]);
        assert!((r.best_score - 0.9).abs() < 1e-12);
        assert_eq!(r.trace.len(), 3);
        // Scores along the trace increase.
        for w in r.trace.windows(2) {
            assert!(w[1].score > w[0].score);
        }
    }

    #[test]
    fn stops_when_no_improvement() {
        // Only feature 0 matters; the rest add exactly nothing.
        let r =
            sequential_forward_selection(4, |s| if s.contains(&0) { 1.0 } else { 0.0 }, 4, 1e-6);
        assert_eq!(r.selected, vec![0]);
        assert_eq!(r.trace.len(), 1);
    }

    #[test]
    fn respects_max_features() {
        let r = sequential_forward_selection(10, |s| s.len() as f64, 3, 1e-9);
        assert_eq!(r.selected.len(), 3);
    }

    #[test]
    fn redundant_features_skipped() {
        // f0 and f1 are perfectly redundant; only one is selected.
        let score = |s: &[usize]| -> f64 {
            let has_signal = s.contains(&0) || s.contains(&1);
            let extra = if s.contains(&2) { 0.2 } else { 0.0 };
            if has_signal {
                0.8 + extra
            } else {
                extra
            }
        };
        let r = sequential_forward_selection(3, score, 3, 1e-6);
        assert_eq!(r.selected.len(), 2);
        assert!(r.selected.contains(&2));
        assert!((r.best_score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_features_is_empty() {
        let r = sequential_forward_selection(0, |_| 1.0, 3, 0.0);
        assert!(r.selected.is_empty());
        assert_eq!(r.best_score, 0.0);
    }

    #[test]
    fn negative_first_scores_below_margin_select_nothing() {
        let r = sequential_forward_selection(2, |_| -1.0, 2, 0.0);
        assert!(r.selected.is_empty());
    }
}
