//! Random Forest — the paper's best-performing algorithm (98.18% TPR /
//! 0.56% FPR with SFWB features, §IV(3)).
//!
//! Bagged CART trees with per-split feature subsampling. Trees are built
//! and batch predictions scored in parallel on the shared deterministic
//! layer ([`mfpa_par`]): per-tree seeds derive from the global tree
//! index, so the result is independent of scheduling and worker count.

use mfpa_dataset::Matrix;
use mfpa_par::{ordered_collect, ordered_map, Workers};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::binning::{BinnedMatrix, DEFAULT_MAX_BINS};
use crate::error::{check_fit_inputs, check_predict_inputs, MlError};
use crate::model::Classifier;
use crate::tree::{DecisionTree, MaxFeatures, TreeParams};

/// Random-Forest binary classifier.
///
/// # Example
///
/// ```
/// use mfpa_dataset::Matrix;
/// use mfpa_ml::{Classifier, RandomForest};
///
/// let x = Matrix::from_rows(&[
///     vec![0.0, 1.0], vec![0.1, 0.8], vec![0.2, 0.9],
///     vec![1.0, 0.1], vec![0.9, 0.0], vec![1.1, 0.2],
/// ]).unwrap();
/// let y = [false, false, false, true, true, true];
/// let mut rf = RandomForest::new(25, 6).with_seed(7);
/// rf.fit(&x, &y)?;
/// assert_eq!(rf.predict(&x)?, y);
/// # Ok::<(), mfpa_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    n_trees: usize,
    tree_params: TreeParams,
    seed: u64,
    n_threads: usize,
    trees: Vec<DecisionTree>,
    n_features: Option<usize>,
}

impl RandomForest {
    /// Creates a forest of `n_trees` trees with the given `max_depth` and
    /// Random-Forest defaults elsewhere (`sqrt` feature subsampling,
    /// bootstrap row sampling).
    pub fn new(n_trees: usize, max_depth: usize) -> Self {
        RandomForest {
            n_trees: n_trees.max(1),
            tree_params: TreeParams {
                max_depth,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: MaxFeatures::Sqrt,
                max_bins: DEFAULT_MAX_BINS,
            },
            seed: 0,
            n_threads: Workers::auto().get(),
            trees: Vec::new(),
            n_features: None,
        }
    }

    /// Sets the RNG seed (bootstrap + feature subsampling).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the per-split feature-candidate policy.
    pub fn with_max_features(mut self, mf: MaxFeatures) -> Self {
        self.tree_params.max_features = mf;
        self
    }

    /// Overrides the minimum samples per leaf.
    pub fn with_min_samples_leaf(mut self, n: usize) -> Self {
        self.tree_params.min_samples_leaf = n.max(1);
        self
    }

    /// Overrides the per-feature bin budget for histogram split search;
    /// `0` selects the exact (re-sorting) training path.
    pub fn with_max_bins(mut self, n: usize) -> Self {
        self.tree_params.max_bins = n;
        self
    }

    /// Limits the number of worker threads used during fitting.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.n_threads = n.max(1);
        self
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Mean feature importances across trees (normalised to sum to 1);
    /// empty before fitting.
    pub fn feature_importances(&self) -> Vec<f64> {
        let Some(n_features) = self.n_features else {
            return Vec::new();
        };
        let mut imp = vec![0.0; n_features];
        for tree in &self.trees {
            for (a, b) in imp.iter_mut().zip(tree.feature_importances()) {
                *a += b;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    fn fit_one_tree(
        x: &Matrix,
        targets: &[f64],
        params: TreeParams,
        seed: u64,
    ) -> Result<DecisionTree, MlError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = x.n_rows();
        let indices: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
        let bx = x.select_rows(&indices);
        let bt: Vec<f64> = indices.iter().map(|&i| targets[i]).collect();
        let mut tree =
            DecisionTree::new(params).with_seed(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        tree.fit_regression(&bx, &bt, None)?;
        Ok(tree)
    }

    /// Binned analogue of [`RandomForest::fit_one_tree`]: same bootstrap
    /// draw and tree seed, but the bootstrap is a row-index view into the
    /// shared [`BinnedMatrix`] — no per-tree matrix materialisation.
    fn fit_one_tree_binned(
        binned: &BinnedMatrix,
        targets: &[f64],
        params: TreeParams,
        seed: u64,
    ) -> Result<DecisionTree, MlError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = binned.n_rows();
        let indices: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
        let mut tree =
            DecisionTree::new(params).with_seed(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        tree.fit_binned(binned, &indices, targets, None)?;
        Ok(tree)
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> Result<(), MlError> {
        check_fit_inputs(x, y)?;
        let targets: Vec<f64> = y.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        let params = self.tree_params;
        let base_seed = self.seed;
        // Every tree's seed derives from its global index, which the
        // shared layer computes from the actual chunk offsets — uneven
        // chunk layouts cannot mis-seed trees.
        let tree_seeds: Vec<u64> = (0..self.n_trees)
            .map(|ix| base_seed.wrapping_add(ix as u64))
            .collect();
        let workers = Workers::new(self.n_threads);
        let results = if params.max_bins > 0 {
            // Quantize once; every tree's bootstrap is an index view.
            let binned = BinnedMatrix::build(x, params.max_bins, workers);
            ordered_map(&tree_seeds, workers, |_, &seed| {
                Self::fit_one_tree_binned(&binned, &targets, params, seed)
            })
        } else {
            ordered_map(&tree_seeds, workers, |_, &seed| {
                Self::fit_one_tree(x, &targets, params, seed)
            })
        };
        self.trees = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        self.n_features = Some(x.n_cols());
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        check_predict_inputs(x, self.n_features)?;
        let k = self.trees.len() as f64;
        // Per-row vote sums accumulate in tree order, so the result is
        // bit-identical to the serial trees-outer loop at any width.
        Ok(ordered_collect(
            x.n_rows(),
            Workers::new(self.n_threads),
            |i| {
                let row = x.row(i);
                let mut p = 0.0;
                for tree in &self.trees {
                    p += tree.predict_row(row);
                }
                (p / k).clamp(0.0, 1.0)
            },
        ))
    }

    fn name(&self) -> &'static str {
        "RF"
    }

    fn compile(&self) -> Option<crate::compile::CompiledEnsemble> {
        let n_features = self.n_features?;
        crate::compile::CompiledEnsemble::from_forest(&self.trees, n_features, self.n_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;
    use rand::RngExt;

    /// Noisy two-cluster problem.
    fn clusters(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let pos = i % 2 == 0;
            let c = if pos { 1.0 } else { 0.0 };
            rows.push(vec![
                c + rng.random_range(-0.3..0.3),
                -c + rng.random_range(-0.3..0.3),
                rng.random_range(-1.0..1.0), // noise feature
            ]);
            y.push(pos);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn separates_clusters_with_high_auc() {
        let (x, y) = clusters(200, 1);
        let mut rf = RandomForest::new(30, 8).with_seed(2);
        rf.fit(&x, &y).unwrap();
        let p = rf.predict_proba(&x).unwrap();
        assert!(auc(&y, &p) > 0.99);
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        let (x, y) = clusters(120, 3);
        let mut reference = RandomForest::new(16, 6).with_seed(5).with_threads(1);
        reference.fit(&x, &y).unwrap();
        let expected = reference.predict_proba(&x).unwrap();
        // Fit and predict widths vary independently; 7 exercises uneven
        // tail chunks (16 trees / 7 workers).
        for n in [2, 7, 8] {
            let mut rf = RandomForest::new(16, 6).with_seed(5).with_threads(n);
            rf.fit(&x, &y).unwrap();
            let probs = rf.predict_proba(&x).unwrap();
            let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&probs), bits(&expected), "n_threads = {n}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        // Pure-noise labels: the forests memorise different bootstraps,
        // so their probability surfaces must differ.
        let mut rng = StdRng::seed_from_u64(0);
        let rows: Vec<Vec<f64>> = (0..80).map(|_| vec![rng.random_range(0.0..1.0)]).collect();
        let y: Vec<bool> = (0..80).map(|_| rng.random_range(0..2) == 1).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut a = RandomForest::new(8, 6).with_seed(1);
        let mut b = RandomForest::new(8, 6).with_seed(2);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_ne!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn importances_favour_signal_features() {
        let (x, y) = clusters(300, 7);
        let mut rf = RandomForest::new(40, 8).with_seed(11);
        rf.fit(&x, &y).unwrap();
        let imp = rf.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The noise feature (index 2) should matter least.
        assert!(imp[2] < imp[0] && imp[2] < imp[1], "importances = {imp:?}");
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = clusters(60, 9);
        let mut rf = RandomForest::new(5, 4).with_seed(1);
        rf.fit(&x, &y).unwrap();
        assert!(rf
            .predict_proba(&x)
            .unwrap()
            .iter()
            .all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn unfitted_errors() {
        let rf = RandomForest::new(3, 3);
        let x = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert_eq!(rf.predict_proba(&x), Err(MlError::NotFitted));
        assert!(rf.feature_importances().is_empty());
    }

    #[test]
    fn single_class_rejected() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let mut rf = RandomForest::new(3, 3);
        assert_eq!(rf.fit(&x, &[false, false]), Err(MlError::SingleClass));
    }
}
