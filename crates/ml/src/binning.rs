//! Feature quantization for histogram-based tree training.
//!
//! Exact CART split search re-sorts every candidate feature at every
//! node — `O(F · n log n)` per node, repeated per tree and per boosting
//! round. The LightGBM-style alternative implemented here quantizes each
//! feature **once per fit** into at most 256 quantile bins; split search
//! then accumulates per-bin `(Σtarget, count)` histograms in `O(n · F)`
//! and scans at most 256 bin boundaries per feature instead of `n`.
//!
//! A [`BinnedMatrix`] stores the bin codes **column-major** (`u8` per
//! cell, an 8× memory reduction over the `f64` source and a
//! cache-friendly layout for the per-feature accumulation loop) plus the
//! per-feature ascending edge arrays. The edge between bins `b` and
//! `b + 1` doubles as the split threshold recorded in the tree: a value
//! belongs to bin `≤ b` **iff** it is `≤ edges[b]`, so training-time
//! routing by bin code and prediction-time routing by raw value agree
//! exactly.
//!
//! Determinism: each column is quantized independently from a sorted
//! copy of its values, with work distributed over [`mfpa_par`]'s ordered
//! layer — codes and edges are bit-identical at any worker count.
//!
//! Quantile bins are safe on discontinuous consumer telemetry (paper
//! §III: gap-filled counters concentrate probability mass on few
//! distinct values): when a feature has at most `max_bins` distinct
//! values — the common case for event counters after gap handling — the
//! edge set equals the exact path's full candidate set (every midpoint
//! between consecutive distinct values), so nothing is lost; only
//! genuinely continuous features are coarsened, and there the quantile
//! cuts put equal sample mass in each bin.

use mfpa_dataset::Matrix;
use mfpa_par::{ordered_collect, Workers};
use serde::{Deserialize, Serialize};

/// Default bin budget per feature — the full range of a `u8` code.
pub const DEFAULT_MAX_BINS: usize = 256;

/// A feature matrix quantized to per-feature bin codes.
///
/// # Example
///
/// ```
/// use mfpa_dataset::Matrix;
/// use mfpa_ml::binning::BinnedMatrix;
/// use mfpa_par::Workers;
///
/// let x = Matrix::from_rows(&[vec![1.0], vec![5.0], vec![3.0]]).unwrap();
/// let b = BinnedMatrix::build(&x, 256, Workers::new(1));
/// assert_eq!(b.n_bins(0), 3);
/// // Codes are value ranks; edges are the midpoints between them.
/// assert_eq!(b.column(0), &[0, 2, 1]);
/// assert_eq!(b.edges(0), &[2.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedMatrix {
    /// Column-major bin codes: `codes[col * n_rows + row]`.
    codes: Vec<u8>,
    /// Per-feature ascending split thresholds; `edges[f].len() + 1` bins.
    edges: Vec<Vec<f64>>,
    n_rows: usize,
    n_cols: usize,
}

impl BinnedMatrix {
    /// Quantizes `x` into at most `max_bins` bins per feature
    /// (clamped to `[2, 256]` — codes are `u8`).
    ///
    /// Columns are processed on the deterministic parallel layer; the
    /// result is bit-identical at any worker count.
    pub fn build(x: &Matrix, max_bins: usize, workers: Workers) -> BinnedMatrix {
        let max_bins = max_bins.clamp(2, DEFAULT_MAX_BINS);
        let n_rows = x.n_rows();
        let n_cols = x.n_cols();
        let columns = ordered_collect(n_cols, workers, |f| {
            let values = x.column(f);
            let edges = quantile_edges(&values, max_bins);
            let codes: Vec<u8> = values.iter().map(|&v| bin_code(v, &edges)).collect();
            (edges, codes)
        });
        let mut codes = Vec::with_capacity(n_rows * n_cols);
        let mut edges = Vec::with_capacity(n_cols);
        for (e, c) in columns {
            edges.push(e);
            codes.extend_from_slice(&c);
        }
        BinnedMatrix {
            codes,
            edges,
            n_rows,
            n_cols,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of bins feature `f` uses (≥ 1; 1 for a constant feature).
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of bounds.
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }

    /// The ascending split thresholds of feature `f`: a row belongs to
    /// bin `≤ b` iff its raw value is `≤ edges(f)[b]`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of bounds.
    pub fn edges(&self, f: usize) -> &[f64] {
        &self.edges[f]
    }

    /// The bin codes of feature `f`, one per row.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of bounds.
    pub fn column(&self, f: usize) -> &[u8] {
        assert!(f < self.n_cols, "feature index out of bounds");
        &self.codes[f * self.n_rows..(f + 1) * self.n_rows]
    }
}

/// The bin code of `v` against ascending `edges`: the first bin whose
/// upper threshold contains it. NaN maps to the last bin, matching the
/// exact path where NaN compares greater than every threshold
/// (`v <= t` is false) and therefore always routes right.
fn bin_code(v: f64, edges: &[f64]) -> u8 {
    if v.is_nan() {
        return edges.len() as u8;
    }
    edges.partition_point(|&e| v > e) as u8
}

/// Chooses the split thresholds for one feature.
///
/// With at most `max_bins` distinct (non-NaN) values the edges are the
/// midpoints between every consecutive distinct pair — the exact path's
/// complete candidate set, which is what makes exact↔binned parity
/// testable. Otherwise bins are built greedily over the sorted sample
/// distribution, closing a bin once it holds `⌈n / max_bins⌉` samples:
/// every bin gets roughly equal sample mass, and a heavy-mass value (a
/// gap-filled counter stuck at one reading) gets a bin of its own
/// instead of swallowing its neighbours.
fn quantile_edges(values: &[f64], max_bins: usize) -> Vec<f64> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    sorted.sort_by(f64::total_cmp);
    let mut distinct = sorted.clone();
    distinct.dedup();
    if distinct.len() <= 1 {
        return Vec::new();
    }
    if distinct.len() <= max_bins {
        return distinct.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
    }
    let n = sorted.len();
    let target = n.div_ceil(max_bins);
    let mut edges = Vec::with_capacity(max_bins - 1);
    let mut in_bin = 0usize;
    let mut i = 0usize;
    for w in distinct.windows(2) {
        // Count of w[0] in the sorted sample (duplicates preserved).
        let start = i;
        while i < n && sorted[i] == w[0] {
            i += 1;
        }
        in_bin += i - start;
        if in_bin >= target && edges.len() < max_bins - 1 {
            edges.push(0.5 * (w[0] + w[1]));
            in_bin = 0;
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: &[f64]) -> Matrix {
        Matrix::from_rows(&values.iter().map(|&v| vec![v]).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn few_distinct_values_get_exact_candidate_edges() {
        let x = col(&[3.0, 1.0, 1.0, 2.0, 3.0]);
        let b = BinnedMatrix::build(&x, 256, Workers::new(1));
        assert_eq!(b.edges(0), &[1.5, 2.5]);
        assert_eq!(b.column(0), &[2, 0, 0, 1, 2]);
        assert_eq!(b.n_bins(0), 3);
    }

    #[test]
    fn constant_feature_is_single_bin() {
        let x = col(&[7.0; 4]);
        let b = BinnedMatrix::build(&x, 256, Workers::new(1));
        assert_eq!(b.n_bins(0), 1);
        assert!(b.edges(0).is_empty());
        assert_eq!(b.column(0), &[0, 0, 0, 0]);
    }

    #[test]
    fn many_distinct_values_respect_bin_budget() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let b = BinnedMatrix::build(&col(&values), 16, Workers::new(1));
        assert!(b.n_bins(0) <= 16, "n_bins = {}", b.n_bins(0));
        assert!(b.n_bins(0) >= 8);
        // Codes are monotone in value.
        let codes = b.column(0);
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
        // Roughly equal mass per bin (quantile cuts).
        let mut counts = vec![0usize; b.n_bins(0)];
        for &c in codes {
            counts[c as usize] += 1;
        }
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(hi / lo.max(&1) <= 2, "uneven bins: {counts:?}");
    }

    #[test]
    fn heavy_mass_value_gets_its_own_bin() {
        // 90% zeros (a gap-filled counter), a tail of distinct values.
        let mut values = vec![0.0; 900];
        values.extend((1..=100).map(|i| i as f64));
        let b = BinnedMatrix::build(&col(&values), 8, Workers::new(1));
        let codes = b.column(0);
        // All zeros share bin 0 and nothing else joins them.
        assert!(codes[..900].iter().all(|&c| c == 0));
        assert!(codes[900..].iter().all(|&c| c > 0));
    }

    #[test]
    fn routing_consistency_code_vs_threshold() {
        // For every value and every edge: code <= b  iff  value <= edge.
        let values = [-3.5, -1.0, 0.0, 0.25, 1.0, 2.0, 2.0, 9.0, 100.0];
        let b = BinnedMatrix::build(&col(&values), 4, Workers::new(1));
        let codes = b.column(0);
        for (i, &v) in values.iter().enumerate() {
            for (e_ix, &edge) in b.edges(0).iter().enumerate() {
                assert_eq!(
                    (codes[i] as usize) <= e_ix,
                    v <= edge,
                    "value {v} edge {edge}"
                );
            }
        }
    }

    #[test]
    fn nan_maps_to_last_bin() {
        let x = col(&[1.0, f64::NAN, 2.0, 3.0]);
        let b = BinnedMatrix::build(&x, 256, Workers::new(1));
        // The last bin's code is strictly greater than every boundary
        // index, so a NaN row never routes left — matching the exact
        // path, where `NaN <= threshold` is false.
        assert_eq!(b.column(0)[1] as usize, b.n_bins(0) - 1);
        assert_eq!(b.n_bins(0) - 1, b.edges(0).len());
    }

    #[test]
    fn bit_identical_at_any_worker_count() {
        let rows: Vec<Vec<f64>> = (0..257)
            .map(|i| {
                (0..5)
                    .map(|f| ((i * 31 + f * 7) % 97) as f64 * 0.25 - 3.0)
                    .collect()
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let reference = BinnedMatrix::build(&x, 16, Workers::new(1));
        for n in [2, 3, 7, 16] {
            let b = BinnedMatrix::build(&x, 16, Workers::new(n));
            assert_eq!(b, reference, "n_threads = {n}");
        }
    }

    #[test]
    fn max_bins_clamped_to_u8_range() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let b = BinnedMatrix::build(&col(&values), 100_000, Workers::new(1));
        assert!(b.n_bins(0) <= 256);
        let tiny = BinnedMatrix::build(&col(&values), 0, Workers::new(1));
        assert!(tiny.n_bins(0) >= 2);
    }
}
