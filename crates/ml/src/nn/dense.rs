//! Fully-connected layer.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use super::param::Param;

/// A dense (fully-connected) layer `y = W x + b`.
///
/// Weights are stored row-major: `w[o * in_dim + i]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Weight matrix.
    pub w: Param,
    /// Bias vector.
    pub b: Param,
}

impl Dense {
    /// Creates a Xavier-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Dense {
            in_dim,
            out_dim,
            w: Param::xavier(in_dim * out_dim, in_dim, out_dim, rng),
            b: Param::zeros(out_dim),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "dense input width mismatch");
        (0..self.out_dim)
            .map(|o| {
                let row = &self.w.value[o * self.in_dim..(o + 1) * self.in_dim];
                row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.b.value[o]
            })
            .collect()
    }

    /// Backward pass for one sample: accumulates `dW`, `db` and returns
    /// `dx`. `x` must be the input used in the matching forward call.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        assert_eq!(dy.len(), self.out_dim, "dense grad width mismatch");
        let mut dx = vec![0.0; self.in_dim];
        for (o, &g) in dy.iter().enumerate() {
            self.b.grad[o] += g;
            let row_w = &self.w.value[o * self.in_dim..(o + 1) * self.in_dim];
            let row_g = &mut self.w.grad[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                row_g[i] += g * x[i];
                dx[i] += g * row_w[i];
            }
        }
        dx
    }

    /// All parameters (for the optimiser loop).
    pub fn params_mut(&mut self) -> [&mut Param; 2] {
        [&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Finite-difference check of the analytic gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = [0.5, -1.0, 2.0];
        // Loss = sum(y); dL/dy = 1.
        let dy = [1.0, 1.0];
        let dx = layer.backward(&x, &dy);

        let eps = 1e-6;
        // Check dx numerically.
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fp: f64 = layer.forward(&xp).iter().sum();
            let fm: f64 = layer.forward(&xm).iter().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((dx[i] - num).abs() < 1e-6, "dx[{i}]: {} vs {num}", dx[i]);
        }
        // Check dW numerically.
        for k in 0..layer.w.len() {
            let orig = layer.w.value[k];
            layer.w.value[k] = orig + eps;
            let fp: f64 = layer.forward(&x).iter().sum();
            layer.w.value[k] = orig - eps;
            let fm: f64 = layer.forward(&x).iter().sum();
            layer.w.value[k] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!((layer.w.grad[k] - num).abs() < 1e-6);
        }
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(2, 3, &mut rng);
        layer.w.value.iter_mut().for_each(|w| *w = 0.0);
        layer.b.value = vec![1.0, 2.0, 3.0];
        assert_eq!(layer.forward(&[9.0, 9.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        Dense::new(2, 1, &mut rng).forward(&[1.0]);
    }
}
