//! Flat parameter tensors with gradient and Adam moment buffers.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A flat parameter vector with its gradient accumulator and Adam
/// first/second-moment state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Parameter values.
    pub value: Vec<f64>,
    /// Gradient accumulator (summed over a minibatch).
    pub grad: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Param {
    /// Creates a zero-initialised parameter of length `n`.
    pub fn zeros(n: usize) -> Self {
        Param {
            value: vec![0.0; n],
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Creates a parameter with Xavier-uniform initialisation for the
    /// given fan-in/fan-out.
    pub fn xavier(n: usize, fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
        let value = (0..n).map(|_| rng.random_range(-bound..bound)).collect();
        Param {
            value,
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Sum of squared gradients (for global-norm clipping).
    pub fn grad_sq_norm(&self) -> f64 {
        self.grad.iter().map(|g| g * g).sum()
    }

    /// Scales the gradient in place (batch averaging / clipping).
    pub fn scale_grad(&mut self, factor: f64) {
        self.grad.iter_mut().for_each(|g| *g *= factor);
    }

    /// One Adam update with bias correction; `t` is the 1-based global
    /// step count.
    pub fn adam_step(&mut self, lr: f64, beta1: f64, beta2: f64, eps: f64, t: u64) {
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        for i in 0..self.value.len() {
            let g = self.grad[i];
            self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
            self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            self.value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = Param::xavier(1000, 8, 8, &mut rng);
        let bound = (6.0 / 16.0f64).sqrt();
        assert!(p.value.iter().all(|v| v.abs() <= bound));
        assert_eq!(p.len(), 1000);
        assert!(!p.is_empty());
    }

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimise f(x) = (x - 3)² by following its gradient.
        let mut p = Param::zeros(1);
        for t in 1..=2000 {
            p.zero_grad();
            p.grad[0] = 2.0 * (p.value[0] - 3.0);
            p.adam_step(0.05, 0.9, 0.999, 1e-8, t);
        }
        assert!((p.value[0] - 3.0).abs() < 1e-2, "x = {}", p.value[0]);
    }

    #[test]
    fn grad_helpers() {
        let mut p = Param::zeros(2);
        p.grad = vec![3.0, 4.0];
        assert_eq!(p.grad_sq_norm(), 25.0);
        p.scale_grad(0.5);
        assert_eq!(p.grad, vec![1.5, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad, vec![0.0, 0.0]);
    }
}
