//! Minimal neural-network stack for the CNN_LSTM model (§III-C(4)).
//!
//! The paper's fifth algorithm is a CNN_LSTM: a 1-D convolution over the
//! time axis of a per-drive telemetry window, an LSTM over the convolved
//! sequence, and a dense sigmoid head. This module implements exactly
//! that, from scratch: [`param::Param`] flat parameter tensors with Adam
//! state, [`dense::Dense`], [`conv1d::Conv1d`] and [`lstm::Lstm`] layers
//! with hand-derived backward passes, and the [`CnnLstm`] classifier that
//! wires them together and implements [`crate::Classifier`] over rows
//! that are flattened `(steps × features)` sequences.

mod cnn_lstm;
pub mod conv1d;
pub mod dense;
pub mod lstm;
pub mod param;

pub use cnn_lstm::CnnLstm;
