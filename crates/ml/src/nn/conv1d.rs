//! 1-D convolution over the time axis of a telemetry sequence.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use super::param::Param;

/// A 1-D convolution with *valid* padding.
///
/// Input layout: `T` timesteps of `in_ch` channels, flattened row-major
/// (`x[t * in_ch + c]`). Output: `T - kernel + 1` timesteps of `out_ch`
/// channels. Weights: `w[o][c][k]` flattened as
/// `w[(o * in_ch + c) * kernel + k]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    /// Filter weights.
    pub w: Param,
    /// Per-output-channel bias.
    pub b: Param,
}

impl Conv1d {
    /// Creates a Xavier-initialised convolution.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(in_ch: usize, out_ch: usize, kernel: usize, rng: &mut StdRng) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        let fan_in = in_ch * kernel;
        Conv1d {
            in_ch,
            out_ch,
            kernel,
            w: Param::xavier(out_ch * in_ch * kernel, fan_in, out_ch, rng),
            b: Param::zeros(out_ch),
        }
    }

    /// Number of output timesteps for `t_in` input timesteps.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is shorter than the kernel.
    pub fn out_steps(&self, t_in: usize) -> usize {
        assert!(t_in >= self.kernel, "sequence shorter than kernel");
        t_in - self.kernel + 1
    }

    /// Output channel count.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// Forward pass on one sequence of `t_in` steps.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != t_in * in_ch`.
    pub fn forward(&self, x: &[f64], t_in: usize) -> Vec<f64> {
        assert_eq!(x.len(), t_in * self.in_ch, "conv input size mismatch");
        let t_out = self.out_steps(t_in);
        let mut y = vec![0.0; t_out * self.out_ch];
        for t in 0..t_out {
            for o in 0..self.out_ch {
                let mut acc = self.b.value[o];
                for k in 0..self.kernel {
                    let x_base = (t + k) * self.in_ch;
                    let w_base = (o * self.in_ch) * self.kernel + k;
                    for c in 0..self.in_ch {
                        acc += x[x_base + c] * self.w.value[w_base + c * self.kernel];
                    }
                }
                y[t * self.out_ch + o] = acc;
            }
        }
        y
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dx`. `x` must be
    /// the input of the matching forward call and `dy` the gradient of the
    /// output.
    pub fn backward(&mut self, x: &[f64], t_in: usize, dy: &[f64]) -> Vec<f64> {
        let t_out = self.out_steps(t_in);
        assert_eq!(dy.len(), t_out * self.out_ch, "conv grad size mismatch");
        let mut dx = vec![0.0; t_in * self.in_ch];
        for t in 0..t_out {
            for o in 0..self.out_ch {
                let g = dy[t * self.out_ch + o];
                if g == 0.0 {
                    continue;
                }
                self.b.grad[o] += g;
                for k in 0..self.kernel {
                    let x_base = (t + k) * self.in_ch;
                    let w_base = (o * self.in_ch) * self.kernel + k;
                    for c in 0..self.in_ch {
                        self.w.grad[w_base + c * self.kernel] += g * x[x_base + c];
                        dx[x_base + c] += g * self.w.value[w_base + c * self.kernel];
                    }
                }
            }
        }
        dx
    }

    /// All parameters (for the optimiser loop).
    pub fn params_mut(&mut self) -> [&mut Param; 2] {
        [&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn output_length() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv1d::new(2, 3, 3, &mut rng);
        assert_eq!(conv.out_steps(5), 3);
        let y = conv.forward(&[0.0; 10], 5);
        assert_eq!(y.len(), 9);
    }

    #[test]
    fn identity_kernel_reproduces_input_channel() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv1d::new(1, 1, 1, &mut rng);
        conv.w.value = vec![1.0];
        conv.b.value = vec![0.0];
        let x = [1.0, 2.0, 3.0];
        assert_eq!(conv.forward(&x, 3), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_convolution() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv1d::new(1, 1, 2, &mut rng);
        conv.w.value = vec![1.0, -1.0]; // difference filter
        conv.b.value = vec![0.5];
        let x = [1.0, 3.0, 6.0];
        // y[t] = x[t] - x[t+1] + 0.5
        assert_eq!(conv.forward(&x, 3), vec![-1.5, -2.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv1d::new(2, 2, 2, &mut rng);
        let t_in = 4;
        let x: Vec<f64> = (0..t_in * 2).map(|i| (i as f64 * 0.37).sin()).collect();
        let t_out = conv.out_steps(t_in);
        let dy = vec![1.0; t_out * 2]; // loss = sum of outputs
        let dx = conv.backward(&x, t_in, &dy);

        let eps = 1e-6;
        let loss = |c: &Conv1d, xv: &[f64]| -> f64 { c.forward(xv, t_in).iter().sum() };
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&conv, &xp) - loss(&conv, &xm)) / (2.0 * eps);
            assert!((dx[i] - num).abs() < 1e-6, "dx[{i}]");
        }
        for k in 0..conv.w.len() {
            let orig = conv.w.value[k];
            conv.w.value[k] = orig + eps;
            let fp = loss(&conv, &x);
            conv.w.value[k] = orig - eps;
            let fm = loss(&conv, &x);
            conv.w.value[k] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!((conv.w.grad[k] - num).abs() < 1e-6, "dw[{k}]");
        }
    }

    #[test]
    #[should_panic(expected = "shorter than kernel")]
    fn too_short_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv1d::new(1, 1, 3, &mut rng);
        conv.forward(&[1.0, 2.0], 2);
    }
}
