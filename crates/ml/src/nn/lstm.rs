//! LSTM layer with full backpropagation through time.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use super::param::Param;

/// Gate order inside the stacked weight matrix: input, forget, cell
/// candidate, output.
const GATES: usize = 4;

/// A single-layer LSTM processing one sequence and exposing the last
/// hidden state.
///
/// Weights are stacked: `W` has shape `(4H, I + H)` (input and recurrent
/// weights concatenated), `b` has shape `(4H,)`. The forget-gate bias is
/// initialised to 1, the standard trick for gradient flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    in_dim: usize,
    hidden: usize,
    /// Stacked gate weights.
    pub w: Param,
    /// Stacked gate biases.
    pub b: Param,
}

/// Cached activations of one forward pass (needed by BPTT).
#[derive(Debug, Clone, Default)]
pub struct LstmCache {
    steps: usize,
    /// Concatenated `[x_t, h_{t-1}]` per step.
    z: Vec<Vec<f64>>,
    /// Gate activations `(i, f, g, o)` per step, each of length `H`.
    gates: Vec<[Vec<f64>; 4]>,
    /// Cell states per step.
    c: Vec<Vec<f64>>,
    /// Hidden states per step.
    h: Vec<Vec<f64>>,
}

impl LstmCache {
    /// The hidden state after the final step (zeros for empty sequences).
    pub fn last_hidden(&self, hidden: usize) -> Vec<f64> {
        self.h.last().cloned().unwrap_or_else(|| vec![0.0; hidden])
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z.clamp(-60.0, 60.0)).exp())
}

impl Lstm {
    /// Creates a Xavier-initialised LSTM.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let z_dim = in_dim + hidden;
        let mut w = Param::xavier(GATES * hidden * z_dim, z_dim, hidden, rng);
        let mut b = Param::zeros(GATES * hidden);
        // Forget-gate bias (gate index 1) starts at 1.0.
        for j in 0..hidden {
            b.value[hidden + j] = 1.0;
        }
        // Scale recurrent block mildly to avoid early saturation.
        for v in w.value.iter_mut() {
            *v *= 0.8;
        }
        Lstm {
            in_dim,
            hidden,
            w,
            b,
        }
    }

    /// Input width per step.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the sequence (`steps` rows of `in_dim`, flattened row-major)
    /// and returns the cache; the prediction head consumes
    /// [`LstmCache::last_hidden`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != steps * in_dim`.
    pub fn forward(&self, x: &[f64], steps: usize) -> LstmCache {
        assert_eq!(x.len(), steps * self.in_dim, "lstm input size mismatch");
        let hdim = self.hidden;
        let z_dim = self.in_dim + hdim;
        let mut cache = LstmCache {
            steps,
            ..LstmCache::default()
        };
        let mut h_prev = vec![0.0; hdim];
        let mut c_prev = vec![0.0; hdim];
        for t in 0..steps {
            let mut z = Vec::with_capacity(z_dim);
            z.extend_from_slice(&x[t * self.in_dim..(t + 1) * self.in_dim]);
            z.extend_from_slice(&h_prev);

            let mut pre = vec![0.0; GATES * hdim];
            for (row, p) in pre.iter_mut().enumerate() {
                let w_row = &self.w.value[row * z_dim..(row + 1) * z_dim];
                *p = w_row.iter().zip(&z).map(|(a, b)| a * b).sum::<f64>() + self.b.value[row];
            }
            let i: Vec<f64> = (0..hdim).map(|j| sigmoid(pre[j])).collect();
            let f: Vec<f64> = (0..hdim).map(|j| sigmoid(pre[hdim + j])).collect();
            let g: Vec<f64> = (0..hdim).map(|j| pre[2 * hdim + j].tanh()).collect();
            let o: Vec<f64> = (0..hdim).map(|j| sigmoid(pre[3 * hdim + j])).collect();

            let c: Vec<f64> = (0..hdim).map(|j| f[j] * c_prev[j] + i[j] * g[j]).collect();
            let h: Vec<f64> = (0..hdim).map(|j| o[j] * c[j].tanh()).collect();

            cache.z.push(z);
            cache.gates.push([i, f, g, o]);
            cache.c.push(c.clone());
            cache.h.push(h.clone());
            h_prev = h;
            c_prev = c;
        }
        cache
    }

    /// BPTT backward pass given the gradient w.r.t. the *last* hidden
    /// state. Accumulates `dW`, `db` and returns the gradient w.r.t. the
    /// flattened input sequence.
    pub fn backward(&mut self, cache: &LstmCache, dh_last: &[f64]) -> Vec<f64> {
        assert_eq!(dh_last.len(), self.hidden, "lstm grad width mismatch");
        let hdim = self.hidden;
        let z_dim = self.in_dim + hdim;
        let steps = cache.steps;
        let mut dx = vec![0.0; steps * self.in_dim];
        if steps == 0 {
            return dx;
        }
        let mut dh = dh_last.to_vec();
        let mut dc = vec![0.0; hdim];
        for t in (0..steps).rev() {
            let [i, f, g, o] = &cache.gates[t];
            let c = &cache.c[t];
            let c_prev: Vec<f64> = if t == 0 {
                vec![0.0; hdim]
            } else {
                cache.c[t - 1].clone()
            };
            let z = &cache.z[t];

            // Gate pre-activation gradients, stacked (i, f, g, o).
            let mut d_pre = vec![0.0; GATES * hdim];
            for j in 0..hdim {
                let tanh_c = c[j].tanh();
                let d_o = dh[j] * tanh_c;
                let dc_j = dc[j] + dh[j] * o[j] * (1.0 - tanh_c * tanh_c);
                let d_i = dc_j * g[j];
                let d_g = dc_j * i[j];
                let d_f = dc_j * c_prev[j];
                dc[j] = dc_j * f[j]; // flows to c_{t-1}
                d_pre[j] = d_i * i[j] * (1.0 - i[j]);
                d_pre[hdim + j] = d_f * f[j] * (1.0 - f[j]);
                d_pre[2 * hdim + j] = d_g * (1.0 - g[j] * g[j]);
                d_pre[3 * hdim + j] = d_o * o[j] * (1.0 - o[j]);
            }

            // Parameter gradients and dz = Wᵀ d_pre.
            let mut dz = vec![0.0; z_dim];
            for (row, &dp) in d_pre.iter().enumerate() {
                if dp == 0.0 {
                    continue;
                }
                self.b.grad[row] += dp;
                let w_row = &self.w.value[row * z_dim..(row + 1) * z_dim];
                let g_row = &mut self.w.grad[row * z_dim..(row + 1) * z_dim];
                for k in 0..z_dim {
                    g_row[k] += dp * z[k];
                    dz[k] += dp * w_row[k];
                }
            }
            dx[t * self.in_dim..(t + 1) * self.in_dim].copy_from_slice(&dz[..self.in_dim]);
            dh = dz[self.in_dim..].to_vec();
        }
        dx
    }

    /// All parameters (for the optimiser loop).
    pub fn params_mut(&mut self) -> [&mut Param; 2] {
        [&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let lstm = Lstm::new(3, 4, &mut rng);
        let x = vec![0.1; 15]; // 5 steps × 3 features
        let cache = lstm.forward(&x, 5);
        assert_eq!(cache.h.len(), 5);
        assert_eq!(cache.last_hidden(4).len(), 4);
        assert!(cache.last_hidden(4).iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn empty_sequence_yields_zero_hidden() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(2, 3, &mut rng);
        let cache = lstm.forward(&[], 0);
        assert_eq!(cache.last_hidden(3), vec![0.0; 3]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let steps = 4;
        let x: Vec<f64> = (0..steps * 2)
            .map(|i| ((i as f64) * 0.7).sin() * 0.5)
            .collect();

        // Loss = sum of last hidden state.
        let loss =
            |l: &Lstm, xv: &[f64]| -> f64 { l.forward(xv, steps).last_hidden(3).iter().sum() };
        let cache = lstm.forward(&x, steps);
        let dx = lstm.backward(&cache, &[1.0, 1.0, 1.0]);

        let eps = 1e-6;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&lstm, &xp) - loss(&lstm, &xm)) / (2.0 * eps);
            assert!((dx[i] - num).abs() < 1e-5, "dx[{i}]: {} vs {num}", dx[i]);
        }
        for k in (0..lstm.w.len()).step_by(7) {
            let orig = lstm.w.value[k];
            lstm.w.value[k] = orig + eps;
            let fp = loss(&lstm, &x);
            lstm.w.value[k] = orig - eps;
            let fm = loss(&lstm, &x);
            lstm.w.value[k] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (lstm.w.grad[k] - num).abs() < 1e-5,
                "dw[{k}]: {} vs {num}",
                lstm.w.grad[k]
            );
        }
        for k in 0..lstm.b.len() {
            let orig = lstm.b.value[k];
            lstm.b.value[k] = orig + eps;
            let fp = loss(&lstm, &x);
            lstm.b.value[k] = orig - eps;
            let fm = loss(&lstm, &x);
            lstm.b.value[k] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!((lstm.b.grad[k] - num).abs() < 1e-5, "db[{k}]");
        }
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new(2, 4, &mut rng);
        for j in 0..4 {
            assert_eq!(lstm.b.value[4 + j], 1.0);
        }
        assert_eq!(lstm.b.value[0], 0.0);
    }

    #[test]
    fn hidden_state_depends_on_input_order() {
        let mut rng = StdRng::seed_from_u64(4);
        let lstm = Lstm::new(1, 2, &mut rng);
        let a = lstm.forward(&[1.0, 0.0, -1.0], 3).last_hidden(2);
        let b = lstm.forward(&[-1.0, 0.0, 1.0], 3).last_hidden(2);
        assert_ne!(a, b);
    }
}
