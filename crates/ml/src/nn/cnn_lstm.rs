//! The CNN_LSTM classifier (§III-C(4), Fig 10/14).
//!
//! Architecture: 1-D convolution over the time axis of a per-drive
//! telemetry window (ReLU), an LSTM over the convolved sequence, and a
//! dense sigmoid head on the last hidden state. Trained with Adam on
//! binary cross-entropy, minibatched, with global-norm gradient clipping.

use mfpa_dataset::{Matrix, StandardScaler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::{check_fit_inputs, check_predict_inputs, MlError};
use crate::model::Classifier;

use super::conv1d::Conv1d;
use super::dense::Dense;
use super::lstm::Lstm;

/// CNN_LSTM binary classifier over flattened `(steps × features)` rows.
///
/// Each input row is interpreted as a chronological window of `steps`
/// telemetry snapshots with `features` values each (oldest first). The
/// paper feeds such windows per drive; tree models consume the same rows
/// flattened, which keeps the comparison apples-to-apples.
///
/// # Example
///
/// ```no_run
/// use mfpa_dataset::Matrix;
/// use mfpa_ml::{Classifier, CnnLstm};
///
/// // 4-step windows of 2 features; rising first feature = positive.
/// let mk = |base: f64, slope: f64| -> Vec<f64> {
///     (0..4).flat_map(|t| vec![base + slope * t as f64, 0.0]).collect()
/// };
/// let x = Matrix::from_rows(&[
///     mk(0.0, 0.0), mk(0.1, 0.0), mk(0.0, 1.0), mk(0.1, 1.0),
/// ]).unwrap();
/// let y = [false, false, true, true];
/// let mut m = CnnLstm::new(4, 2).with_epochs(60).with_seed(1);
/// m.fit(&x, &y)?;
/// # Ok::<(), mfpa_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CnnLstm {
    steps: usize,
    feats: usize,
    conv_channels: usize,
    kernel: usize,
    hidden: usize,
    epochs: usize,
    batch_size: usize,
    learning_rate: f64,
    seed: u64,
    state: Option<State>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct State {
    scaler: StandardScaler,
    conv: Conv1d,
    lstm: Lstm,
    dense: Dense,
}

impl CnnLstm {
    /// Creates a model for windows of `steps` snapshots × `feats`
    /// features, with small defaults (8 conv channels, kernel 3 — clamped
    /// to `steps` — hidden 16, 40 epochs, batch 32, lr 5e-3).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or `feats == 0`.
    pub fn new(steps: usize, feats: usize) -> Self {
        assert!(steps > 0 && feats > 0, "steps and feats must be positive");
        CnnLstm {
            steps,
            feats,
            conv_channels: 8,
            kernel: 3.min(steps),
            hidden: 16,
            epochs: 40,
            batch_size: 32,
            learning_rate: 5e-3,
            seed: 0,
            state: None,
        }
    }

    /// Sets the RNG seed (init + shuffling).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of training epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Sets the minibatch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Sets the Adam learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the convolution width and channel count (kernel clamped to
    /// the window length).
    pub fn with_conv(mut self, channels: usize, kernel: usize) -> Self {
        self.conv_channels = channels.max(1);
        self.kernel = kernel.clamp(1, self.steps);
        self
    }

    /// Sets the LSTM hidden width.
    pub fn with_hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden.max(1);
        self
    }

    /// The expected input row width (`steps × feats`).
    pub fn input_width(&self) -> usize {
        self.steps * self.feats
    }

    fn forward_sample(&self, state: &State, row: &[f64]) -> (f64, ForwardCache) {
        let pre = state.conv.forward(row, self.steps);
        let act: Vec<f64> = pre.iter().map(|&v| v.max(0.0)).collect();
        let t_out = state.conv.out_steps(self.steps);
        let lstm_cache = state.lstm.forward(&act, t_out);
        let h = lstm_cache.last_hidden(self.hidden);
        let logit = state.dense.forward(&h)[0];
        let p = 1.0 / (1.0 + (-logit.clamp(-60.0, 60.0)).exp());
        (
            p,
            ForwardCache {
                pre,
                act,
                lstm_cache,
                h,
            },
        )
    }
}

#[derive(Debug)]
struct ForwardCache {
    pre: Vec<f64>,
    act: Vec<f64>,
    lstm_cache: super::lstm::LstmCache,
    h: Vec<f64>,
}

impl Classifier for CnnLstm {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> Result<(), MlError> {
        check_fit_inputs(x, y)?;
        if x.n_cols() != self.input_width() {
            return Err(MlError::InvalidParameter(format!(
                "CnnLstm expects rows of steps × feats = {} values, got {}",
                self.input_width(),
                x.n_cols()
            )));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(MlError::InvalidParameter(format!(
                "learning_rate must be positive, got {}",
                self.learning_rate
            )));
        }
        let (scaler, xs) = StandardScaler::fit_transform(x)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let conv = Conv1d::new(self.feats, self.conv_channels, self.kernel, &mut rng);
        let t_out = conv.out_steps(self.steps);
        let lstm = Lstm::new(self.conv_channels, self.hidden, &mut rng);
        let dense = Dense::new(self.hidden, 1, &mut rng);
        let mut state = State {
            scaler,
            conv,
            lstm,
            dense,
        };

        let n = xs.n_rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut adam_t = 0u64;
        for _epoch in 0..self.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(self.batch_size) {
                if batch.is_empty() {
                    continue; // chunks() never yields one, but the div below needs it provable
                }
                for p in state
                    .conv
                    .params_mut()
                    .into_iter()
                    .chain(state.lstm.params_mut())
                    .chain(state.dense.params_mut())
                {
                    p.zero_grad();
                }
                for &i in batch {
                    let row = xs.row(i);
                    let (p, cache) = self.forward_sample(&state, row);
                    let target = if y[i] { 1.0 } else { 0.0 };
                    let dlogit = p - target; // BCE through sigmoid
                    let dh = state.dense.backward(&cache.h, &[dlogit]);
                    let dact = state.lstm.backward(&cache.lstm_cache, &dh);
                    debug_assert_eq!(dact.len(), t_out * self.conv_channels);
                    let dpre: Vec<f64> = dact
                        .iter()
                        .zip(&cache.pre)
                        .map(|(&g, &v)| if v > 0.0 { g } else { 0.0 })
                        .collect();
                    let _ = state.conv.backward(row, self.steps, &dpre);
                    debug_assert_eq!(cache.act.len(), dpre.len());
                }
                // Average over the batch, clip the global norm, step.
                let inv = 1.0 / batch.len() as f64;
                let mut sq_norm = 0.0;
                for p in state
                    .conv
                    .params_mut()
                    .into_iter()
                    .chain(state.lstm.params_mut())
                    .chain(state.dense.params_mut())
                {
                    p.scale_grad(inv);
                    sq_norm += p.grad_sq_norm();
                }
                let norm = sq_norm.sqrt();
                let clip = if norm > 5.0 { 5.0 / norm } else { 1.0 };
                adam_t += 1;
                for p in state
                    .conv
                    .params_mut()
                    .into_iter()
                    .chain(state.lstm.params_mut())
                    .chain(state.dense.params_mut())
                {
                    if clip < 1.0 {
                        p.scale_grad(clip);
                    }
                    p.adam_step(self.learning_rate, 0.9, 0.999, 1e-8, adam_t);
                }
            }
        }
        self.state = Some(state);
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        let state = self.state.as_ref().ok_or(MlError::NotFitted)?;
        check_predict_inputs(x, Some(self.input_width()))?;
        let xs = state.scaler.transform(x)?;
        Ok(xs
            .rows()
            .map(|row| self.forward_sample(state, row).0)
            .collect())
    }

    fn name(&self) -> &'static str {
        "CNN_LSTM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;
    use rand::RngExt;

    /// Windows where the positive class has a rising trend in feature 0 —
    /// a pattern only visible across the time axis.
    fn trend_data(n: usize, steps: usize, feats: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let pos = i % 2 == 0;
            let slope = if pos { 0.8 } else { 0.0 };
            let mut row = Vec::with_capacity(steps * feats);
            for t in 0..steps {
                row.push(slope * t as f64 + rng.random_range(-0.2..0.2));
                for _ in 1..feats {
                    row.push(rng.random_range(-0.2..0.2));
                }
            }
            rows.push(row);
            y.push(pos);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_temporal_trend() {
        let (x, y) = trend_data(120, 5, 3, 1);
        let mut m = CnnLstm::new(5, 3).with_epochs(30).with_seed(2);
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba(&x).unwrap();
        assert!(auc(&y, &p) > 0.95, "auc = {}", auc(&y, &p));
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = trend_data(40, 4, 2, 3);
        let mut a = CnnLstm::new(4, 2).with_epochs(5).with_seed(9);
        let mut b = CnnLstm::new(4, 2).with_epochs(5).with_seed(9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = trend_data(40, 4, 2, 5);
        let mut m = CnnLstm::new(4, 2).with_epochs(5).with_seed(1);
        m.fit(&x, &y).unwrap();
        assert!(m
            .predict_proba(&x)
            .unwrap()
            .iter()
            .all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn wrong_width_rejected() {
        let (x, y) = trend_data(20, 4, 2, 6);
        let mut m = CnnLstm::new(5, 2); // expects 10 cols, data has 8
        assert!(matches!(m.fit(&x, &y), Err(MlError::InvalidParameter(_))));
    }

    #[test]
    fn unfitted_errors() {
        let m = CnnLstm::new(4, 2);
        let x = Matrix::from_rows(&[vec![0.0; 8]]).unwrap();
        assert_eq!(m.predict_proba(&x), Err(MlError::NotFitted));
    }

    #[test]
    fn kernel_clamped_to_short_windows() {
        let (x, y) = trend_data(30, 2, 2, 7);
        let mut m = CnnLstm::new(2, 2).with_epochs(3).with_seed(1);
        m.fit(&x, &y).unwrap(); // kernel 3 clamped to 2
        assert_eq!(m.predict_proba(&x).unwrap().len(), 30);
    }
}
