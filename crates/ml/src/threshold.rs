//! The vendor SMART-threshold detector.
//!
//! §II of the paper: "Almost all disk vendors use the original
//! threshold-based algorithms to trigger a failure alarm when a single
//! SMART attribute exceeds the threshold value. However, the TPR is only
//! 3%–10%, and FPR is 0.1%." This rule-based detector is the floor every
//! learned model is compared against (Fig 18 and the baseline rows of
//! Fig 9).

use mfpa_dataset::Matrix;
use serde::{Deserialize, Serialize};

use crate::error::{check_predict_inputs, MlError};
use crate::model::Classifier;

/// One alarm rule over a feature column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdRule {
    /// Column index the rule inspects.
    pub column: usize,
    /// Threshold value.
    pub value: f64,
    /// `true` to alarm when the feature is **greater** than `value`,
    /// `false` to alarm when it is **less** than `value`.
    pub alarm_above: bool,
}

impl ThresholdRule {
    /// Alarm when `column > value`.
    pub fn above(column: usize, value: f64) -> Self {
        ThresholdRule {
            column,
            value,
            alarm_above: true,
        }
    }

    /// Alarm when `column < value`.
    pub fn below(column: usize, value: f64) -> Self {
        ThresholdRule {
            column,
            value,
            alarm_above: false,
        }
    }

    /// Whether the rule fires on the given row.
    pub fn fires(&self, row: &[f64]) -> bool {
        let v = row[self.column];
        if self.alarm_above {
            v > self.value
        } else {
            v < self.value
        }
    }
}

/// OR-combination of threshold rules, exposed as a [`Classifier`] so it
/// can be evaluated by the same harness as the learned models.
///
/// `fit` is a no-op (rules are fixed, exactly like a vendor's firmware
/// thresholds); `predict_proba` returns `1.0` when any rule fires and
/// `0.0` otherwise.
///
/// # Example
///
/// ```
/// use mfpa_dataset::Matrix;
/// use mfpa_ml::{Classifier, ThresholdDetector, ThresholdRule};
///
/// // Alarm when media errors (col 0) exceed 10 or spare (col 1) drops
/// // below 20.
/// let det = ThresholdDetector::new(2, vec![
///     ThresholdRule::above(0, 10.0),
///     ThresholdRule::below(1, 20.0),
/// ])?;
/// let x = Matrix::from_rows(&[vec![50.0, 90.0], vec![0.0, 90.0]]).unwrap();
/// assert_eq!(det.predict(&x)?, vec![true, false]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdDetector {
    n_features: usize,
    rules: Vec<ThresholdRule>,
}

impl ThresholdDetector {
    /// Creates a detector over rows of width `n_features`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] if a rule references a column
    /// outside `0..n_features`.
    pub fn new(n_features: usize, rules: Vec<ThresholdRule>) -> Result<Self, MlError> {
        if let Some(bad) = rules.iter().find(|r| r.column >= n_features) {
            return Err(MlError::InvalidParameter(format!(
                "rule references column {} but rows have {} features",
                bad.column, n_features
            )));
        }
        Ok(ThresholdDetector { n_features, rules })
    }

    /// The configured rules.
    pub fn rules(&self) -> &[ThresholdRule] {
        &self.rules
    }
}

impl Classifier for ThresholdDetector {
    fn fit(&mut self, _x: &Matrix, _y: &[bool]) -> Result<(), MlError> {
        Ok(()) // thresholds are fixed by the "vendor"
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        check_predict_inputs(x, Some(self.n_features))?;
        Ok(x.rows()
            .map(|row| {
                if self.rules.iter().any(|r| r.fires(row)) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "SMART-threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_directionally() {
        let above = ThresholdRule::above(0, 5.0);
        assert!(above.fires(&[6.0]));
        assert!(!above.fires(&[5.0]));
        let below = ThresholdRule::below(0, 5.0);
        assert!(below.fires(&[4.0]));
        assert!(!below.fires(&[5.0]));
    }

    #[test]
    fn detector_is_or_of_rules() {
        let det = ThresholdDetector::new(
            2,
            vec![ThresholdRule::above(0, 1.0), ThresholdRule::below(1, 0.0)],
        )
        .unwrap();
        let x = Matrix::from_rows(&[
            vec![2.0, 1.0],  // rule 0 fires
            vec![0.0, -1.0], // rule 1 fires
            vec![0.0, 1.0],  // none
        ])
        .unwrap();
        assert_eq!(det.predict(&x).unwrap(), vec![true, true, false]);
    }

    #[test]
    fn no_rules_never_alarm() {
        let det = ThresholdDetector::new(1, vec![]).unwrap();
        let x = Matrix::from_rows(&[vec![1e9]]).unwrap();
        assert_eq!(det.predict(&x).unwrap(), vec![false]);
    }

    #[test]
    fn out_of_range_rule_rejected() {
        assert!(ThresholdDetector::new(1, vec![ThresholdRule::above(1, 0.0)]).is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let det = ThresholdDetector::new(2, vec![]).unwrap();
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(matches!(
            det.predict_proba(&x),
            Err(MlError::FeatureMismatch { .. })
        ));
    }
}
