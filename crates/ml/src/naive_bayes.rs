//! Gaussian naive Bayes.
//!
//! The "Bayes" entry of the paper's algorithm portfolio (§III-C(4)).
//! Class-conditional feature distributions are modelled as independent
//! Gaussians; variance smoothing keeps degenerate (constant) features from
//! producing infinities.

use mfpa_dataset::Matrix;
use serde::{Deserialize, Serialize};

use crate::error::{check_fit_inputs, check_predict_inputs, MlError};
use crate::model::Classifier;

/// Gaussian naive Bayes binary classifier.
///
/// # Example
///
/// ```
/// use mfpa_dataset::Matrix;
/// use mfpa_ml::{Classifier, GaussianNb};
///
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![0.2], vec![0.1], vec![5.0], vec![5.2], vec![4.9],
/// ]).unwrap();
/// let y = [false, false, false, true, true, true];
/// let mut nb = GaussianNb::new();
/// nb.fit(&x, &y)?;
/// let p = nb.predict_proba(&Matrix::from_rows(&[vec![5.1], vec![0.05]]).unwrap())?;
/// assert!(p[0] > 0.9 && p[1] < 0.1);
/// # Ok::<(), mfpa_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaussianNb {
    var_smoothing: f64,
    log1p: bool,
    fitted: Option<Fitted>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Fitted {
    log_prior_pos: f64,
    log_prior_neg: f64,
    mean_pos: Vec<f64>,
    mean_neg: Vec<f64>,
    var_pos: Vec<f64>,
    var_neg: Vec<f64>,
}

impl GaussianNb {
    /// Creates a classifier with the default variance smoothing (`1e-9`
    /// of the largest feature variance, sklearn-compatible).
    pub fn new() -> Self {
        GaussianNb {
            var_smoothing: 1e-9,
            log1p: false,
            fitted: None,
        }
    }

    /// Applies a sign-preserving `log1p` to every feature before fitting
    /// and prediction. Heavy-tailed counters (cumulative event counts,
    /// host writes) violate the Gaussian assumption badly; compressing
    /// them makes naive Bayes competitive.
    pub fn with_log1p(mut self, enabled: bool) -> Self {
        self.log1p = enabled;
        self
    }

    fn transform<'a>(&self, x: &'a Matrix) -> std::borrow::Cow<'a, Matrix> {
        if !self.log1p {
            return std::borrow::Cow::Borrowed(x);
        }
        let data: Vec<f64> = x
            .as_slice()
            .iter()
            .map(|&v| v.signum() * v.abs().ln_1p())
            .collect();
        // mfpa-lint: allow(d8, "from_flat over a same-shape map of x cannot mismatch")
        std::borrow::Cow::Owned(Matrix::from_flat(data, x.n_cols()).expect("same shape"))
    }

    /// Overrides the variance-smoothing fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or non-finite.
    pub fn with_var_smoothing(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "smoothing must be >= 0"
        );
        self.var_smoothing = fraction;
        self
    }

    fn class_stats(x: &Matrix, y: &[bool], class: bool) -> (Vec<f64>, Vec<f64>, usize) {
        let cols = x.n_cols();
        let mut mean = vec![0.0; cols];
        let mut count = 0usize;
        for (row, &label) in x.rows().zip(y) {
            if label == class {
                count += 1;
                for (m, v) in mean.iter_mut().zip(row) {
                    *m += v;
                }
            }
        }
        for m in &mut mean {
            *m /= count as f64;
        }
        let mut var = vec![0.0; cols];
        for (row, &label) in x.rows().zip(y) {
            if label == class {
                for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                    let d = v - m;
                    *s += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= count as f64;
        }
        (mean, var, count)
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> Result<(), MlError> {
        check_fit_inputs(x, y)?;
        let x = self.transform(x);
        let x = x.as_ref();
        let (mean_pos, mut var_pos, n_pos) = Self::class_stats(x, y, true);
        let (mean_neg, mut var_neg, n_neg) = Self::class_stats(x, y, false);

        // Smoothing floor relative to the largest per-feature variance.
        let max_var = var_pos
            .iter()
            .chain(&var_neg)
            .fold(0.0f64, |a, &b| a.max(b))
            .max(1e-12);
        let eps = self.var_smoothing * max_var + 1e-12;
        for v in var_pos.iter_mut().chain(var_neg.iter_mut()) {
            *v += eps;
        }

        let n = (n_pos + n_neg) as f64;
        self.fitted = Some(Fitted {
            log_prior_pos: (n_pos as f64 / n).ln(),
            log_prior_neg: (n_neg as f64 / n).ln(),
            mean_pos,
            mean_neg,
            var_pos,
            var_neg,
        });
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        check_predict_inputs(x, Some(f.mean_pos.len()))?;
        let x = self.transform(x);
        let x = &x;
        let log_gauss = |v: f64, mean: f64, var: f64| -> f64 {
            let d = v - mean;
            -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var)
        };
        Ok(x.rows()
            .map(|row| {
                let mut lp = f.log_prior_pos;
                let mut ln = f.log_prior_neg;
                for (j, &v) in row.iter().enumerate() {
                    lp += log_gauss(v, f.mean_pos[j], f.var_pos[j]);
                    ln += log_gauss(v, f.mean_neg[j], f.var_neg[j]);
                }
                // Numerically stable posterior: p = 1 / (1 + exp(ln - lp)).
                let diff = (ln - lp).clamp(-700.0, 700.0);
                1.0 / (1.0 + diff.exp())
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "Bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Vec<bool>) {
        let x = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![0.1, 1.1],
            vec![-0.1, 0.9],
            vec![3.0, -1.0],
            vec![3.1, -0.9],
            vec![2.9, -1.1],
        ])
        .unwrap();
        let y = vec![false, false, false, true, true, true];
        (x, y)
    }

    #[test]
    fn separable_problem_is_learned() {
        let (x, y) = toy();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y).unwrap();
        let preds = nb.predict(&x).unwrap();
        assert_eq!(preds, y);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = toy();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y).unwrap();
        for p in nb.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn constant_feature_does_not_produce_nan() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 0.1],
            vec![1.0, 0.9],
        ])
        .unwrap();
        let y = [false, true, false, true];
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y).unwrap();
        for p in nb.predict_proba(&x).unwrap() {
            assert!(p.is_finite());
        }
    }

    #[test]
    fn unbalanced_priors_shift_predictions() {
        // 5 negatives at 0, 1 positive at 1; a midpoint sample leans negative.
        let x = Matrix::from_rows(&[
            vec![0.0],
            vec![0.05],
            vec![-0.05],
            vec![0.02],
            vec![-0.02],
            vec![1.0],
        ])
        .unwrap();
        let y = [false, false, false, false, false, true];
        let mut nb = GaussianNb::new().with_var_smoothing(1e-2);
        nb.fit(&x, &y).unwrap();
        let p = nb
            .predict_proba(&Matrix::from_rows(&[vec![0.5]]).unwrap())
            .unwrap();
        assert!(p[0].is_finite());
    }

    #[test]
    fn errors_before_fit_and_on_mismatch() {
        let nb = GaussianNb::new();
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert_eq!(nb.predict_proba(&x), Err(MlError::NotFitted));
        let (xt, y) = toy();
        let mut nb = GaussianNb::new();
        nb.fit(&xt, &y).unwrap();
        assert!(matches!(
            nb.predict_proba(&x),
            Err(MlError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn single_class_rejected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut nb = GaussianNb::new();
        assert_eq!(nb.fit(&x, &[true, true]), Err(MlError::SingleClass));
    }
}
