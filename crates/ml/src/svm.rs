//! Linear SVM trained with the Pegasos stochastic sub-gradient method,
//! with Platt-scaled probability outputs.
//!
//! The "SVM" entry of the paper's algorithm portfolio. Features are
//! standardised internally (SMART counters span many orders of
//! magnitude), the primal hinge-loss objective is optimised by Pegasos
//! (Shalev-Shwartz et al.), and a one-dimensional logistic (Platt)
//! calibration maps margins to probabilities.

use mfpa_dataset::{Matrix, StandardScaler};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{check_fit_inputs, check_predict_inputs, MlError};
use crate::model::Classifier;

/// Linear SVM binary classifier (Pegasos + Platt calibration).
///
/// # Example
///
/// ```
/// use mfpa_dataset::Matrix;
/// use mfpa_ml::{Classifier, LinearSvm};
///
/// let x = Matrix::from_rows(&[
///     vec![0.0, 0.0], vec![0.2, 0.1], vec![0.1, 0.3],
///     vec![2.0, 2.0], vec![2.2, 1.9], vec![1.9, 2.1],
/// ]).unwrap();
/// let y = [false, false, false, true, true, true];
/// let mut svm = LinearSvm::new(0.01, 50).with_seed(3);
/// svm.fit(&x, &y)?;
/// assert_eq!(svm.predict(&x)?, y);
/// # Ok::<(), mfpa_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    lambda: f64,
    epochs: usize,
    seed: u64,
    fitted: Option<Fitted>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Fitted {
    scaler: StandardScaler,
    weights: Vec<f64>,
    bias: f64,
    platt_a: f64,
    platt_b: f64,
}

impl LinearSvm {
    /// Creates an SVM with regularisation strength `lambda` and the given
    /// number of passes over the data.
    pub fn new(lambda: f64, epochs: usize) -> Self {
        LinearSvm {
            lambda,
            epochs: epochs.max(1),
            seed: 0,
            fitted: None,
        }
    }

    /// Sets the RNG seed (sample order).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Raw (uncalibrated) margins `w·x + b` for each row.
    ///
    /// # Errors
    ///
    /// Same as [`Classifier::predict_proba`].
    pub fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        check_predict_inputs(x, Some(f.weights.len()))?;
        let xs = f.scaler.transform(x)?;
        Ok(xs
            .rows()
            .map(|row| row.iter().zip(&f.weights).map(|(a, b)| a * b).sum::<f64>() + f.bias)
            .collect())
    }

    /// The fitted weight vector (in standardised feature space).
    pub fn weights(&self) -> Option<&[f64]> {
        self.fitted.as_ref().map(|f| f.weights.as_slice())
    }
}

/// Fits 1-D logistic calibration `p = σ(a·m + b)` on margins by gradient
/// descent with a small number of iterations (Platt scaling).
fn fit_platt(margins: &[f64], y: &[bool]) -> (f64, f64) {
    let (mut a, mut b) = (1.0f64, 0.0f64);
    if margins.is_empty() {
        return (a, b);
    }
    let n = margins.len() as f64;
    let lr = 0.5;
    for _ in 0..300 {
        let mut ga = 0.0;
        let mut gb = 0.0;
        for (&m, &t) in margins.iter().zip(y) {
            let p = 1.0 / (1.0 + (-(a * m + b)).clamp(-700.0, 700.0).exp());
            let err = p - if t { 1.0 } else { 0.0 };
            ga += err * m;
            gb += err;
        }
        a -= lr * ga / n;
        b -= lr * gb / n;
    }
    (a, b)
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> Result<(), MlError> {
        check_fit_inputs(x, y)?;
        if !(self.lambda > 0.0 && self.lambda.is_finite()) {
            return Err(MlError::InvalidParameter(format!(
                "lambda must be positive, got {}",
                self.lambda
            )));
        }
        let (scaler, xs) = StandardScaler::fit_transform(x)?;
        let n = xs.n_rows();
        let d = xs.n_cols();
        let labels: Vec<f64> = y.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();

        let mut w = vec![0.0f64; d];
        let mut bias = 0.0f64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total_steps = self.epochs * n;
        for t in 1..=total_steps {
            let i = rng.random_range(0..n);
            let row = xs.row(i);
            let eta = 1.0 / (self.lambda * t as f64);
            let margin = labels[i] * (row.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + bias);
            // Pegasos update: shrink, then add the hinge sub-gradient when
            // the margin constraint is violated.
            let shrink = 1.0 - eta * self.lambda;
            for wj in &mut w {
                *wj *= shrink;
            }
            if margin < 1.0 {
                for (wj, &xj) in w.iter_mut().zip(row) {
                    *wj += eta * labels[i] * xj;
                }
                bias += eta * labels[i];
            }
        }

        let margins: Vec<f64> = xs
            .rows()
            .map(|row| row.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + bias)
            .collect();
        let (platt_a, platt_b) = fit_platt(&margins, y);
        self.fitted = Some(Fitted {
            scaler,
            weights: w,
            bias,
            platt_a,
            platt_b,
        });
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        let margins = self.decision_function(x)?;
        Ok(margins
            .into_iter()
            .map(|m| 1.0 / (1.0 + (-(f.platt_a * m + f.platt_b)).clamp(-700.0, 700.0).exp()))
            .collect())
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;

    fn blobs(n: usize, gap: f64, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let pos = i % 2 == 0;
            let c = if pos { gap } else { -gap };
            rows.push(vec![
                c + rng.random_range(-1.0..1.0),
                c + rng.random_range(-1.0..1.0),
            ]);
            y.push(pos);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs(200, 2.0, 1);
        let mut svm = LinearSvm::new(0.01, 30).with_seed(2);
        svm.fit(&x, &y).unwrap();
        let p = svm.predict_proba(&x).unwrap();
        assert!(auc(&y, &p) > 0.99);
    }

    #[test]
    fn calibrated_probabilities_are_ordered_by_margin() {
        let (x, y) = blobs(100, 1.5, 3);
        let mut svm = LinearSvm::new(0.01, 30).with_seed(4);
        svm.fit(&x, &y).unwrap();
        let m = svm.decision_function(&x).unwrap();
        let p = svm.predict_proba(&x).unwrap();
        // Platt scaling is monotone (a > 0 on separable data).
        let mut pairs: Vec<(f64, f64)> = m.into_iter().zip(p).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn scale_invariance_through_internal_standardisation() {
        let (x, y) = blobs(200, 2.0, 5);
        // Multiply one feature by 1e6: internal scaling should cope.
        let rows: Vec<Vec<f64>> = x.rows().map(|r| vec![r[0] * 1e6, r[1]]).collect();
        let xb = Matrix::from_rows(&rows).unwrap();
        let mut svm = LinearSvm::new(0.01, 30).with_seed(6);
        svm.fit(&xb, &y).unwrap();
        assert!(auc(&y, &svm.predict_proba(&xb).unwrap()) > 0.99);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = blobs(80, 1.0, 7);
        let mut a = LinearSvm::new(0.05, 10).with_seed(8);
        let mut b = LinearSvm::new(0.05, 10).with_seed(8);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn invalid_lambda_rejected() {
        let (x, y) = blobs(10, 1.0, 9);
        let mut svm = LinearSvm::new(-1.0, 5);
        assert!(matches!(svm.fit(&x, &y), Err(MlError::InvalidParameter(_))));
    }

    #[test]
    fn unfitted_errors() {
        let svm = LinearSvm::new(0.1, 5);
        let x = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        assert_eq!(svm.predict_proba(&x), Err(MlError::NotFitted));
        assert!(svm.weights().is_none());
    }
}
