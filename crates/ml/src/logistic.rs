//! L2-regularised logistic regression trained by full-batch gradient
//! descent with momentum.
//!
//! The "interpretable model" family of Chakraborttii et al. (SoCC'20),
//! the paper's comparator \[21\]: a linear model whose weights are directly
//! readable as per-feature risk contributions.

use mfpa_dataset::{Matrix, StandardScaler};
use serde::{Deserialize, Serialize};

use crate::error::{check_fit_inputs, check_predict_inputs, MlError};
use crate::model::Classifier;

/// Logistic-regression binary classifier.
///
/// Features are standardised internally; weights therefore live in
/// standardised space and are comparable across features — which is the
/// point of an interpretable model.
///
/// # Example
///
/// ```
/// use mfpa_dataset::Matrix;
/// use mfpa_ml::{Classifier, LogisticRegression};
///
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![0.2], vec![0.1], vec![3.0], vec![3.2], vec![2.9],
/// ]).unwrap();
/// let y = [false, false, false, true, true, true];
/// let mut lr = LogisticRegression::new(1e-3, 300);
/// lr.fit(&x, &y)?;
/// assert_eq!(lr.predict(&x)?, y);
/// assert!(lr.weights().unwrap()[0] > 0.0); // higher feature → riskier
/// # Ok::<(), mfpa_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    lambda: f64,
    iterations: usize,
    learning_rate: f64,
    fitted: Option<Fitted>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Fitted {
    scaler: StandardScaler,
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z.clamp(-700.0, 700.0)).exp())
}

impl LogisticRegression {
    /// Creates a model with L2 strength `lambda` and the given iteration
    /// budget.
    pub fn new(lambda: f64, iterations: usize) -> Self {
        LogisticRegression {
            lambda,
            iterations: iterations.max(1),
            learning_rate: 0.5,
            fitted: None,
        }
    }

    /// Overrides the gradient-descent learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// The fitted weights in standardised feature space (`None` before
    /// fitting). Magnitudes are comparable across features.
    pub fn weights(&self) -> Option<&[f64]> {
        self.fitted.as_ref().map(|f| f.weights.as_slice())
    }

    /// The fitted intercept.
    pub fn bias(&self) -> Option<f64> {
        self.fitted.as_ref().map(|f| f.bias)
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> Result<(), MlError> {
        check_fit_inputs(x, y)?;
        if !(self.lambda >= 0.0 && self.lambda.is_finite()) {
            return Err(MlError::InvalidParameter(format!(
                "lambda must be non-negative, got {}",
                self.lambda
            )));
        }
        let (scaler, xs) = StandardScaler::fit_transform(x)?;
        let n = xs.n_rows() as f64;
        let d = xs.n_cols();
        let targets: Vec<f64> = y.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();

        let mut w = vec![0.0f64; d];
        let mut bias = 0.0f64;
        let mut vw = vec![0.0f64; d];
        let mut vb = 0.0f64;
        let momentum = 0.9;
        for _ in 0..self.iterations {
            let mut gw = vec![0.0f64; d];
            let mut gb = 0.0f64;
            for (row, &t) in xs.rows().zip(&targets) {
                let z = row.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + bias;
                let err = sigmoid(z) - t;
                for (g, &xi) in gw.iter_mut().zip(row) {
                    *g += err * xi;
                }
                gb += err;
            }
            for j in 0..d {
                let grad = gw[j] / n + self.lambda * w[j];
                vw[j] = momentum * vw[j] - self.learning_rate * grad;
                w[j] += vw[j];
            }
            vb = momentum * vb - self.learning_rate * gb / n;
            bias += vb;
        }
        self.fitted = Some(Fitted {
            scaler,
            weights: w,
            bias,
        });
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        check_predict_inputs(x, Some(f.weights.len()))?;
        let xs = f.scaler.transform(x)?;
        Ok(xs
            .rows()
            .map(|row| {
                sigmoid(row.iter().zip(&f.weights).map(|(a, b)| a * b).sum::<f64>() + f.bias)
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "LogReg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let pos = i % 2 == 0;
            let c = if pos { 1.2 } else { -1.2 };
            rows.push(vec![
                c + rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            ]);
            y.push(pos);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs(200, 1);
        let mut lr = LogisticRegression::new(1e-4, 200);
        lr.fit(&x, &y).unwrap();
        assert!(auc(&y, &lr.predict_proba(&x).unwrap()) > 0.97);
    }

    #[test]
    fn weights_identify_the_informative_feature() {
        let (x, y) = blobs(300, 2);
        let mut lr = LogisticRegression::new(1e-4, 300);
        lr.fit(&x, &y).unwrap();
        let w = lr.weights().unwrap();
        assert!(w[0].abs() > 3.0 * w[1].abs(), "weights {w:?}");
        assert!(lr.bias().is_some());
    }

    #[test]
    fn regularisation_shrinks_weights() {
        let (x, y) = blobs(200, 3);
        let mut weak = LogisticRegression::new(1e-6, 200);
        let mut strong = LogisticRegression::new(1.0, 200);
        weak.fit(&x, &y).unwrap();
        strong.fit(&x, &y).unwrap();
        let norm = |m: &LogisticRegression| -> f64 {
            m.weights()
                .unwrap()
                .iter()
                .map(|w| w * w)
                .sum::<f64>()
                .sqrt()
        };
        assert!(norm(&strong) < norm(&weak));
    }

    #[test]
    fn probabilities_bounded_and_deterministic() {
        let (x, y) = blobs(100, 4);
        let mut a = LogisticRegression::new(1e-3, 100);
        let mut b = LogisticRegression::new(1e-3, 100);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        let pa = a.predict_proba(&x).unwrap();
        assert!(pa.iter().all(|p| (0.0..=1.0).contains(p)));
        assert_eq!(pa, b.predict_proba(&x).unwrap());
    }

    #[test]
    fn errors_on_degenerate_input() {
        let mut lr = LogisticRegression::new(-1.0, 10);
        let (x, y) = blobs(10, 5);
        assert!(matches!(lr.fit(&x, &y), Err(MlError::InvalidParameter(_))));
        let lr = LogisticRegression::new(1e-3, 10);
        assert_eq!(lr.predict_proba(&x), Err(MlError::NotFitted));
    }
}
