//! Evaluation metrics (§IV(1) of the paper).
//!
//! The paper evaluates with the confusion matrix, accuracy, true/false
//! positive rates, AUC, and a newly introduced *positive detection rate*
//! `PDR = (TP + FP) / (TP + TN + FP + FN)` — the share of all cases the
//! model flags, which bounds the migration/replacement work a deployment
//! would trigger.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Binary-classification confusion matrix.
///
/// # Example
///
/// ```
/// use mfpa_ml::metrics::ConfusionMatrix;
///
/// let y_true = [true, true, false, false, false];
/// let y_pred = [true, false, true, false, false];
/// let cm = ConfusionMatrix::from_labels(&y_true, &y_pred);
/// assert_eq!((cm.tp, cm.fn_, cm.fp, cm.tn), (1, 1, 1, 2));
/// assert!((cm.tpr() - 0.5).abs() < 1e-12);
/// assert!((cm.fpr() - 1.0 / 3.0).abs() < 1e-12);
/// assert!((cm.pdr() - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel true/predicted label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_labels(y_true: &[bool], y_pred: &[bool]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "label slices must align");
        let mut cm = ConfusionMatrix::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t, p) {
                (true, true) => cm.tp += 1,
                (true, false) => cm.fn_ += 1,
                (false, true) => cm.fp += 1,
                (false, false) => cm.tn += 1,
            }
        }
        cm
    }

    /// Builds the matrix by thresholding scores at `threshold`
    /// (`score >= threshold` predicts positive).
    pub fn from_scores(y_true: &[bool], scores: &[f64], threshold: f64) -> Self {
        let y_pred: Vec<bool> = scores.iter().map(|&s| s >= threshold).collect();
        ConfusionMatrix::from_labels(y_true, &y_pred)
    }

    /// Total number of cases.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Accuracy `(TP + TN) / total`; `0` when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// True positive rate (recall) `TP / (TP + FN)`; `0` with no positives.
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// False positive rate `FP / (FP + TN)`; `0` with no negatives.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// True negative rate `TN / (TN + FP)`.
    pub fn tnr(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// Precision `TP / (TP + FP)`; `0` with no predicted positives.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Positive detection rate `(TP + FP) / total` — the paper's new
    /// metric for how much of the fleet the model flags.
    pub fn pdr(&self) -> f64 {
        ratio(self.tp + self.fp, self.total())
    }

    /// F1 score; `0` when precision + recall is zero.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.tpr();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TP={} FP={} TN={} FN={} | TPR={:.4} FPR={:.4} ACC={:.4} PDR={:.4}",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.tpr(),
            self.fpr(),
            self.accuracy(),
            self.pdr()
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Computes the ROC curve: `(fpr, tpr)` points swept over every distinct
/// score threshold, from the most conservative (nothing flagged) to the
/// most aggressive (everything flagged). Points are sorted by ascending
/// FPR.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn roc_curve(y_true: &[bool], scores: &[f64]) -> Vec<(f64, f64)> {
    assert_eq!(y_true.len(), scores.len(), "label/score slices must align");
    let n_pos = y_true.iter().filter(|&&l| l).count() as f64;
    let n_neg = y_true.len() as f64 - n_pos;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut points = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0.0, 0.0);
    let mut i = 0;
    while i < order.len() {
        // Advance over a tie block so ties move diagonally, not stepwise.
        let s = scores[order[i]];
        while i < order.len() && scores[order[i]] == s {
            if y_true[order[i]] {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        points.push((
            if n_neg > 0.0 { fp / n_neg } else { 0.0 },
            if n_pos > 0.0 { tp / n_pos } else { 0.0 },
        ));
    }
    points
}

/// Area under the ROC curve via the rank-statistic (Mann–Whitney U)
/// formulation, with midrank tie handling. Returns `0.5` when either
/// class is absent (no ranking information).
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// use mfpa_ml::metrics::auc;
///
/// let y = [false, false, true, true];
/// assert_eq!(auc(&y, &[0.1, 0.2, 0.8, 0.9]), 1.0);
/// assert_eq!(auc(&y, &[0.9, 0.8, 0.2, 0.1]), 0.0);
/// assert_eq!(auc(&y, &[0.5, 0.5, 0.5, 0.5]), 0.5);
/// ```
pub fn auc(y_true: &[bool], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len(), "label/score slices must align");
    let n_pos = y_true.iter().filter(|&&l| l).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));

    // Midranks: ties share the average of the ranks they would occupy.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let midrank = ((i + 1 + j) as f64) / 2.0; // average of ranks i+1 ..= j
        for &ix in &order[i..j] {
            if y_true[ix] {
                rank_sum_pos += midrank;
            }
        }
        i = j;
    }
    let n_pos_f = n_pos as f64;
    let u = rank_sum_pos - n_pos_f * (n_pos_f + 1.0) / 2.0;
    u / (n_pos_f * n_neg as f64)
}

/// The highest TPR achievable with FPR at most `max_fpr`, together with
/// the score threshold achieving it. Returns `(0.0, +inf)` when nothing
/// satisfies the constraint.
///
/// Used to compare models at a fixed false-alarm budget (the
/// SMART-threshold baseline operates at FPR ≈ 0.1%).
pub fn tpr_at_fpr(y_true: &[bool], scores: &[f64], max_fpr: f64) -> (f64, f64) {
    assert_eq!(y_true.len(), scores.len(), "label/score slices must align");
    let n_pos = y_true.iter().filter(|&&l| l).count() as f64;
    let n_neg = y_true.len() as f64 - n_pos;

    // One sort, then a cumulative TP/FP sweep from the highest threshold
    // down (the same shape as `roc_curve`). Thresholding is inclusive
    // (`score >= t` flags positive), so after absorbing the tie block of
    // value `t` the running counts are exactly the confusion matrix at
    // threshold `t`. FPR only grows as the threshold falls, so each
    // feasible block supersedes the last and the final update is the
    // smallest feasible threshold — the same answer the per-threshold
    // O(n²) rescan produced.
    // A NaN score is never flagged by any threshold (`NaN >= t` is
    // false) and a NaN threshold flags nothing — NaN rows stay in the
    // rate denominators (as misses) but out of the sweep.
    let mut order: Vec<usize> = (0..scores.len()).filter(|&i| !scores[i].is_nan()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut best = (0.0, f64::INFINITY);
    let (mut tp, mut fp) = (0.0, 0.0);
    let mut i = 0;
    while i < order.len() {
        let t = scores[order[i]];
        while i < order.len() && scores[order[i]] == t {
            if y_true[order[i]] {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        let fpr = if n_neg > 0.0 { fp / n_neg } else { 0.0 };
        if fpr > max_fpr {
            break;
        }
        let tpr = if n_pos > 0.0 { tp / n_pos } else { 0.0 };
        if tpr > 0.0 {
            best = (tpr, t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let cm = ConfusionMatrix::from_labels(
            &[true, true, true, false, false],
            &[true, true, false, false, true],
        );
        assert_eq!((cm.tp, cm.fn_, cm.tn, cm.fp), (2, 1, 1, 1));
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        assert!((cm.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!(cm.f1() > 0.0);
    }

    #[test]
    fn empty_matrix_is_all_zero_rates() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.tpr(), 0.0);
        assert_eq!(cm.fpr(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn from_scores_threshold_inclusive() {
        let cm = ConfusionMatrix::from_scores(&[true, false], &[0.5, 0.4], 0.5);
        assert_eq!((cm.tp, cm.tn), (1, 1));
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let y = [true, false, true, false];
        assert_eq!(auc(&y, &[0.9, 0.1, 0.8, 0.2]), 1.0);
        assert_eq!(auc(&y, &[0.1, 0.9, 0.2, 0.8]), 0.0);
    }

    #[test]
    fn auc_with_ties_is_half_credit() {
        // One positive tied with one negative, one clean pair.
        let y = [true, false, true, false];
        let s = [0.5, 0.5, 0.9, 0.1];
        // pairs: (p1,n1) tie=0.5, (p1,n2)=1, (p2,n1)=1, (p2,n2)=1 → 3.5/4
        assert!((auc(&y, &s) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(auc(&[true, true], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn roc_curve_endpoints_and_monotonicity() {
        let y = [true, false, true, false, true];
        let s = [0.9, 0.8, 0.7, 0.3, 0.2];
        let curve = roc_curve(&y, &s);
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn tpr_at_fpr_respects_budget() {
        let y = [true, true, false, false, false, false];
        let s = [0.9, 0.6, 0.7, 0.2, 0.1, 0.05];
        // With FPR budget 0: only threshold > 0.7 qualifies → TPR 0.5.
        let (tpr, thr) = tpr_at_fpr(&y, &s, 0.0);
        assert_eq!(tpr, 0.5);
        assert!(thr > 0.7);
        // With budget 0.25 we can include the 0.7 negative → TPR 1.0.
        let (tpr, _) = tpr_at_fpr(&y, &s, 0.25);
        assert_eq!(tpr, 1.0);
    }

    /// The replaced per-threshold implementation, kept verbatim as the
    /// oracle: rescan every distinct threshold with a full confusion
    /// matrix (O(n²)).
    fn tpr_at_fpr_oracle(y_true: &[bool], scores: &[f64], max_fpr: f64) -> (f64, f64) {
        let mut thresholds: Vec<f64> = scores.to_vec();
        thresholds.sort_by(|a, b| a.total_cmp(b));
        thresholds.dedup();
        let mut best = (0.0, f64::INFINITY);
        for &t in &thresholds {
            let cm = ConfusionMatrix::from_scores(y_true, scores, t);
            if cm.fpr() <= max_fpr && cm.tpr() > best.0 {
                best = (cm.tpr(), t);
            }
        }
        best
    }

    #[test]
    fn tpr_at_fpr_hand_computed_with_ties() {
        // Tie blocks mixing both classes. Sorted flag counts:
        //   t=0.8 → tp=2 fp=1 (tpr 0.50, fpr 0.25)
        //   t=0.5 → tp=3 fp=2 (tpr 0.75, fpr 0.50)
        //   t=0.2 → tp=4 fp=3 (tpr 1.00, fpr 0.75)
        //   t=0.1 → tp=4 fp=4 (tpr 1.00, fpr 1.00)
        let y = [true, false, true, true, false, false, true, false];
        let s = [0.8, 0.8, 0.8, 0.5, 0.5, 0.2, 0.2, 0.1];
        assert_eq!(tpr_at_fpr(&y, &s, 0.0), (0.0, f64::INFINITY));
        assert_eq!(tpr_at_fpr(&y, &s, 0.25), (0.5, 0.8));
        assert_eq!(tpr_at_fpr(&y, &s, 0.5), (0.75, 0.5));
        assert_eq!(tpr_at_fpr(&y, &s, 0.75), (1.0, 0.2));
        // The budget-1.0 answer keeps the *smallest* feasible threshold
        // even though 0.2 already reaches TPR 1.0 — matching the oracle.
        assert_eq!(tpr_at_fpr(&y, &s, 1.0), (1.0, 0.1));
    }

    #[test]
    fn tpr_at_fpr_identical_to_per_threshold_oracle() {
        let cases: &[(&[bool], &[f64])] = &[
            (
                &[true, false, true, true, false, false, true, false],
                &[0.8, 0.8, 0.8, 0.5, 0.5, 0.2, 0.2, 0.1],
            ),
            // All scores tied.
            (&[true, false, true, false], &[0.5, 0.5, 0.5, 0.5]),
            // Perfectly separated.
            (&[false, false, true, true], &[0.1, 0.2, 0.8, 0.9]),
            // Inverted ranking: the only feasible flags are wrong.
            (&[true, true, false, false], &[0.1, 0.2, 0.8, 0.9]),
            // Single-class inputs.
            (&[true, true, true], &[0.3, 0.2, 0.1]),
            (&[false, false, false], &[0.3, 0.2, 0.1]),
        ];
        for (y, s) in cases {
            for max_fpr in [0.0, 0.2, 0.25, 1.0 / 3.0, 0.5, 0.75, 1.0] {
                let fast = tpr_at_fpr(y, s, max_fpr);
                let slow = tpr_at_fpr_oracle(y, s, max_fpr);
                assert_eq!(
                    fast.0.to_bits(),
                    slow.0.to_bits(),
                    "tpr mismatch: y={y:?} s={s:?} max_fpr={max_fpr}"
                );
                assert_eq!(
                    fast.1.to_bits(),
                    slow.1.to_bits(),
                    "threshold mismatch: y={y:?} s={s:?} max_fpr={max_fpr}"
                );
            }
        }
    }

    #[test]
    fn display_contains_rates() {
        let cm = ConfusionMatrix::from_labels(&[true, false], &[true, false]);
        let s = cm.to_string();
        assert!(s.contains("TPR=1.0000"));
        assert!(s.contains("FPR=0.0000"));
    }
}
