//! Exact↔binned parity: with a bin budget at least as large as the
//! number of distinct values per feature, the quantile edges are the
//! midpoints between every consecutive distinct pair — exactly the
//! exact path's candidate set. For 0/1 classification targets every
//! histogram sum is a small integer, so gains agree bit-for-bit, the
//! two paths pick the same partitions in the same order, and the fitted
//! trees predict identically on the training sample (recorded
//! thresholds may differ *within* the gap between two sample values —
//! both routes every training row the same way).

use mfpa_dataset::Matrix;
use mfpa_ml::{Classifier, DecisionTree, Gbdt, MaxFeatures, RandomForest, TreeParams};
use proptest::prelude::*;

/// Builds a matrix whose cells come from a small integer alphabet, so
/// each feature has at most `alphabet` distinct values — far below the
/// default 256-bin budget.
fn int_matrix(cells: &[usize], n_cols: usize, alphabet: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = cells
        .chunks(n_cols)
        .map(|chunk| chunk.iter().map(|&c| (c % alphabet) as f64).collect())
        .collect();
    Matrix::from_rows(&rows).expect("non-empty rectangular rows")
}

/// Labels with both classes forced present.
fn labels(bits: &[bool]) -> Vec<bool> {
    let mut y = bits.to_vec();
    y[0] = true;
    y[1] = false;
    y
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|p| p.to_bits()).collect()
}

proptest! {
    #[test]
    fn decision_tree_binned_equals_exact(
        cells in prop::collection::vec(0usize..7, 3 * 24..3 * 72),
        raw_labels in prop::collection::vec(any::<bool>(), 72),
        seed in 0u64..1000,
    ) {
        let n_cols = 3;
        let x = int_matrix(&cells[..cells.len() / n_cols * n_cols], n_cols, 7);
        let y = labels(&raw_labels[..x.n_rows()]);

        let exact_params = TreeParams { max_bins: 0, ..TreeParams::default() };
        let binned_params = TreeParams::default(); // max_bins = 256
        let mut exact = DecisionTree::new(exact_params).with_seed(seed);
        let mut binned = DecisionTree::new(binned_params).with_seed(seed);
        exact.fit(&x, &y).expect("exact fit");
        binned.fit(&x, &y).expect("binned fit");

        prop_assert_eq!(exact.n_nodes(), binned.n_nodes());
        prop_assert_eq!(exact.depth(), binned.depth());
        prop_assert_eq!(
            bits(exact.feature_importances()),
            bits(binned.feature_importances())
        );
        prop_assert_eq!(
            bits(&exact.predict_proba(&x).expect("exact proba")),
            bits(&binned.predict_proba(&x).expect("binned proba"))
        );
    }

    #[test]
    fn decision_tree_parity_with_feature_subsampling(
        cells in prop::collection::vec(0usize..5, 4 * 20..4 * 50),
        raw_labels in prop::collection::vec(any::<bool>(), 50),
        seed in 0u64..1000,
    ) {
        // Sqrt feature subsampling consumes the RNG per node; parity
        // requires the binned path to draw identically.
        let n_cols = 4;
        let x = int_matrix(&cells[..cells.len() / n_cols * n_cols], n_cols, 5);
        let y = labels(&raw_labels[..x.n_rows()]);

        let base = TreeParams {
            max_features: MaxFeatures::Sqrt,
            ..TreeParams::default()
        };
        let mut exact = DecisionTree::new(TreeParams { max_bins: 0, ..base }).with_seed(seed);
        let mut binned = DecisionTree::new(base).with_seed(seed);
        exact.fit(&x, &y).expect("exact fit");
        binned.fit(&x, &y).expect("binned fit");

        prop_assert_eq!(exact.n_nodes(), binned.n_nodes());
        prop_assert_eq!(
            bits(&exact.predict_proba(&x).expect("exact proba")),
            bits(&binned.predict_proba(&x).expect("binned proba"))
        );
    }

    #[test]
    fn random_forest_binned_equals_exact(
        cells in prop::collection::vec(0usize..2, 3 * 30..3 * 60),
        raw_labels in prop::collection::vec(any::<bool>(), 60),
        seed in 0u64..1000,
    ) {
        // Binary features: the only possible edge is 0.5 on both paths,
        // so parity is bit-exact even under bootstrap sampling. (With a
        // wider alphabet a value *absent from a tree's bootstrap* may
        // fall between exact's midpoint threshold and binned's edge
        // threshold and route differently at prediction time — both
        // trees are equally valid on the data they saw.)
        let n_cols = 3;
        let x = int_matrix(&cells[..cells.len() / n_cols * n_cols], n_cols, 2);
        let y = labels(&raw_labels[..x.n_rows()]);

        let mut exact = RandomForest::new(8, 6).with_seed(seed).with_max_bins(0);
        let mut binned = RandomForest::new(8, 6).with_seed(seed);
        exact.fit(&x, &y).expect("exact fit");
        binned.fit(&x, &y).expect("binned fit");

        prop_assert_eq!(
            bits(&exact.feature_importances()),
            bits(&binned.feature_importances())
        );
        prop_assert_eq!(
            bits(&exact.predict_proba(&x).expect("exact proba")),
            bits(&binned.predict_proba(&x).expect("binned proba"))
        );
    }

    #[test]
    fn gbdt_binned_close_to_exact(
        cells in prop::collection::vec(0usize..6, 2 * 40..2 * 70),
        seed in 0u64..1000,
    ) {
        // GBDT gradients are not integers: the two paths accumulate the
        // same gradients in different orders, so gains differ in their
        // last bits and an occasional tie flips — the trees are not
        // bit-identical by design. The parity claim is macroscopic:
        // both learn the same separable rule equally well. (The repro
        // e2e test pins the ±0.5pp TPR/FPR version of this.)
        let n_cols = 2;
        let x = int_matrix(&cells[..cells.len() / n_cols * n_cols], n_cols, 6);
        let y: Vec<bool> = (0..x.n_rows())
            .map(|i| x.get(i, 0) + x.get(i, 1) >= 5.0)
            .collect();
        let n_pos = y.iter().filter(|&&l| l).count();
        prop_assume!(n_pos >= 2 && n_pos + 2 <= y.len());

        let mut exact = Gbdt::new(20, 0.2, 3).with_seed(seed).with_max_bins(0);
        let mut binned = Gbdt::new(20, 0.2, 3).with_seed(seed);
        exact.fit(&x, &y).expect("exact fit");
        binned.fit(&x, &y).expect("binned fit");

        let pe = exact.predict_proba(&x).expect("exact proba");
        let pb = binned.predict_proba(&x).expect("binned proba");
        let auc_e = mfpa_ml::metrics::auc(&y, &pe);
        let auc_b = mfpa_ml::metrics::auc(&y, &pb);
        prop_assert!(auc_e > 0.99, "exact auc {auc_e}");
        prop_assert!(auc_b > 0.99, "binned auc {auc_b}");
        let mean_abs_diff: f64 =
            pe.iter().zip(&pb).map(|(a, b)| (a - b).abs()).sum::<f64>() / pe.len() as f64;
        prop_assert!(mean_abs_diff < 0.02, "mean |Δp| = {mean_abs_diff}");
    }
}
