//! Compiled↔interpreted parity for the flattened scoring engine.
//!
//! The compiled engine routes rows with quantized byte compares and
//! accumulates per-row sums in tree order — the contract is that every
//! probability is *bit-identical* to the interpreted
//! `predict_proba` of the source model, for any input (NaN included),
//! at any worker count, through the sequential per-device scorer, and
//! across an `.mfpac` serialization round trip. Corrupt artifacts must
//! be refused with a structured error, never a panic.

use mfpa_dataset::Matrix;
use mfpa_ml::{Classifier, CompiledEnsemble, Gbdt, MlError, RandomForest};
use proptest::prelude::*;

/// Training matrix over a small integer alphabet (guarantees split-able
/// features without degenerate single-value columns).
fn int_matrix(cells: &[usize], n_cols: usize, alphabet: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = cells
        .chunks(n_cols)
        .map(|chunk| chunk.iter().map(|&c| (c % alphabet) as f64).collect())
        .collect();
    Matrix::from_rows(&rows).expect("non-empty rectangular rows")
}

/// Evaluation matrix with continuous values straddling the training
/// alphabet (so rows land between, on, and outside the fitted
/// thresholds) and NaN holes injected where `nan_at` hits.
fn eval_matrix(cells: &[f64], n_cols: usize, nan_at: &[bool]) -> Matrix {
    let rows: Vec<Vec<f64>> = cells
        .chunks(n_cols)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(j, &v)| {
                    if nan_at[j % nan_at.len()] {
                        f64::NAN
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows).expect("non-empty rectangular rows")
}

fn labels(bits: &[bool]) -> Vec<bool> {
    let mut y = bits.to_vec();
    y[0] = true;
    y[1] = false;
    y
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|p| p.to_bits()).collect()
}

proptest! {
    #[test]
    fn rf_compiled_bit_identical_and_thread_invariant(
        cells in prop::collection::vec(0usize..6, 3 * 24..3 * 60),
        raw_labels in prop::collection::vec(any::<bool>(), 60),
        eval in prop::collection::vec(-1.0f64..7.0, 3 * 40),
        nan_at in prop::collection::vec(any::<bool>(), 7),
        seed in 0u64..1000,
    ) {
        let n_cols = 3;
        let x = int_matrix(&cells[..cells.len() / n_cols * n_cols], n_cols, 6);
        let y = labels(&raw_labels[..x.n_rows()]);
        let mut rf = RandomForest::new(8, 6).with_seed(seed);
        rf.fit(&x, &y).expect("fit");
        let compiled = rf.compile().expect("rf compiles");

        let nan_at = if nan_at.iter().all(|&b| b) { vec![false] } else { nan_at };
        let xe = eval_matrix(&eval, n_cols, &nan_at);
        let reference = bits(&rf.predict_proba(&xe).expect("interpreted"));
        for threads in [1usize, 2, 7] {
            let engine = compiled.clone().with_threads(threads);
            let got = bits(&engine.predict_proba(&xe).expect("compiled"));
            prop_assert_eq!(&got, &reference, "threads = {}", threads);
        }
    }

    #[test]
    fn gbdt_compiled_bit_identical_and_thread_invariant(
        cells in prop::collection::vec(0usize..5, 3 * 24..3 * 60),
        raw_labels in prop::collection::vec(any::<bool>(), 60),
        eval in prop::collection::vec(-1.0f64..6.0, 3 * 40),
        nan_at in prop::collection::vec(any::<bool>(), 7),
        seed in 0u64..1000,
    ) {
        let n_cols = 3;
        let x = int_matrix(&cells[..cells.len() / n_cols * n_cols], n_cols, 5);
        let y = labels(&raw_labels[..x.n_rows()]);
        let mut gb = Gbdt::new(15, 0.2, 3).with_seed(seed);
        gb.fit(&x, &y).expect("fit");
        let compiled = gb.compile().expect("gbdt compiles");

        let nan_at = if nan_at.iter().all(|&b| b) { vec![false] } else { nan_at };
        let xe = eval_matrix(&eval, n_cols, &nan_at);
        let reference = bits(&gb.predict_proba(&xe).expect("interpreted"));
        for threads in [1usize, 2, 7] {
            let engine = compiled.clone().with_threads(threads);
            let got = bits(&engine.predict_proba(&xe).expect("compiled"));
            prop_assert_eq!(&got, &reference, "threads = {}", threads);
        }
    }

    #[test]
    fn sequential_scorer_matches_batch(
        cells in prop::collection::vec(0usize..5, 3 * 24..3 * 60),
        raw_labels in prop::collection::vec(any::<bool>(), 60),
        deltas in prop::collection::vec(-1.5f64..2.0, 3 * 50),
        nan_at in prop::collection::vec(any::<bool>(), 11),
        hint2 in any::<bool>(),
        gbdt in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let n_cols = 3;
        let x = int_matrix(&cells[..cells.len() / n_cols * n_cols], n_cols, 5);
        let y = labels(&raw_labels[..x.n_rows()]);
        let (compiled, reference_model): (CompiledEnsemble, Box<dyn Classifier>) = if gbdt {
            let mut m = Gbdt::new(12, 0.2, 3).with_seed(seed);
            m.fit(&x, &y).expect("fit");
            (m.compile().expect("compiles"), Box::new(m))
        } else {
            let mut m = RandomForest::new(6, 6).with_seed(seed);
            m.fit(&x, &y).expect("fit");
            (m.compile().expect("compiles"), Box::new(m))
        };

        // A device stream: column 0 is a cumulative counter (truthful
        // monotone hint), column 1 drifts freely, column 2 oscillates.
        // `hint2` sometimes marks column 2 monotone *wrongly* — the
        // scorer must detect the violation and stay bit-identical.
        let mut rows: Vec<f64> = Vec::new();
        let mut state = [1.0f64, 2.0, 2.0];
        for (i, d) in deltas.chunks(n_cols).enumerate() {
            state[0] += d[0].abs();
            state[1] += d[1];
            state[2] = 2.0 + d[2];
            for (f, &s) in state.iter().enumerate() {
                let v = if nan_at[(i * n_cols + f) % nan_at.len()] { f64::NAN } else { s };
                rows.push(v);
            }
        }
        let monotone = vec![true, false, hint2];
        let mut scorer = compiled.sequential(&monotone).expect("scorer");
        let mut got = Vec::new();
        scorer.score_rows(&rows, &mut got).expect("score_rows");

        let xe = Matrix::from_rows(
            &rows.chunks(n_cols).map(<[f64]>::to_vec).collect::<Vec<_>>(),
        ).expect("matrix");
        let reference = reference_model.predict_proba(&xe).expect("interpreted");
        prop_assert_eq!(bits(&got), bits(&reference));

        // Reset and replay: a reused scorer must match a fresh one.
        let mut replay = Vec::new();
        scorer.reset();
        scorer.score_rows(&rows, &mut replay).expect("replay");
        prop_assert_eq!(bits(&replay), bits(&got));
    }

    #[test]
    fn mfpac_roundtrip_bit_identical(
        cells in prop::collection::vec(0usize..5, 3 * 24..3 * 48),
        raw_labels in prop::collection::vec(any::<bool>(), 48),
        eval in prop::collection::vec(-1.0f64..6.0, 3 * 20),
        gbdt in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let n_cols = 3;
        let x = int_matrix(&cells[..cells.len() / n_cols * n_cols], n_cols, 5);
        let y = labels(&raw_labels[..x.n_rows()]);
        let compiled = if gbdt {
            let mut m = Gbdt::new(10, 0.2, 3).with_seed(seed);
            m.fit(&x, &y).expect("fit");
            m.compile().expect("compiles")
        } else {
            let mut m = RandomForest::new(5, 5).with_seed(seed);
            m.fit(&x, &y).expect("fit");
            m.compile().expect("compiles")
        };

        let artifact = compiled.to_bytes();
        let loaded = CompiledEnsemble::from_bytes(&artifact).expect("roundtrip decodes");
        prop_assert_eq!(loaded.n_trees(), compiled.n_trees());
        prop_assert_eq!(loaded.n_nodes(), compiled.n_nodes());
        prop_assert_eq!(loaded.lanes(), compiled.lanes());

        let xe = eval_matrix(&eval, n_cols, &[false]);
        prop_assert_eq!(
            bits(&loaded.predict_proba(&xe).expect("loaded")),
            bits(&compiled.predict_proba(&xe).expect("original"))
        );
    }

    #[test]
    fn mfpac_corruption_refused_never_panics(
        cells in prop::collection::vec(0usize..5, 3 * 24..3 * 40),
        raw_labels in prop::collection::vec(any::<bool>(), 40),
        cut in 0.0f64..1.0,
        flip_pos in 0.0f64..1.0,
        flip_bit in 0u8..8,
        seed in 0u64..1000,
    ) {
        let n_cols = 3;
        let x = int_matrix(&cells[..cells.len() / n_cols * n_cols], n_cols, 5);
        let y = labels(&raw_labels[..x.n_rows()]);
        let mut m = Gbdt::new(8, 0.2, 3).with_seed(seed);
        m.fit(&x, &y).expect("fit");
        let artifact = m.compile().expect("compiles").to_bytes();

        // Any strict truncation must be refused with a structured error.
        let keep = (cut * artifact.len() as f64) as usize; // < len since cut < 1
        match CompiledEnsemble::from_bytes(&artifact[..keep]) {
            Err(MlError::CorruptArtifact(_)) => {}
            other => prop_assert!(false, "truncation to {} bytes: {:?}", keep, other.map(|_| "Ok")),
        }

        // Any single bit flip must be refused: FNV-1a-64's per-byte
        // steps are bijective, so a one-byte change always changes the
        // digest, and a flip in the footer no longer matches the body.
        let mut flipped = artifact.clone();
        let pos = (flip_pos * flipped.len() as f64) as usize;
        let pos = pos.min(flipped.len() - 1);
        flipped[pos] ^= 1 << flip_bit;
        match CompiledEnsemble::from_bytes(&flipped) {
            Err(MlError::CorruptArtifact(_)) => {}
            other => prop_assert!(
                false,
                "bit {} of byte {} flipped: {:?}",
                flip_bit,
                pos,
                other.map(|_| "Ok")
            ),
        }
    }
}

/// Deterministic hostile inputs for the decoder: junk, empty, and a
/// header-only stub must all produce structured errors, never panics.
#[test]
fn mfpac_rejects_junk() {
    for bad in [
        &[][..],
        &[0u8; 4][..],
        &[0u8; 64][..],
        b"MFPCnot-an-artifact-just-ascii-padding-...".as_slice(),
    ] {
        match CompiledEnsemble::from_bytes(bad) {
            Err(MlError::CorruptArtifact(_)) => {}
            other => panic!("junk accepted: {other:?}"),
        }
    }
}
