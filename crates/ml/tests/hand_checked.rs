//! Hand-computed oracle tests for `mfpa_ml::metrics` and
//! `mfpa_ml::threshold`.
//!
//! Every expected value below is worked out on paper from the metric's
//! definition (pair counting for AUC, explicit rate fractions for the
//! confusion matrix, rule tracing for the threshold detector) so a
//! regression in the implementations cannot hide behind a regenerated
//! snapshot.

use mfpa_ml::metrics::{auc, roc_curve, tpr_at_fpr, ConfusionMatrix};
use mfpa_ml::{Classifier, ThresholdDetector, ThresholdRule};

use mfpa_dataset::Matrix;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

#[test]
fn confusion_matrix_rates_from_worked_example() {
    // 10 cases: 4 positives, 6 negatives.
    let y_true = [
        true, true, true, true, false, false, false, false, false, false,
    ];
    let y_pred = [
        true, true, false, false, true, false, false, false, false, true,
    ];
    // By hand: TP = 2 (cases 0,1), FN = 2 (cases 2,3),
    //          FP = 2 (cases 4,9), TN = 4 (cases 5..=8).
    let cm = ConfusionMatrix::from_labels(&y_true, &y_pred);
    assert_eq!((cm.tp, cm.fn_, cm.fp, cm.tn), (2, 2, 2, 4));
    assert!(close(cm.tpr(), 0.5)); // 2 / 4
    assert!(close(cm.fpr(), 1.0 / 3.0)); // 2 / 6
    assert!(close(cm.tnr(), 2.0 / 3.0)); // 4 / 6
    assert!(close(cm.accuracy(), 0.6)); // (2 + 4) / 10
    assert!(close(cm.precision(), 0.5)); // 2 / 4 flagged
    assert!(close(cm.pdr(), 0.4)); // (2 + 2) / 10
                                   // F1 = 2 * 0.5 * 0.5 / (0.5 + 0.5) = 0.5.
    assert!(close(cm.f1(), 0.5));
}

#[test]
fn auc_equals_hand_counted_pair_fraction() {
    // Positives score {0.8, 0.4}, negatives {0.6, 0.3, 0.1}.
    // Of the 2 × 3 = 6 (positive, negative) pairs the positive outranks
    // the negative in: (0.8,0.6) (0.8,0.3) (0.8,0.1) (0.4,0.3) (0.4,0.1)
    // = 5 pairs; (0.4,0.6) is a loss. AUC = 5/6.
    let y = [true, false, true, false, false];
    let s = [0.8, 0.6, 0.4, 0.3, 0.1];
    assert!(close(auc(&y, &s), 5.0 / 6.0));
}

#[test]
fn auc_ties_earn_half_credit_each() {
    // Positives {0.7, 0.5}, negatives {0.5, 0.5, 0.2}.
    // Pairs: 0.7 beats all three negatives (3.0);
    // 0.5 ties two negatives (2 × 0.5) and beats 0.2 (1.0).
    // AUC = (3 + 1 + 1) / 6 = 5/6.
    let y = [true, true, false, false, false];
    let s = [0.7, 0.5, 0.5, 0.5, 0.2];
    assert!(close(auc(&y, &s), 5.0 / 6.0));
}

#[test]
fn roc_curve_matches_hand_traced_points() {
    // Scores descending: 0.9(+), 0.7(−), 0.5(+), 0.2(−).
    // Thresholds sweep: after 0.9 → (0, 1/2); after 0.7 → (1/2, 1/2);
    // after 0.5 → (1/2, 1); after 0.2 → (1, 1).
    let y = [true, false, true, false];
    let s = [0.9, 0.7, 0.5, 0.2];
    let curve = roc_curve(&y, &s);
    let expected = [(0.0, 0.0), (0.0, 0.5), (0.5, 0.5), (0.5, 1.0), (1.0, 1.0)];
    assert_eq!(curve.len(), expected.len());
    for ((fx, tx), (fe, te)) in curve.iter().zip(expected) {
        assert!(close(*fx, fe) && close(*tx, te), "got ({fx},{tx})");
    }
}

#[test]
fn roc_tie_block_moves_diagonally() {
    // A positive and a negative share 0.5: the sweep must jump from
    // (0,0) straight to (1/1, 1/1) through a single diagonal step, never
    // favouring one corner of the tie.
    let y = [true, false];
    let s = [0.5, 0.5];
    assert_eq!(roc_curve(&y, &s), vec![(0.0, 0.0), (1.0, 1.0)]);
}

#[test]
fn tpr_at_fpr_trades_exactly_where_computed() {
    // Positives: 0.9, 0.55, 0.3; negatives: 0.6, 0.4, 0.1.
    let y = [true, false, true, false, true, false];
    let s = [0.9, 0.6, 0.55, 0.4, 0.3, 0.1];
    // Budget 0: the only thresholds with FPR = 0 are > 0.6; the best is
    // t = 0.9 → TPR 1/3.
    let (tpr0, thr0) = tpr_at_fpr(&y, &s, 0.0);
    assert!(close(tpr0, 1.0 / 3.0));
    assert!(thr0 > 0.6);
    // Budget 1/3: t = 0.55 admits one negative (0.6) and two positives.
    let (tpr1, thr1) = tpr_at_fpr(&y, &s, 1.0 / 3.0);
    assert!(close(tpr1, 2.0 / 3.0));
    assert!(close(thr1, 0.55));
    // Budget 2/3: t = 0.3 admits negatives 0.6 and 0.4, all positives.
    let (tpr2, _) = tpr_at_fpr(&y, &s, 2.0 / 3.0);
    assert!(close(tpr2, 1.0));
}

#[test]
fn threshold_detector_confusion_matrix_by_rule_tracing() {
    // Columns: [media_errors, percent_spare].
    // Alarm when media_errors > 10 OR percent_spare < 20.
    let det = ThresholdDetector::new(
        2,
        vec![ThresholdRule::above(0, 10.0), ThresholdRule::below(1, 20.0)],
    )
    .unwrap();
    let rows = [
        (vec![50.0, 90.0], true),  // faulty, rule 0 fires      → TP
        (vec![11.0, 15.0], true),  // faulty, both rules fire   → TP
        (vec![10.0, 20.0], true),  // faulty, neither fires     → FN (boundary!)
        (vec![0.0, 90.0], false),  // healthy, silent           → TN
        (vec![0.0, 19.9], false),  // healthy, rule 1 fires     → FP
        (vec![9.0, 100.0], false), // healthy, silent           → TN
    ];
    let x = Matrix::from_rows(&rows.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>()).unwrap();
    let y: Vec<bool> = rows.iter().map(|&(_, l)| l).collect();
    let preds = det.predict(&x).unwrap();
    let cm = ConfusionMatrix::from_labels(&y, &preds);
    assert_eq!((cm.tp, cm.fn_, cm.fp, cm.tn), (2, 1, 1, 2));
    assert!(close(cm.tpr(), 2.0 / 3.0));
    assert!(close(cm.fpr(), 1.0 / 3.0));
    assert!(close(cm.pdr(), 0.5)); // 3 alarms over 6 drives
}

#[test]
fn threshold_detector_probabilities_are_degenerate() {
    // The detector is a hard rule: its "probabilities" must be exactly
    // 0.0 / 1.0 so downstream AUC treats it as a single operating point.
    let det = ThresholdDetector::new(1, vec![ThresholdRule::above(0, 0.0)]).unwrap();
    let x = Matrix::from_rows(&[vec![1.0], vec![-1.0]]).unwrap();
    assert_eq!(det.predict_proba(&x).unwrap(), vec![1.0, 0.0]);
}
