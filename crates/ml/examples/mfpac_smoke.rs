//! Cross-process `.mfpac` smoke used by `scripts/check.sh`.
//!
//! `save <dir>` fits a small deterministic GBDT, compiles it, and
//! writes the artifact plus the expected probability bits; `load
//! <dir>` runs in a *fresh process*, decodes the artifact, and
//! asserts the recomputed bits match exactly; `corrupt <dir>` flips
//! one bit of the artifact and asserts the decoder refuses it with a
//! structured error. Any contract violation exits non-zero.

use mfpa_dataset::Matrix;
use mfpa_ml::{Classifier, CompiledEnsemble, Gbdt, MlError};

/// Deterministic training matrix: three features over a small integer
/// alphabet, rows varied enough to give every feature real splits.
fn train_matrix() -> Result<(Matrix, Vec<bool>), String> {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..48u64 {
        let a = (i * 7 + 3) % 5;
        let b = (i * 11 + 1) % 4;
        let c = (i * 5 + 2) % 6;
        rows.push(vec![a as f64, b as f64, c as f64]);
        labels.push((a + b * 2 + c) % 3 == 0);
    }
    let x = Matrix::from_rows(&rows).map_err(|e| format!("train matrix: {e}"))?;
    Ok((x, labels))
}

/// Evaluation matrix straddling the training alphabet: on-threshold,
/// between-threshold, out-of-range and NaN values all appear.
fn eval_matrix() -> Result<Matrix, String> {
    let mut rows = Vec::new();
    for i in 0..40u64 {
        let base = i as f64 * 0.37 - 1.2;
        let nan_here = i % 7 == 3;
        rows.push(vec![
            if nan_here { f64::NAN } else { base },
            (i % 6) as f64 - 0.5,
            base * 1.7,
        ]);
    }
    Matrix::from_rows(&rows).map_err(|e| format!("eval matrix: {e}"))
}

fn compile_model() -> Result<CompiledEnsemble, String> {
    let (x, y) = train_matrix()?;
    let mut model = Gbdt::new(12, 0.2, 3).with_seed(42);
    model.fit(&x, &y).map_err(|e| format!("fit: {e}"))?;
    model
        .compile()
        .ok_or_else(|| "gbdt must compile".to_string())
}

fn bits_of(engine: &CompiledEnsemble) -> Result<Vec<u64>, String> {
    let probs = engine
        .predict_proba(&eval_matrix()?)
        .map_err(|e| format!("predict: {e}"))?;
    Ok(probs.iter().map(|p| p.to_bits()).collect())
}

fn save(dir: &str) -> Result<(), String> {
    let engine = compile_model()?;
    let artifact = engine.to_bytes();
    std::fs::write(format!("{dir}/model.mfpac"), &artifact)
        .map_err(|e| format!("write artifact: {e}"))?;
    let expected: String = bits_of(&engine)?
        .iter()
        .map(|b| format!("{b:016x}\n"))
        .collect();
    std::fs::write(format!("{dir}/expected.txt"), expected)
        .map_err(|e| format!("write expected: {e}"))?;
    println!(
        "saved {} byte artifact + {} expected rows",
        artifact.len(),
        40
    );
    Ok(())
}

fn load(dir: &str) -> Result<(), String> {
    let artifact =
        std::fs::read(format!("{dir}/model.mfpac")).map_err(|e| format!("read artifact: {e}"))?;
    let engine = CompiledEnsemble::from_bytes(&artifact).map_err(|e| format!("decode: {e}"))?;
    let got = bits_of(&engine)?;
    let expected = std::fs::read_to_string(format!("{dir}/expected.txt"))
        .map_err(|e| format!("read expected: {e}"))?;
    let want: Vec<u64> = expected
        .lines()
        .map(|l| u64::from_str_radix(l, 16).map_err(|e| format!("expected.txt: {e}")))
        .collect::<Result<_, _>>()?;
    if got != want {
        let n = got.iter().zip(&want).filter(|(g, w)| g != w).count();
        return Err(format!(
            "{n} of {} probabilities differ across processes",
            want.len()
        ));
    }
    println!(
        "fresh-process round trip is bit-identical ({} rows)",
        want.len()
    );
    Ok(())
}

fn corrupt(dir: &str) -> Result<(), String> {
    let mut artifact =
        std::fs::read(format!("{dir}/model.mfpac")).map_err(|e| format!("read artifact: {e}"))?;
    // Flip one bit mid-body (deterministic position, past the header).
    let pos = artifact.len() / 2;
    artifact[pos] ^= 0x10;
    match CompiledEnsemble::from_bytes(&artifact) {
        Err(MlError::CorruptArtifact(msg)) => {
            println!("bit-flipped artifact refused: {msg}");
            Ok(())
        }
        Err(e) => Err(format!("refused with the wrong error kind: {e}")),
        Ok(_) => Err("bit-flipped artifact was accepted".to_string()),
    }
}

fn main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("save") if args.len() == 3 => save(&args[2]),
        Some("load") if args.len() == 3 => load(&args[2]),
        Some("corrupt") if args.len() == 3 => corrupt(&args[2]),
        _ => Err("usage: mfpac_smoke <save|load|corrupt> <dir>".to_string()),
    }
}
