// PoC: checksum-valid .mfpac with an unreachable node whose feature
// index is out of range. from_bytes should refuse it; does it panic?
use mfpa_ml::CompiledEnsemble;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_BASIS;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn main() {
    let leaf: u32 = u32::MAX;
    let mut out: Vec<u8> = Vec::new();
    out.extend(0x4350_464Du32.to_le_bytes()); // magic
    out.extend(1u32.to_le_bytes()); // version
    out.extend(1u64.to_le_bytes()); // n_features
    out.extend(1u64.to_le_bytes()); // n_trees
    out.extend(3u64.to_le_bytes()); // n_nodes
    out.push(0); // RfMean
    out.extend(0u64.to_le_bytes());
    out.extend(0u64.to_le_bytes());
    out.extend(0u32.to_le_bytes()); // tree_roots[0]
    out.extend(0u32.to_le_bytes()); // tree_depths[0]
    for f in [leaf, 5u32, 5u32] {
        out.extend(f.to_le_bytes()); // feat: root leaf + 2 unreachable
    }
    for _ in 0..3 {
        out.extend(0f64.to_bits().to_le_bytes()); // thr
    }
    for _ in 0..3 {
        out.extend(0u32.to_le_bytes()); // left
    }
    for _ in 0..3 {
        out.extend(0f64.to_bits().to_le_bytes()); // value
    }
    let footer = fnv1a64(&out);
    out.extend(footer.to_le_bytes());
    match CompiledEnsemble::from_bytes(&out) {
        Ok(_) => println!("ACCEPTED (bad: invalid structure admitted)"),
        Err(e) => println!("refused: {e}"),
    }
}
