//! `--fix` mechanics: deleting unused allow lines is exact (used
//! allows survive) and idempotent (fixing fixed text changes nothing).

use mfpa_lint::{
    lint_files, strip_unused_allow_lines, unused_allow_lines, LintOptions, LintReport, SourceFile,
};

const LABEL: &str = "crates/core/src/fixed.rs";

fn lint_one(src: &str) -> LintReport {
    let files = [SourceFile {
        crate_name: "core".to_owned(),
        label: LABEL.to_owned(),
        text: src.to_owned(),
    }];
    lint_files(&files, LintOptions::default())
}

#[test]
fn fix_removes_standalone_and_trailing_unused_allows() {
    let src = "fn used(x: Option<u32>) -> u32 {\n    \
               // mfpa-lint: allow(d5, \"checked by caller\")\n    \
               x.unwrap()\n\
               }\n\
               \n\
               // mfpa-lint: allow(d5, \"stale standalone\")\n\
               fn clean() {} // mfpa-lint: allow(d3, \"stale trailing\")\n";
    let report = lint_one(src);
    let targets = unused_allow_lines(&report);
    let lines = targets.get(LABEL).expect("both stale allows reported");
    assert_eq!(lines.len(), 2, "{:?}", report.findings);

    let fixed = strip_unused_allow_lines(src, lines);
    assert!(fixed.contains("checked by caller"), "used allow survives");
    assert!(!fixed.contains("stale standalone"), "standalone line gone");
    assert!(!fixed.contains("stale trailing"), "trailing comment gone");
    assert!(fixed.contains("fn clean() {}\n"), "code kept: {fixed:?}");

    // Post-fix there is nothing left to fix…
    let report = lint_one(&fixed);
    assert!(
        unused_allow_lines(&report).is_empty(),
        "{:?}",
        report.findings
    );
    // …and re-applying the same deletion set is the identity.
    assert_eq!(strip_unused_allow_lines(&fixed, lines), fixed);
}

#[test]
fn fix_leaves_block_comment_allows_for_a_human() {
    let src = "fn clean() {} /* mfpa-lint: allow(d3, \"stale block\") */\n";
    let report = lint_one(src);
    let targets = unused_allow_lines(&report);
    let lines = targets.get(LABEL).expect("block allow is still reported");
    assert_eq!(strip_unused_allow_lines(src, lines), src);
}

#[test]
fn malformed_allows_are_not_fix_targets() {
    // A reasonless allow is a violation, but deleting it silently would
    // hide a directive someone meant to write.
    let src = "// mfpa-lint: allow(d5)\nfn f() {}\n";
    let report = lint_one(src);
    assert!(!report.is_clean());
    assert!(unused_allow_lines(&report).is_empty());
}
