//! Incremental cache semantics: a warm run reproduces the cold report
//! bit-for-bit, edits invalidate exactly the touched file, and any
//! damage to the cache file degrades to a cold scan — never to stale
//! facts or a panic.

use std::path::PathBuf;

use mfpa_lint::cache::{lint_files_cached, CacheStats};
use mfpa_lint::{lint_files, LintOptions, SourceFile};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfpa-lint-cache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir temp");
    dir.join("scan.cache")
}

fn ws() -> Vec<SourceFile> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    mfpa_lint::collect_workspace(&root).expect("fixture workspace readable")
}

#[test]
fn warm_run_reproduces_the_cold_report() {
    let files = ws();
    let path = tmp("warm");
    let uncached = lint_files(&files, LintOptions::default());

    let (cold, stats) = lint_files_cached(&files, LintOptions::default(), &path);
    assert_eq!(stats.reused, 0, "first run has nothing to reuse");
    assert_eq!(stats.rescanned, files.len());
    assert_eq!(cold.to_json().to_string(), uncached.to_json().to_string());

    let (warm, stats) = lint_files_cached(&files, LintOptions::default(), &path);
    assert_eq!(
        stats,
        CacheStats {
            reused: files.len(),
            rescanned: 0
        }
    );
    assert_eq!(warm.to_json().to_string(), uncached.to_json().to_string());
}

#[test]
fn an_edit_invalidates_exactly_the_touched_file() {
    let mut files = ws();
    let path = tmp("edit");
    let _ = lint_files_cached(&files, LintOptions::default(), &path);

    let victim = files
        .iter_mut()
        .find(|f| f.label.ends_with("sanitize.rs"))
        .expect("fixture has sanitize.rs");
    victim.text.push_str("\nfn appended() {}\n");

    let (report, stats) = lint_files_cached(&files, LintOptions::default(), &path);
    assert_eq!(stats.rescanned, 1, "only the edited file rescans");
    assert_eq!(stats.reused, files.len() - 1);
    assert_eq!(
        report.to_json().to_string(),
        lint_files(&files, LintOptions::default())
            .to_json()
            .to_string(),
        "warm report must match a from-scratch scan of the edited tree"
    );
}

#[test]
fn corrupt_or_truncated_cache_degrades_to_cold() {
    let files = ws();
    let path = tmp("corrupt");
    let _ = lint_files_cached(&files, LintOptions::default(), &path);
    let good = std::fs::read(&path).expect("cache written");

    // Flip one byte in the middle: the seal fails, the run goes cold.
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    std::fs::write(&path, &bad).expect("write corrupt cache");
    let (report, stats) = lint_files_cached(&files, LintOptions::default(), &path);
    assert_eq!(stats.reused, 0, "corrupt cache must not be trusted");
    assert_eq!(
        report.to_json().to_string(),
        lint_files(&files, LintOptions::default())
            .to_json()
            .to_string()
    );

    // Truncation likewise.
    std::fs::write(&path, &good[..good.len() / 3]).expect("truncate");
    let (_, stats) = lint_files_cached(&files, LintOptions::default(), &path);
    assert_eq!(stats.reused, 0, "truncated cache must not be trusted");

    // And the run heals the file: the next scan is warm again.
    let (_, stats) = lint_files_cached(&files, LintOptions::default(), &path);
    assert_eq!(stats.reused, files.len());
}

#[test]
fn missing_cache_path_is_a_cold_run_not_an_error() {
    let files = ws();
    let path = tmp("missing");
    let (report, stats) = lint_files_cached(&files, LintOptions::default(), &path);
    assert_eq!(stats.reused, 0);
    assert_eq!(
        report.to_json().to_string(),
        lint_files(&files, LintOptions::default())
            .to_json()
            .to_string()
    );
}
