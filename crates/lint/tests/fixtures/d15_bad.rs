//! d15: milliseconds added to days. Both operands are plain integers,
//! so the type system is silent; only the unit suffixes reveal that
//! the sum is dimensional nonsense.

pub struct DriveMonitor;

impl DriveMonitor {
    pub fn ingest(&mut self, uptime_ms: u64, age_days: u64) -> u64 {
        staleness(uptime_ms, age_days)
    }
}

fn staleness(uptime_ms: u64, age_days: u64) -> u64 {
    uptime_ms + age_days
}
