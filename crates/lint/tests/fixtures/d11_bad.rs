//! d11: a hand-rolled encoder/decoder pair whose field order diverges.
//! The encoder writes magic, count, scale; the decoder reads magic,
//! scale, count — the second field's width no longer mirrors.

pub struct Header {
    pub magic: u32,
    pub count: u64,
    pub scale: f64,
}

pub fn encode_header(h: &Header, w: &mut ByteWriter) {
    w.u32(h.magic);
    w.u64(h.count);
    w.f64(h.scale);
}

pub fn decode_header(rd: &mut ByteReader) -> Result<Header, String> {
    Ok(Header {
        magic: rd.u32()?,
        scale: rd.f64()?,
        count: rd.u64()?,
    })
}
