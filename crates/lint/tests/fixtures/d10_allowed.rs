//! The d10 twin with a justified suppression.

pub fn total_score(rows: &[f64]) -> f64 {
    let mut total = 0.0;
    let workers = mfpa_par::Workers::from_config(0);
    let _doubled = mfpa_par::ordered_map(rows, workers, |_, r| {
        // mfpa-lint: allow(d10, "single-worker combinator: config pins MFPA_THREADS=1 here")
        total += *r;
        *r
    });
    total
}
