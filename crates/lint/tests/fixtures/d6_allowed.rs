pub fn bucket(write_count: u64) -> u32 {
    // mfpa-lint: allow(d6, "write_count is clamped below 2^20 upstream")
    write_count as u32
}
