//! d12: slice indexing reachable from a decode root with no dominating
//! length guard — hostile bytes panic instead of returning an error.

pub mod checkpoint {
    pub fn restore(data: &[u8]) -> u8 {
        super::parse_frame(data)
    }
}

fn parse_frame(data: &[u8]) -> u8 {
    data[4]
}
