#![allow(dead_code)]
//! Inner attributes: `#![...]` at file start is not a shebang.

/// Returns the first reading.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
