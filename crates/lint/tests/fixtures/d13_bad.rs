//! d13: counter subtraction whose operand order is never proven. If
//! the trailing window ever exceeds the accumulated power-on days the
//! unsigned difference wraps to ~2^64 and poisons every feature
//! computed from it.

pub struct DriveMonitor;

impl DriveMonitor {
    pub fn ingest(&mut self, poh_days: u64, window_days: u64) -> u64 {
        trailing(poh_days, window_days)
    }
}

fn trailing(poh_days: u64, window_days: u64) -> u64 {
    poh_days - window_days
}
