pub fn stamp() -> f64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}
