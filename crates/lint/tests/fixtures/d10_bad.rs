//! d10: order-sensitive float accumulation into a variable captured by
//! a closure handed to a parallel combinator. The worker interleaving
//! decides the addition order, so the total drifts run to run.

pub fn total_score(rows: &[f64]) -> f64 {
    let mut total = 0.0;
    let workers = mfpa_par::Workers::from_config(0);
    let _doubled = mfpa_par::ordered_map(rows, workers, |_, r| {
        total += *r;
        *r
    });
    total
}
