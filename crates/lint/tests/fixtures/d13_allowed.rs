//! The d13 twin with a justified suppression.

pub struct DriveMonitor;

impl DriveMonitor {
    pub fn ingest(&mut self, poh_days: u64, window_days: u64) -> u64 {
        trailing(poh_days, window_days)
    }
}

fn trailing(poh_days: u64, window_days: u64) -> u64 {
    // mfpa-lint: allow(d13, "ingest clamps window_days to poh_days upstream of this call")
    poh_days - window_days
}
