//! The d14 twin with a justified suppression.

pub struct DriveMonitor;

impl DriveMonitor {
    pub fn ingest(&mut self, media_errors: u64, read_count: u64) -> f64 {
        error_rate(media_errors, read_count)
    }
}

fn error_rate(media_errors: u64, read_count: u64) -> f64 {
    // mfpa-lint: allow(d14, "caller filters drives with zero reads before scoring")
    media_errors as f64 / read_count as f64
}
