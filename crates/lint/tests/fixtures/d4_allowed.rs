pub fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    // mfpa-lint: allow(d4, "inputs are pre-validated finite probabilities")
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs
}
