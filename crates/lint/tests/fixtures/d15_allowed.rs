//! The d15 twin with a justified suppression.

pub struct DriveMonitor;

impl DriveMonitor {
    pub fn ingest(&mut self, uptime_ms: u64, age_days: u64) -> u64 {
        staleness(uptime_ms, age_days)
    }
}

fn staleness(uptime_ms: u64, age_days: u64) -> u64 {
    // mfpa-lint: allow(d15, "opaque staleness score, not a physical quantity; units cancel in the rank")
    uptime_ms + age_days
}
