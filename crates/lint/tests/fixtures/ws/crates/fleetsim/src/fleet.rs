//! Fixture fleet: the `generate` root reaches an unordered iteration
//! and a clock escape; `orphan` is unreachable and stays lexical.

use std::collections::HashMap;
use std::time::Instant;

/// Fleet façade mirroring `mfpa-fleetsim`.
pub struct SimulatedFleet;

impl SimulatedFleet {
    /// Declared deterministic root (`fleet::generate`).
    pub fn generate() -> f64 {
        let mut names = HashMap::new();
        names.insert("alpha".to_owned(), 1u32);
        let n = census(&names);
        tick() + f64::from(n)
    }
}

fn census(m: &HashMap<String, u32>) -> u32 {
    let mut total = 0;
    for (_name, v) in m {
        total += v;
    }
    total
}

fn tick() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

fn orphan(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
