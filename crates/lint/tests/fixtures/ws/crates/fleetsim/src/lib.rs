//! Fixture `fleetsim` crate for the interprocedural lint tests.

pub mod fleet;
