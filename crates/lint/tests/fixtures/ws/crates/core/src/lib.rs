//! Fixture `core` crate for the interprocedural lint tests.

pub mod metrics;
pub mod pipeline;
pub mod sanitize;
