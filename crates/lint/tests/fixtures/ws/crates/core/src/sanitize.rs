//! Fixture sanitize stage: `clean` delegates to a leaf whose panic
//! path is only visible interprocedurally.

/// Returns the first reading.
pub fn clean(v: &[u32]) -> u32 {
    leaf(v)
}

fn leaf(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
