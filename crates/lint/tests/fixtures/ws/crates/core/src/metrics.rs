//! Fixture metrics: a ratio whose integer denominator is never proven
//! nonzero — the planted d14, reached from `pipeline::prepare`.

/// Share of failed drives among `total`, which may be zero.
pub fn failure_ratio(failed: u64, total: u64) -> f64 {
    failed as f64 / total as f64
}
