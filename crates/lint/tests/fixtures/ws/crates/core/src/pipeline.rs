//! Fixture pipeline: the declared root `prepare` reaches a leaf panic
//! two calls down in `sanitize` and an unguarded ratio in `metrics`.

use crate::metrics::failure_ratio;
use crate::sanitize::clean;

/// Pipeline façade mirroring `mfpa-core`.
pub struct Mfpa;

impl Mfpa {
    /// Declared deterministic root (`pipeline::prepare`).
    pub fn prepare(&self) -> u32 {
        let _share = failure_ratio(1, 3);
        clean(&[1, 2, 3])
    }
}
