//! Fixture pipeline: the declared root `prepare` reaches a leaf panic
//! two calls down in `sanitize`.

use crate::sanitize::clean;

/// Pipeline façade mirroring `mfpa-core`.
pub struct Mfpa;

impl Mfpa {
    /// Declared deterministic root (`pipeline::prepare`).
    pub fn prepare(&self) -> u32 {
        clean(&[1, 2, 3])
    }
}
