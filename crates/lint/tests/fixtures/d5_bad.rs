pub fn first(xs: &[u8]) -> u8 {
    *xs.first().unwrap()
}
