//! Raw identifiers: `r#` escapes must lex as single identifier tokens.

/// Adds the two knobs.
pub fn describe(r#type: u32, r#loop: u32) -> u32 {
    let r#match = r#type + r#loop;
    r#match
}

/// Returns the first reading.
pub fn fetch(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
