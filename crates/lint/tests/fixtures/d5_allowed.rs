pub fn first(xs: &[u8]) -> u8 {
    // mfpa-lint: allow(d5, "caller guarantees a non-empty slice via the type's invariant")
    *xs.first().unwrap()
}
