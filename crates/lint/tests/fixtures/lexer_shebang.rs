#!/usr/bin/env run-cargo-script
//! Shebang: line 1 must lex as a comment, not punctuation soup.

/// Returns the first reading.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
