pub fn stamp() -> f64 {
    let t = std::time::Instant::now(); // mfpa-lint: allow(d3, "diagnostic timing only; result is discarded from outputs")
    t.elapsed().as_secs_f64()
}
