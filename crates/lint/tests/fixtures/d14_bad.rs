//! d14: a ratio whose integer-derived denominator is never proven
//! nonzero. A drive with zero reads sends NaN/inf through every
//! downstream aggregate.

pub struct DriveMonitor;

impl DriveMonitor {
    pub fn ingest(&mut self, media_errors: u64, read_count: u64) -> f64 {
        error_rate(media_errors, read_count)
    }
}

fn error_rate(media_errors: u64, read_count: u64) -> f64 {
    media_errors as f64 / read_count as f64
}
