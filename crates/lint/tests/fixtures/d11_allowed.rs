//! The d11 twin with a justified suppression at the diverging field.

pub struct Header {
    pub magic: u32,
    pub count: u64,
    pub scale: f64,
}

pub fn encode_header(h: &Header, w: &mut ByteWriter) {
    w.u32(h.magic);
    // mfpa-lint: allow(d11, "v1 readers tolerate the swapped tail fields; fixed in v2 framing")
    w.u64(h.count);
    w.f64(h.scale);
}

pub fn decode_header(rd: &mut ByteReader) -> Result<Header, String> {
    Ok(Header {
        magic: rd.u32()?,
        scale: rd.f64()?,
        count: rd.u64()?,
    })
}
