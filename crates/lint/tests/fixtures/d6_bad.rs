pub fn bucket(write_count: u64) -> u32 {
    write_count as u32
}
