pub fn fan_out(jobs: Vec<u64>) -> Vec<u64> {
    // mfpa-lint: allow(d1, "one-shot helper thread; joins before returning, order unaffected")
    let handle = std::thread::spawn(move || jobs.iter().sum::<u64>());
    vec![handle.join().unwrap_or(0)]
}
