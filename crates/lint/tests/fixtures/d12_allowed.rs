//! The d12 twin with a justified suppression.

pub mod checkpoint {
    pub fn restore(data: &[u8]) -> u8 {
        super::parse_frame(data)
    }
}

fn parse_frame(data: &[u8]) -> u8 {
    // mfpa-lint: allow(d12, "callers hand over frames already length-checked against the header")
    data[4]
}
