pub fn tally(days: &[i64]) -> std::collections::HashMap<i64, usize> {
    days.iter().map(|&d| (d, 1)).collect()
}
