use std::collections::HashMap;

pub fn tally(days: &HashMap<i64, usize>) -> Vec<(i64, usize)> {
    days.iter().map(|(&d, &n)| (d, n)).collect()
}
