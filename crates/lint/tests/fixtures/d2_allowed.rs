// mfpa-lint: allow(d2, "membership probe only; the map is never iterated")
use std::collections::HashMap;

pub fn seen(days: &[i64]) -> bool {
    // mfpa-lint: allow(d2, "membership probe only; the map is never iterated")
    let m: HashMap<i64, ()> = days.iter().map(|&d| (d, ())).collect();
    m.contains_key(&0)
}
