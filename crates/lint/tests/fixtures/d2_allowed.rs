use std::collections::HashMap;

pub fn tally(days: &HashMap<i64, usize>) -> Vec<(i64, usize)> {
    // mfpa-lint: allow(d2, "order-insensitive downstream; the caller re-sorts the pairs")
    days.iter().map(|(&d, &n)| (d, n)).collect()
}
