//! One known-bad and one suppressed fixture per catalog rule. The bad
//! snippet must produce exactly one unsuppressed finding for its rule;
//! the suppressed twin must produce zero unsuppressed findings while
//! still recording the allow (so `lint_report.json` counts it).

use mfpa_lint::lint_source;

/// All fixtures are linted as crate `core`, which is in scope for every
/// rule in the catalog (d1 no-par, d2 ordered-output, d3 deterministic,
/// d4/d5 everywhere-in-lib, d6 counter crates).
const CRATE: &str = "core";

fn case(rule: &str, bad: &str, allowed: &str) {
    let findings = lint_source(CRATE, "bad.rs", bad);
    let unsuppressed: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
    assert_eq!(
        unsuppressed.len(),
        1,
        "{rule} bad fixture: expected exactly one unsuppressed finding, got {findings:#?}"
    );
    assert_eq!(unsuppressed[0].rule, rule, "{rule} bad fixture: wrong rule");

    let findings = lint_source(CRATE, "allowed.rs", allowed);
    let unsuppressed: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
    assert!(
        unsuppressed.is_empty(),
        "{rule} allowed fixture: expected no unsuppressed findings, got {unsuppressed:#?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == rule && f.suppressed.is_some()),
        "{rule} allowed fixture: the allow must still be recorded as a suppressed finding"
    );
}

#[test]
fn d1_thread_outside_par() {
    case(
        "d1",
        include_str!("fixtures/d1_bad.rs"),
        include_str!("fixtures/d1_allowed.rs"),
    );
}

#[test]
fn d2_unordered_iteration() {
    case(
        "d2",
        include_str!("fixtures/d2_bad.rs"),
        include_str!("fixtures/d2_allowed.rs"),
    );
}

#[test]
fn d3_wall_clock_entropy() {
    case(
        "d3",
        include_str!("fixtures/d3_bad.rs"),
        include_str!("fixtures/d3_allowed.rs"),
    );
}

#[test]
fn d4_partial_float_order() {
    case(
        "d4",
        include_str!("fixtures/d4_bad.rs"),
        include_str!("fixtures/d4_allowed.rs"),
    );
}

#[test]
fn d5_panic_in_library() {
    case(
        "d5",
        include_str!("fixtures/d5_bad.rs"),
        include_str!("fixtures/d5_allowed.rs"),
    );
}

#[test]
fn d6_truncating_cast() {
    case(
        "d6",
        include_str!("fixtures/d6_bad.rs"),
        include_str!("fixtures/d6_allowed.rs"),
    );
}

#[test]
fn d10_float_reduction_order() {
    case(
        "d10",
        include_str!("fixtures/d10_bad.rs"),
        include_str!("fixtures/d10_allowed.rs"),
    );
}

#[test]
fn d11_codec_symmetry() {
    case(
        "d11",
        include_str!("fixtures/d11_bad.rs"),
        include_str!("fixtures/d11_allowed.rs"),
    );
}

#[test]
fn d12_decoder_bounds() {
    case(
        "d12",
        include_str!("fixtures/d12_bad.rs"),
        include_str!("fixtures/d12_allowed.rs"),
    );
}

#[test]
fn d13_unproven_counter_subtraction() {
    case(
        "d13",
        include_str!("fixtures/d13_bad.rs"),
        include_str!("fixtures/d13_allowed.rs"),
    );
}

#[test]
fn d14_unguarded_division() {
    case(
        "d14",
        include_str!("fixtures/d14_bad.rs"),
        include_str!("fixtures/d14_allowed.rs"),
    );
}

#[test]
fn d15_unit_mixing() {
    case(
        "d15",
        include_str!("fixtures/d15_bad.rs"),
        include_str!("fixtures/d15_allowed.rs"),
    );
}

#[test]
fn bench_crate_is_exempt_from_panic_and_timing_rules() {
    let src = include_str!("fixtures/d3_bad.rs");
    assert!(
        lint_source("bench", "bad.rs", src).is_empty(),
        "bench is a CLI harness; timing is allowed there"
    );
    let src = include_str!("fixtures/d5_bad.rs");
    assert!(
        lint_source("bench", "bad.rs", src).is_empty(),
        "bench is a CLI harness; unwrap is allowed there"
    );
}
