//! Tests for the value-range layer: interval lattice laws and widening
//! termination (property-tested), guard refinement, interprocedural
//! summaries, and the d13/d14/d15 judgments on small sources.

use std::collections::BTreeMap;

use mfpa_lint::absint::{dimension_of, interpret, type_range, FnAbs, Interval};
use mfpa_lint::lexer::{tokenize, TokenKind};
use mfpa_lint::lint_source;
use proptest::prelude::*;

/// Interprets the *last* function in `src` with no call summaries.
fn abs_of(src: &str) -> FnAbs {
    let tokens = tokenize(src);
    let code: Vec<_> = tokens
        .into_iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment { .. }))
        .collect();
    let parsed = mfpa_lint::parser::parse(&code);
    let f = parsed.functions.last().expect("fixture declares a fn");
    interpret(&code, f, &BTreeMap::new(), false)
}

fn iv(lo: i128, hi: i128) -> Interval {
    Interval::new(lo, hi)
}

proptest! {
    /// `join` is a least upper bound: commutative, idempotent, and
    /// containing both operands.
    #[test]
    fn join_is_an_upper_bound(a in any::<i64>(), b in any::<i64>(), c in any::<i64>(), d in any::<i64>()) {
        let x = iv(a.min(b).into(), a.max(b).into());
        let y = iv(c.min(d).into(), c.max(d).into());
        let j = x.join(&y);
        prop_assert_eq!(j, y.join(&x));
        prop_assert_eq!(x.join(&x), x);
        prop_assert!(j.lo <= x.lo && j.hi >= x.hi);
        prop_assert!(j.lo <= y.lo && j.hi >= y.hi);
    }

    /// `meet` is a greatest lower bound when it exists, and absorption
    /// holds: `a ⊔ (a ⊓ b) = a`.
    #[test]
    fn meet_is_a_lower_bound_with_absorption(a in any::<i64>(), b in any::<i64>(), c in any::<i64>(), d in any::<i64>()) {
        let x = iv(a.min(b).into(), a.max(b).into());
        let y = iv(c.min(d).into(), c.max(d).into());
        prop_assert_eq!(x.meet(&y), y.meet(&x));
        prop_assert_eq!(x.meet(&x), Some(x));
        if let Some(m) = x.meet(&y) {
            prop_assert!(m.lo >= x.lo.max(y.lo) && m.hi <= x.hi.min(y.hi));
            prop_assert_eq!(x.join(&m), x);
        } else {
            // Disjoint: one interval lies strictly past the other.
            prop_assert!(x.hi < y.lo || y.hi < x.lo);
        }
    }

    /// Widening terminates: each bound moves at most once (straight to
    /// the cap), so any widening sequence changes value at most twice.
    #[test]
    fn widening_stabilizes_after_two_moves(
        seed in any::<i64>(),
        steps in prop::collection::vec((any::<i64>(), any::<i64>()), 1..8),
    ) {
        let mut x = Interval::exact(seed.into());
        let mut changes = 0usize;
        for (a, b) in steps {
            let next = x.widen(&iv(a.min(b).into(), a.max(b).into()));
            if next != x {
                changes += 1;
            }
            prop_assert!(next.lo <= x.lo && next.hi >= x.hi, "widening must ascend");
            x = next;
        }
        prop_assert!(changes <= 2, "{changes} changes");
        prop_assert_eq!(x.widen(&x), x);
    }

    /// Arithmetic is sound on singletons: the concrete result is a
    /// member of the abstract one.
    #[test]
    fn singleton_arithmetic_is_exact(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let (a, b) = (i128::from(a), i128::from(b));
        prop_assert_eq!(Interval::exact(a).add(&Interval::exact(b)), Interval::exact(a + b));
        prop_assert_eq!(Interval::exact(a).sub(&Interval::exact(b)), Interval::exact(a - b));
        prop_assert_eq!(Interval::exact(a).mul(&Interval::exact(b)), Interval::exact(a * b));
    }
}

#[test]
fn type_ranges_cover_the_integer_menagerie() {
    assert_eq!(type_range("u8"), Some(iv(0, 255)));
    assert_eq!(type_range("i8"), Some(iv(-128, 127)));
    assert_eq!(type_range("u32"), Some(iv(0, u32::MAX.into())));
    assert!(type_range("u64").is_some());
    assert!(type_range("usize").is_some());
    assert_eq!(type_range("f64"), None);
    assert_eq!(type_range("String"), None);
}

#[test]
fn dimension_suffixes_and_prefixes() {
    assert_eq!(dimension_of("uptime_ms"), Some("milliseconds"));
    assert_eq!(dimension_of("age_days"), Some("days"));
    assert_eq!(dimension_of("host_bytes"), Some("bytes"));
    assert_eq!(dimension_of("capacity_gib"), Some("gibibytes"));
    assert_eq!(dimension_of("n_drives"), dimension_of("n_rows"));
    assert_eq!(dimension_of("plain"), None);
}

#[test]
fn unguarded_counter_subtraction_is_d13() {
    let out = abs_of("fn f(poh_days: u64, window_days: u64) -> u64 { poh_days - window_days }");
    assert_eq!(out.d13.len(), 1, "{out:#?}");
    assert!(out.d13[0].what.contains("not proven"), "{:?}", out.d13[0]);
}

#[test]
fn dominating_order_guard_clears_d13() {
    let out = abs_of(
        "fn f(poh_days: u64, window_days: u64) -> u64 {
            if window_days <= poh_days { poh_days - window_days } else { 0 }
        }",
    );
    assert!(out.d13.is_empty(), "{out:#?}");
}

#[test]
fn early_return_guard_clears_d13() {
    let out = abs_of(
        "fn f(poh_days: u64, window_days: u64) -> u64 {
            if window_days > poh_days { return 0; }
            poh_days - window_days
        }",
    );
    assert!(out.d13.is_empty(), "{out:#?}");
}

#[test]
fn saturating_sub_is_never_d13() {
    let out = abs_of(
        "fn f(poh_days: u64, window_days: u64) -> u64 { poh_days.saturating_sub(window_days) }",
    );
    assert!(out.d13.is_empty(), "{out:#?}");
}

#[test]
fn certain_narrowing_overflow_is_d13() {
    let out = abs_of("fn f() -> u8 { let x_count: u8 = 300; x_count }");
    assert_eq!(out.d13.len(), 1, "{out:#?}");
}

#[test]
fn unguarded_integer_denominator_is_d14() {
    let out = abs_of("fn f(err_count: u64, n_reads: u64) -> u64 { err_count / n_reads }");
    assert_eq!(out.d14.len(), 1, "{out:#?}");
    assert!(out.d14[0].what.contains("may be zero"), "{:?}", out.d14[0]);
}

#[test]
fn nonzero_guard_clears_d14() {
    for guard in [
        "if n_reads == 0 { return 0; } err_count / n_reads",
        "if n_reads > 0 { err_count / n_reads } else { 0 }",
        "if n_reads != 0 { err_count / n_reads } else { 0 }",
    ] {
        let out = abs_of(&format!(
            "fn f(err_count: u64, n_reads: u64) -> u64 {{ {guard} }}"
        ));
        assert!(
            out.d14.is_empty(),
            "guard `{guard}` did not clear: {out:#?}"
        );
    }
}

#[test]
fn max_one_floor_clears_d14() {
    let out = abs_of("fn f(err_count: u64, n_reads: u64) -> u64 { err_count / n_reads.max(1) }");
    assert!(out.d14.is_empty(), "{out:#?}");
}

#[test]
fn pure_float_division_is_out_of_d14_scope() {
    let out = abs_of("fn f(z: f64) -> f64 { 1.0 / (1.0 + z) }");
    assert!(out.d14.is_empty(), "{out:#?}");
}

#[test]
fn len_derived_float_denominator_is_d14() {
    let out = abs_of("fn f(xs: &[f64], total: f64) -> f64 { total / xs.len() as f64 }");
    assert_eq!(out.d14.len(), 1, "{out:#?}");
}

#[test]
fn unit_mixing_is_d15_and_conversion_helpers_launder() {
    let out = abs_of("fn f(uptime_ms: u64, age_days: u64) -> u64 { uptime_ms + age_days }");
    assert_eq!(out.d15.len(), 1, "{out:#?}");
    assert!(
        out.d15[0].what.contains("unit mismatch"),
        "{:?}",
        out.d15[0]
    );

    let out =
        abs_of("fn f(uptime_ms: u64, age_days: u64) -> u64 { uptime_ms + days_to_ms(age_days) }");
    assert!(out.d15.is_empty(), "{out:#?}");
}

#[test]
fn same_dimension_arithmetic_is_not_d15() {
    let out = abs_of("fn f(read_ms: u64, write_ms: u64) -> u64 { read_ms + write_ms }");
    assert!(out.d15.is_empty(), "{out:#?}");
}

#[test]
fn loops_terminate_via_widening_and_fuel() {
    // A loop that grows a counter forever must still analyze in finite
    // time, and the widened var must not report a certain overflow.
    let out = abs_of(
        "fn f(n_rows: u64) -> u64 {
            let mut acc_count = 0u64;
            for i in 0..n_rows {
                acc_count += i;
            }
            acc_count
        }",
    );
    assert!(out.d13.is_empty(), "{out:#?}");
}

#[test]
fn callee_summary_proves_denominator_nonzero() {
    // `floor_reads` returns `[1, 2^64)`; the caller's division is
    // provable only through the bottom-up summary.
    let src = "
        pub struct DriveMonitor;
        impl DriveMonitor {
            pub fn ingest(&mut self, err_count: u64, n_reads: u64) -> u64 {
                err_count / floor_reads(n_reads)
            }
        }
        fn floor_reads(n_reads: u64) -> u64 {
            if n_reads == 0 { 1 } else { n_reads }
        }
    ";
    let findings = lint_source("core", "monitor.rs", src);
    assert!(
        !findings.iter().any(|f| f.rule == "d14"),
        "summary should prove the denominator: {findings:#?}"
    );

    // Same shape, but the helper passes zero through: the summary now
    // includes zero and the caller's division fires.
    let src = src.replace("if n_reads == 0 { 1 } else { n_reads }", "n_reads");
    let findings = lint_source("core", "monitor.rs", &src);
    assert!(
        findings.iter().any(|f| f.rule == "d14"),
        "pass-through summary must not prove anything: {findings:#?}"
    );
}

#[test]
fn interval_display_renders_powers_of_two() {
    assert_eq!(Interval::top().to_string(), "⊤");
    assert_eq!(Interval::exact(7).to_string(), "[7, 7]");
    assert_eq!(iv(0, (1i128 << 64) - 1).to_string(), "[0, 2^64)");
}
