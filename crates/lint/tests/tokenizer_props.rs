//! The analysis stack is total: any byte sequence (lossily decoded)
//! must flow through the lexer — and the full pipeline behind it
//! (parser, dataflow, call graph, codec pairing) — without panicking,
//! including unterminated strings, comments, raw-string hash runs,
//! lone quotes, and closure/codec-shaped fragments.

use mfpa_lint::lexer::tokenize;
use mfpa_lint::lint_source;
use proptest::prelude::*;

proptest! {
    #[test]
    fn tokenize_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = tokenize(&src);
    }

    #[test]
    fn tokenize_never_panics_on_quote_heavy_input(
        parts in prop::collection::vec(0usize..8, 0..64),
    ) {
        // Bias the input toward the lexer's tricky state machine:
        // quotes, hashes, escapes and comment markers in random order.
        const ATOMS: [&str; 8] = ["\"", "'", "#", "r", "b", "\\", "/*", "//"];
        let src: String = parts.iter().map(|&i| ATOMS[i]).collect();
        let _ = tokenize(&src);
    }

    #[test]
    fn full_pipeline_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // `lint_source` drives every layer: parser item recovery,
        // per-function dataflow (d10–d12 facts), the call graph with
        // decode-root reachability, codec pairing, and emission.
        let src = String::from_utf8_lossy(&bytes);
        let _ = lint_source("core", "crates/core/src/fuzz.rs", &src);
    }

    #[test]
    fn full_pipeline_never_panics_on_closure_and_codec_shaped_input(
        parts in prop::collection::vec(0usize..16, 0..96),
    ) {
        // Bias toward the dataflow layer's state machines: closure
        // pipes, compound assignment, range loops, slice indexing,
        // codec-vocabulary calls and match arms in random order.
        const ATOMS: [&str; 16] = [
            "fn encode_x(", "fn decode_x(", "w.u32(", "rd.u64()", "|a, b| ",
            "for i in 0..n ", "x[i]", "+= 1.0", "ordered_map(", "map_reduce(",
            "{", "}", ";", ",", "match t ", "=> ",
        ];
        let src: String = parts.iter().map(|&i| ATOMS[i]).collect();
        let _ = lint_source("core", "crates/core/src/fuzz.rs", &src);
    }

    #[test]
    fn full_pipeline_never_panics_on_arithmetic_shaped_input(
        parts in prop::collection::vec(0usize..20, 0..96),
    ) {
        // Bias toward the value-range interpreter's state machines:
        // guards, counter arithmetic, casts, shifts, unit-suffixed
        // idents, loops and early returns in random order.
        const ATOMS: [&str; 20] = [
            "fn ingest(", "poh_days: u64", "window_days", "if ", "<= ",
            "== 0 ", "return 0; ", "else ", "- ", "/ ",
            "as u32", "as f64", "<< ", ".max(1)", ".len()",
            "uptime_ms", "let mut n_count = ", "while ", "loop ", "break; ",
        ];
        let src: String = parts.iter().map(|&i| ATOMS[i]).collect();
        let _ = lint_source("core", "crates/core/src/fuzz.rs", &src);
    }
}
