//! The lexer is total: any byte sequence (lossily decoded) must produce
//! a token stream without panicking, including unterminated strings,
//! comments, raw-string hash runs and lone quotes.

use mfpa_lint::lexer::tokenize;
use proptest::prelude::*;

proptest! {
    #[test]
    fn tokenize_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = tokenize(&src);
    }

    #[test]
    fn tokenize_never_panics_on_quote_heavy_input(
        parts in prop::collection::vec(0usize..8, 0..64),
    ) {
        // Bias the input toward the lexer's tricky state machine:
        // quotes, hashes, escapes and comment markers in random order.
        const ATOMS: [&str; 8] = ["\"", "'", "#", "r", "b", "\\", "/*", "//"];
        let src: String = parts.iter().map(|&i| ATOMS[i]).collect();
        let _ = tokenize(&src);
    }
}
