//! End-to-end tests for the interprocedural layer: the fixture
//! workspace under `tests/fixtures/ws/` is linted as a whole, its call
//! graph is pinned to a golden snapshot, and the parser and graph
//! builder are property-tested total.

use std::path::PathBuf;

use mfpa_lint::{build_call_graph, lint_files, LintOptions, SourceFile};
use proptest::prelude::*;

fn fixture_ws() -> Vec<SourceFile> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    mfpa_lint::collect_workspace(&root).expect("fixture workspace readable")
}

/// The fixture workspace produces one finding per planted defect, each
/// carrying the full root-to-sink call chain.
#[test]
fn fixture_workspace_findings_carry_full_chains() {
    let report = lint_files(&fixture_ws(), LintOptions::default());
    let findings: Vec<_> = report.unsuppressed().collect();

    let d8: Vec<_> = findings.iter().filter(|f| f.rule == "d8").collect();
    assert_eq!(d8.len(), 1, "{findings:#?}");
    assert_eq!(d8[0].file, "crates/core/src/sanitize.rs");
    assert_eq!(
        d8[0].chain,
        [
            "core::pipeline::Mfpa::prepare",
            "core::sanitize::clean",
            "core::sanitize::leaf",
        ],
        "unwrap two calls below `pipeline::prepare` must show the route"
    );

    let d7: Vec<_> = findings.iter().filter(|f| f.rule == "d7").collect();
    assert_eq!(d7.len(), 1, "{findings:#?}");
    assert_eq!(
        d7[0].chain,
        [
            "fleetsim::fleet::SimulatedFleet::generate",
            "fleetsim::fleet::census",
        ],
        "HashMap iteration reached from `fleet::generate` is d7"
    );

    let d9: Vec<_> = findings.iter().filter(|f| f.rule == "d9").collect();
    assert_eq!(d9.len(), 1, "{findings:#?}");
    assert_eq!(
        d9[0].chain,
        [
            "fleetsim::fleet::SimulatedFleet::generate",
            "fleetsim::fleet::tick",
        ],
        "clock escape reached from `fleet::generate` is d9"
    );

    // `orphan` is unreachable from every root: its unwrap stays a
    // crate-scoped lexical d5, with the enclosing function as chain.
    let d5: Vec<_> = findings.iter().filter(|f| f.rule == "d5").collect();
    assert_eq!(d5.len(), 1, "{findings:#?}");
    assert_eq!(d5[0].chain, ["fleetsim::fleet::orphan"]);

    // The unguarded ratio in `metrics` is a value-range d14, carrying
    // both the route from the root and the interval evidence.
    let d14: Vec<_> = findings.iter().filter(|f| f.rule == "d14").collect();
    assert_eq!(d14.len(), 1, "{findings:#?}");
    assert_eq!(d14[0].file, "crates/core/src/metrics.rs");
    assert_eq!(
        d14[0].chain,
        [
            "core::pipeline::Mfpa::prepare",
            "core::metrics::failure_ratio",
        ],
        "the division two calls below the root must show the route"
    );
    assert!(
        d14[0].message.contains("may be zero"),
        "{:?}",
        d14[0].message
    );

    // Nothing else fires, and every finding names its location.
    assert_eq!(findings.len(), 5, "{findings:#?}");
    for f in &findings {
        assert!(!f.chain.is_empty(), "finding without a chain: {f:#?}");
    }
}

/// The fixture workspace's call graph, pinned as a golden snapshot.
/// Re-bless with `MFPA_BLESS=1 cargo test -p mfpa-lint --test
/// interprocedural` after an intended resolver change.
#[test]
fn fixture_workspace_call_graph_matches_golden() {
    let pretty = mfpa_lint::pretty_json(&build_call_graph(&fixture_ws()).to_json());
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/callgraph_ws.json");
    if std::env::var_os("MFPA_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, pretty).expect("write golden");
        return;
    }
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\nrun `MFPA_BLESS=1 cargo test -p mfpa-lint \
             --test interprocedural` to create it",
            path.display()
        )
    });
    assert_eq!(
        pretty, stored,
        "call graph drifted from tests/golden/callgraph_ws.json — if the \
         change is intended, re-bless with MFPA_BLESS=1 and review the diff"
    );
}

/// The fixture workspace's SARIF rendering, pinned as a golden
/// snapshot: rule catalog, results, codeFlows for the chains. Re-bless
/// with `MFPA_BLESS=1 cargo test -p mfpa-lint --test interprocedural`.
#[test]
fn fixture_workspace_sarif_matches_golden() {
    let report = lint_files(&fixture_ws(), LintOptions::default());
    let pretty = mfpa_lint::pretty_json(&mfpa_lint::sarif::to_sarif(&report));
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sarif_ws.json");
    if std::env::var_os("MFPA_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, pretty).expect("write golden");
        return;
    }
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\nrun `MFPA_BLESS=1 cargo test -p mfpa-lint \
             --test interprocedural` to create it",
            path.display()
        )
    });
    assert_eq!(
        pretty, stored,
        "SARIF output drifted from tests/golden/sarif_ws.json — if the \
         change is intended, re-bless with MFPA_BLESS=1 and review the diff"
    );
}

/// The scan runs on the `mfpa_par` pool; graph and report must be
/// bit-identical at every worker count.
#[test]
fn graph_and_report_are_identical_at_one_and_four_workers() {
    let files = fixture_ws();
    let prev = std::env::var(mfpa_par::THREADS_ENV).ok();
    let at = |n: &str| {
        std::env::set_var(mfpa_par::THREADS_ENV, n);
        let graph = mfpa_lint::pretty_json(&build_call_graph(&files).to_json());
        let report = lint_files(&files, LintOptions::default())
            .to_json()
            .to_string();
        (graph, report)
    };
    let one = at("1");
    let four = at("4");
    match prev {
        Some(v) => std::env::set_var(mfpa_par::THREADS_ENV, v),
        None => std::env::remove_var(mfpa_par::THREADS_ENV),
    }
    assert_eq!(one, four);
}

proptest! {
    /// The parser is total: any byte soup tokenizes and parses without
    /// panicking.
    #[test]
    fn parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let tokens = mfpa_lint::lexer::tokenize(&src);
        let _ = mfpa_lint::parser::parse(&tokens);
    }

    /// Bias the input toward the parser's state machine: item keywords,
    /// braces, paths and attributes in random order.
    #[test]
    fn parse_never_panics_on_rust_shaped_input(
        parts in prop::collection::vec(0usize..12, 0..96),
    ) {
        const ATOMS: [&str; 12] = [
            "fn ", "impl ", "for ", "use ", "{", "}", "(", ")", "::", ".", "#", "x",
        ];
        let src: String = parts.iter().map(|&i| ATOMS[i]).collect();
        let tokens = mfpa_lint::lexer::tokenize(&src);
        let _ = mfpa_lint::parser::parse(&tokens);
    }

    /// The whole graph pipeline is total over arbitrary file sets.
    #[test]
    fn call_graph_never_panics(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 0..4),
    ) {
        let files: Vec<SourceFile> = chunks
            .iter()
            .enumerate()
            .map(|(i, bytes)| SourceFile {
                crate_name: "core".to_owned(),
                label: format!("crates/core/src/f{i}.rs"),
                text: String::from_utf8_lossy(bytes).into_owned(),
            })
            .collect();
        let _ = build_call_graph(&files);
    }
}
