//! Per-gap lexer fixtures: shebang lines, raw identifiers and inner
//! attributes. Each fixture plants exactly one `unwrap()` after the
//! tricky construct; the lint must report it at the exact line, which
//! proves both that tokenization survives the construct and that line
//! accounting is not shifted by it.

use mfpa_lint::lint_source;

fn single_d5_at(label: &str, src: &str, line: u32) {
    let findings = lint_source("core", label, src);
    let bad: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
    assert_eq!(
        bad.len(),
        1,
        "{label}: expected exactly one finding, got {findings:#?}"
    );
    assert_eq!(bad[0].rule, "d5", "{label}: wrong rule");
    assert_eq!(bad[0].line, line, "{label}: wrong line");
}

#[test]
fn shebang_line_lexes_as_a_comment() {
    single_d5_at(
        "crates/core/src/shebang.rs",
        include_str!("fixtures/lexer_shebang.rs"),
        6,
    );
}

#[test]
fn inner_attribute_at_file_start_is_not_a_shebang() {
    single_d5_at(
        "crates/core/src/inner_attr.rs",
        include_str!("fixtures/lexer_inner_attr.rs"),
        6,
    );
}

#[test]
fn raw_identifiers_lex_as_single_tokens() {
    single_d5_at(
        "crates/core/src/raw_idents.rs",
        include_str!("fixtures/lexer_raw_idents.rs"),
        11,
    );
}
