//! Workspace-wide, name-resolved call graph over the parsed item
//! trees, with conservative fallback edges where name resolution
//! cannot pin a callee down.
//!
//! Resolution is deliberately sound-leaning rather than precise:
//!
//! - `a::b::f(..)` resolves by suffix against every workspace function
//!   whose name, type/trait and module segments match; `crate::` pins
//!   the caller's crate, `mfpa_x::` pins crate `x`, `Self::` is
//!   substituted with the caller's `impl` type.
//! - an unqualified `f(..)` resolves to a free function in the
//!   caller's own module, then through the file's `use` imports, and
//!   otherwise **falls back** to every free function named `f` in the
//!   workspace.
//! - `recv.method(..)` cannot be typed at this level: `self.method()`
//!   resolves against the caller's `impl` block when possible, and
//!   everything else gets a fallback edge to *every* workspace method
//!   of that name.
//!
//! Fallback edges over-approximate reachability, which is the safe
//! direction for the d7–d9 rules: a function is only ever wrongly
//! *included* in the deterministic perimeter, never wrongly excluded.

use crate::dataflow::FnFlow;
use crate::lexer::Token;
use crate::parser::{Callee, ParsedFile};
use crate::taint::FnFacts;
use std::collections::BTreeMap;

/// One function in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Fully qualified display name
    /// (`crate::module::Type::fn` / `crate::module::fn`).
    pub qname: String,
    /// Crate directory name (`core`, `ml`, …, `suite`).
    pub crate_name: String,
    /// Module segments: file-derived path plus in-file `mod`s.
    pub modules: Vec<String>,
    /// `impl` type, when the fn is an inherent or trait method.
    pub type_name: Option<String>,
    /// Trait, for `impl Trait for Type` methods and trait defaults.
    pub trait_name: Option<String>,
    /// Bare function name.
    pub name: String,
    /// Workspace-relative file label.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
    /// Intra-function facts from the taint analyzer.
    pub facts: FnFacts,
    /// Intra-function dataflow facts (d10–d12 raw material).
    pub flow: FnFlow,
}

/// One call edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Caller node index.
    pub caller: usize,
    /// Callee node index.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// Whether this edge comes from conservative fallback resolution
    /// (unresolvable method call or unqualified name) rather than an
    /// exact match.
    pub fallback: bool,
}

/// One parsed file plus the context the graph builder needs.
#[derive(Debug, Clone)]
pub struct FileItems {
    /// Crate directory name (`core`, …, `suite`).
    pub crate_name: String,
    /// Workspace-relative file label.
    pub label: String,
    /// Module segments derived from the file's path under `src/`.
    pub mod_path: Vec<String>,
    /// The parsed item tree.
    pub parsed: ParsedFile,
    /// Per-function facts, parallel to `parsed.functions`.
    pub facts: Vec<FnFacts>,
    /// Per-function dataflow facts, parallel to `parsed.functions`.
    pub flows: Vec<FnFlow>,
    /// The comment-free token stream the items were parsed from, for
    /// downstream token-level passes (the value-range interpreter).
    pub code: Vec<Token>,
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All functions, in deterministic (file, source) order.
    pub nodes: Vec<FnNode>,
    /// All edges, sorted by (caller, callee, line), deduplicated.
    pub edges: Vec<Edge>,
    /// Adjacency: for each node, indices of outgoing edges.
    pub out_edges: Vec<Vec<usize>>,
}

/// Derives the module path of a library source file from its
/// workspace-relative label: `crates/ml/src/nn/cnn_lstm.rs` →
/// `["nn", "cnn_lstm"]`; `lib.rs`, `main.rs` and `mod.rs` contribute
/// no segment of their own.
pub fn module_path_from_label(label: &str) -> Vec<String> {
    let rel = label
        .split_once("src/")
        .map(|(_, rest)| rest)
        .unwrap_or(label);
    let mut segs: Vec<String> = rel.split('/').map(str::to_owned).collect();
    let Some(last) = segs.pop() else {
        return segs;
    };
    match last.strip_suffix(".rs") {
        Some("lib") | Some("main") | Some("mod") => {}
        Some(stem) => segs.push(stem.to_owned()),
        None => {}
    }
    segs
}

/// Maps a path segment that names a workspace crate (`mfpa_ml`,
/// `mfpa_core`, …) to its crate directory name.
fn crate_of_segment(seg: &str) -> Option<&str> {
    seg.strip_prefix("mfpa_")
}

impl CallGraph {
    /// Builds the graph from every parsed file. Deterministic in its
    /// input order; files should be pre-sorted by label.
    pub fn build(files: &[FileItems]) -> CallGraph {
        let mut g = CallGraph::default();
        // File index parallel to nodes, for import lookup.
        let mut node_file: Vec<usize> = Vec::new();
        for (fx, file) in files.iter().enumerate() {
            let fns = file
                .parsed
                .functions
                .iter()
                .zip(&file.facts)
                .zip(&file.flows);
            for ((f, facts), flow) in fns {
                let mut modules = file.mod_path.clone();
                modules.extend(f.modules.iter().cloned());
                let mut qparts: Vec<&str> = vec![file.crate_name.as_str()];
                qparts.extend(modules.iter().map(String::as_str));
                if let Some(t) = &f.impl_type {
                    qparts.push(t);
                } else if let Some(t) = &f.trait_name {
                    qparts.push(t);
                }
                qparts.push(&f.name);
                g.nodes.push(FnNode {
                    qname: qparts.join("::"),
                    crate_name: file.crate_name.clone(),
                    modules,
                    type_name: f.impl_type.clone(),
                    trait_name: f.trait_name.clone(),
                    name: f.name.clone(),
                    file: file.label.clone(),
                    line: f.line,
                    end_line: f.end_line,
                    facts: facts.clone(),
                    flow: flow.clone(),
                });
                node_file.push(fx);
            }
        }

        // Name → node indices, for all resolution strategies.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (ix, n) in g.nodes.iter().enumerate() {
            by_name.entry(n.name.as_str()).or_default().push(ix);
        }

        let mut raw_edges: Vec<Edge> = Vec::new();
        let mut caller_ix = 0usize;
        for file in files {
            for f in &file.parsed.functions {
                for call in &f.calls {
                    let targets = resolve(&g, &by_name, files, caller_ix, &call.callee);
                    for (callee, fallback) in targets {
                        raw_edges.push(Edge {
                            caller: caller_ix,
                            callee,
                            line: call.line,
                            fallback,
                        });
                    }
                }
                caller_ix += 1;
            }
        }
        raw_edges.sort_by(|a, b| {
            (a.caller, a.callee, a.line, a.fallback).cmp(&(b.caller, b.callee, b.line, b.fallback))
        });
        raw_edges.dedup_by(|a, b| a.caller == b.caller && a.callee == b.callee);
        g.out_edges = vec![Vec::new(); g.nodes.len()];
        for (ex, e) in raw_edges.iter().enumerate() {
            if let Some(out) = g.out_edges.get_mut(e.caller) {
                out.push(ex);
            }
        }
        g.edges = raw_edges;
        g
    }

    /// Serializes the graph for the golden-snapshot test: nodes in
    /// order with their resolved edges as qualified names.
    pub fn to_json(&self) -> serde_json::Value {
        let nodes: Vec<serde_json::Value> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(ix, n)| {
                let calls: Vec<serde_json::Value> = self
                    .out_edges
                    .get(ix)
                    .map(|edges| {
                        edges
                            .iter()
                            .filter_map(|&ex| self.edges.get(ex))
                            .map(|e| {
                                serde_json::json!({
                                    "to": self
                                        .nodes
                                        .get(e.callee)
                                        .map(|c| c.qname.clone())
                                        .unwrap_or_default(),
                                    "line": e.line,
                                    "kind": if e.fallback { "fallback" } else { "resolved" },
                                })
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                serde_json::json!({
                    "fn": n.qname,
                    "file": n.file,
                    "line": n.line,
                    "calls": calls,
                })
            })
            .collect();
        serde_json::json!({ "functions": nodes })
    }
}

/// Resolves one call site to zero or more target nodes; the bool marks
/// fallback (over-approximate) edges.
fn resolve(
    g: &CallGraph,
    by_name: &BTreeMap<&str, Vec<usize>>,
    files: &[FileItems],
    caller_ix: usize,
    callee: &Callee,
) -> Vec<(usize, bool)> {
    let Some(caller) = g.nodes.get(caller_ix) else {
        return Vec::new();
    };
    match callee {
        Callee::Method(name, recv) => {
            // `self.method()` first tries the caller's own impl type.
            if recv.as_deref() == Some("self") {
                if let Some(own_type) = &caller.type_name {
                    let own: Vec<(usize, bool)> = named(by_name, name)
                        .iter()
                        .filter(|&&ix| g.nodes[ix].type_name.as_deref() == Some(own_type))
                        .map(|&ix| (ix, false))
                        .collect();
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            // Conservative fallback: every workspace method of that
            // name could be the callee.
            named(by_name, name)
                .iter()
                .filter(|&&ix| g.nodes[ix].type_name.is_some() || g.nodes[ix].trait_name.is_some())
                .map(|&ix| (ix, true))
                .collect()
        }
        Callee::Path(segs) => resolve_path(g, by_name, files, caller_ix, segs),
    }
}

fn named<'a>(by_name: &'a BTreeMap<&str, Vec<usize>>, name: &str) -> &'a [usize] {
    by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
}

/// Resolves a path call after normalizing `crate`/`self`/`super`/
/// `Self`/`mfpa_x` prefixes.
fn resolve_path(
    g: &CallGraph,
    by_name: &BTreeMap<&str, Vec<usize>>,
    files: &[FileItems],
    caller_ix: usize,
    segs: &[String],
) -> Vec<(usize, bool)> {
    let Some(caller) = g.nodes.get(caller_ix) else {
        return Vec::new();
    };
    let mut pin_crate: Option<String> = None;
    let mut path: Vec<String> = Vec::new();
    for (k, seg) in segs.iter().enumerate() {
        match seg.as_str() {
            "crate" | "self" if k == 0 => pin_crate = Some(caller.crate_name.clone()),
            "super" => {} // approximate: drop the segment, keep suffix matching
            "Self" => {
                if let Some(t) = &caller.type_name {
                    path.push(t.clone());
                } else {
                    path.push(seg.clone());
                }
            }
            s => {
                if k == 0 {
                    if let Some(c) = crate_of_segment(s) {
                        pin_crate = Some(c.to_owned());
                        continue;
                    }
                }
                path.push(seg.clone());
            }
        }
    }
    let Some(name) = path.last().cloned() else {
        return Vec::new();
    };
    let quals = &path[..path.len().saturating_sub(1)];

    if quals.is_empty() && pin_crate.is_none() {
        // Unqualified `f()`: same-module free fn, then imports, then
        // workspace-wide fallback.
        let same_module: Vec<(usize, bool)> = named(by_name, &name)
            .iter()
            .filter(|&&ix| {
                let n = &g.nodes[ix];
                n.type_name.is_none()
                    && n.trait_name.is_none()
                    && n.crate_name == caller.crate_name
                    && n.modules == caller.modules
            })
            .map(|&ix| (ix, false))
            .collect();
        if !same_module.is_empty() {
            return same_module;
        }
        if let Some(file) = files.iter().find(|f| f.label == caller.file) {
            for imp in &file.parsed.imports {
                if imp.alias == name && imp.path.len() > 1 {
                    let resolved = resolve_path(g, by_name, files, caller_ix, &imp.path);
                    if !resolved.is_empty() {
                        return resolved;
                    }
                }
            }
        }
        return named(by_name, &name)
            .iter()
            .filter(|&&ix| {
                let n = &g.nodes[ix];
                n.type_name.is_none() && n.trait_name.is_none()
            })
            .map(|&ix| (ix, true))
            .collect();
    }

    // Qualified path: every remaining qualifier must match the
    // candidate's type/trait (uppercase segments) or appear among its
    // crate/module segments.
    named(by_name, &name)
        .iter()
        .filter(|&&ix| {
            let n = &g.nodes[ix];
            if let Some(pin) = &pin_crate {
                if n.crate_name != *pin {
                    return false;
                }
            }
            quals.iter().all(|q| {
                n.type_name.as_deref() == Some(q)
                    || n.trait_name.as_deref() == Some(q)
                    || n.modules.iter().any(|m| m == q)
                    || n.crate_name == *q
            })
        })
        .map(|&ix| (ix, false))
        .collect()
}

/// A reachability result: per node, the shortest call chain from a
/// deterministic root (inclusive of both ends), when one exists.
#[derive(Debug, Clone, Default)]
pub struct Reachability {
    /// `chains[ix]` is `Some(root → … → node)` iff node `ix` is
    /// reachable from a declared root.
    pub chains: Vec<Option<Vec<usize>>>,
}

impl Reachability {
    /// Breadth-first reachability from every node matching a root
    /// spec. Deterministic: roots and adjacency are visited in node
    /// order, so ties in chain length break identically on every run.
    pub fn compute(g: &CallGraph, root_specs: &[&str]) -> Reachability {
        let mut parent: Vec<Option<usize>> = vec![None; g.nodes.len()];
        let mut seen: Vec<bool> = vec![false; g.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for (ix, n) in g.nodes.iter().enumerate() {
            if root_specs.iter().any(|spec| matches_root(n, spec)) {
                seen[ix] = true;
                queue.push_back(ix);
            }
        }
        while let Some(ix) = queue.pop_front() {
            let Some(out) = g.out_edges.get(ix) else {
                continue;
            };
            for &ex in out {
                let Some(e) = g.edges.get(ex) else { continue };
                if let Some(s) = seen.get_mut(e.callee) {
                    if !*s {
                        *s = true;
                        parent[e.callee] = Some(ix);
                        queue.push_back(e.callee);
                    }
                }
            }
        }
        let chains = (0..g.nodes.len())
            .map(|ix| {
                if !seen[ix] {
                    return None;
                }
                let mut chain = vec![ix];
                let mut cur = ix;
                // Bounded by node count: parent links form a forest.
                for _ in 0..g.nodes.len() {
                    match parent.get(cur).copied().flatten() {
                        Some(p) => {
                            chain.push(p);
                            cur = p;
                        }
                        None => break,
                    }
                }
                chain.reverse();
                Some(chain)
            })
            .collect();
        Reachability { chains }
    }
}

/// Whether a node matches a root spec such as `pipeline::prepare`,
/// `DriveMonitor::ingest` or `Classifier::fit`: the last segment must
/// equal the fn name and every preceding segment must match the node's
/// type, trait, or a module/crate segment.
pub fn matches_root(n: &FnNode, spec: &str) -> bool {
    let mut segs: Vec<&str> = spec.split("::").collect();
    let Some(name) = segs.pop() else {
        return false;
    };
    if n.name != name {
        return false;
    }
    segs.iter().all(|q| {
        n.type_name.as_deref() == Some(*q)
            || n.trait_name.as_deref() == Some(*q)
            || n.modules.iter().any(|m| m == q)
            || n.crate_name == *q
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{tokenize, TokenKind};
    use crate::parser;
    use crate::taint;

    fn file(crate_name: &str, label: &str, src: &str) -> FileItems {
        let code: Vec<_> = tokenize(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment { .. }))
            .collect();
        let parsed = parser::parse(&code);
        let facts = parsed
            .functions
            .iter()
            .map(|f| taint::analyze_fn(&code, f, &parsed.unordered_fields))
            .collect();
        let flows = parsed
            .functions
            .iter()
            .map(|f| crate::dataflow::analyze_fn(&code, f))
            .collect();
        FileItems {
            crate_name: crate_name.to_owned(),
            label: label.to_owned(),
            mod_path: module_path_from_label(label),
            parsed,
            facts,
            flows,
            code,
        }
    }

    fn edge_names(g: &CallGraph) -> Vec<(String, String, bool)> {
        g.edges
            .iter()
            .map(|e| {
                (
                    g.nodes[e.caller].qname.clone(),
                    g.nodes[e.callee].qname.clone(),
                    e.fallback,
                )
            })
            .collect()
    }

    #[test]
    fn module_paths_from_labels() {
        assert!(module_path_from_label("crates/core/src/lib.rs").is_empty());
        assert_eq!(
            module_path_from_label("crates/core/src/pipeline.rs"),
            vec!["pipeline"]
        );
        assert_eq!(
            module_path_from_label("crates/ml/src/nn/mod.rs"),
            vec!["nn"]
        );
        assert_eq!(
            module_path_from_label("crates/ml/src/nn/cnn_lstm.rs"),
            vec!["nn", "cnn_lstm"]
        );
    }

    #[test]
    fn same_module_call_resolves_exactly() {
        let g = CallGraph::build(&[file(
            "core",
            "crates/core/src/a.rs",
            "pub fn entry() { helper(); }\nfn helper() {}\n",
        )]);
        assert_eq!(
            edge_names(&g),
            vec![(
                "core::a::entry".to_owned(),
                "core::a::helper".to_owned(),
                false
            )]
        );
    }

    #[test]
    fn cross_module_call_resolves_via_path_and_import() {
        let a = file(
            "core",
            "crates/core/src/a.rs",
            "use crate::b::helper;\npub fn entry() { helper(); crate::b::other(); }\n",
        );
        let b = file(
            "core",
            "crates/core/src/b.rs",
            "pub fn helper() {}\npub fn other() {}\n",
        );
        let g = CallGraph::build(&[a, b]);
        assert_eq!(
            edge_names(&g),
            vec![
                (
                    "core::a::entry".to_owned(),
                    "core::b::helper".to_owned(),
                    false
                ),
                (
                    "core::a::entry".to_owned(),
                    "core::b::other".to_owned(),
                    false
                ),
            ]
        );
    }

    #[test]
    fn self_method_resolves_within_impl() {
        let g = CallGraph::build(&[file(
            "core",
            "crates/core/src/a.rs",
            "impl W { pub fn run(&self) { self.step(); } fn step(&self) {} }\n",
        )]);
        assert_eq!(
            edge_names(&g),
            vec![(
                "core::a::W::run".to_owned(),
                "core::a::W::step".to_owned(),
                false
            )]
        );
    }

    #[test]
    fn unresolvable_method_gets_fallback_edges_to_all_candidates() {
        let a = file(
            "core",
            "crates/core/src/a.rs",
            "pub fn entry(x: &dyn Any) { x.score(); }\n",
        );
        let b = file(
            "ml",
            "crates/ml/src/m.rs",
            "impl A { pub fn score(&self) {} }\nimpl B { pub fn score(&self) {} }\n",
        );
        let g = CallGraph::build(&[a, b]);
        let got = edge_names(&g);
        assert_eq!(
            got,
            vec![
                (
                    "core::a::entry".to_owned(),
                    "ml::m::A::score".to_owned(),
                    true
                ),
                (
                    "core::a::entry".to_owned(),
                    "ml::m::B::score".to_owned(),
                    true
                ),
            ]
        );
    }

    #[test]
    fn cross_crate_path_pins_the_crate() {
        let a = file(
            "core",
            "crates/core/src/a.rs",
            "pub fn entry() { mfpa_ml::grid::search(); }\n",
        );
        let b = file("ml", "crates/ml/src/grid.rs", "pub fn search() {}\n");
        let decoy = file(
            "dataset",
            "crates/dataset/src/grid.rs",
            "pub fn search() {}\n",
        );
        let g = CallGraph::build(&[a, b, decoy]);
        assert_eq!(
            edge_names(&g),
            vec![(
                "core::a::entry".to_owned(),
                "ml::grid::search".to_owned(),
                false
            )]
        );
    }

    #[test]
    fn reachability_produces_shortest_chains() {
        let src = "
            pub struct MfpaConfig;
            impl MfpaConfig {
                pub fn prepare(&self) { step_one(); }
            }
            fn step_one() { step_two(); }
            fn step_two() {}
            fn unrelated() { step_two(); }
        ";
        let g = CallGraph::build(&[file("core", "crates/core/src/pipeline.rs", src)]);
        let r = Reachability::compute(&g, &["pipeline::prepare"]);
        let chain_of = |name: &str| -> Option<Vec<String>> {
            let ix = g.nodes.iter().position(|n| n.name == name)?;
            r.chains[ix]
                .as_ref()
                .map(|c| c.iter().map(|&i| g.nodes[i].qname.clone()).collect())
        };
        assert_eq!(
            chain_of("step_two"),
            Some(vec![
                "core::pipeline::MfpaConfig::prepare".to_owned(),
                "core::pipeline::step_one".to_owned(),
                "core::pipeline::step_two".to_owned(),
            ])
        );
        assert_eq!(chain_of("unrelated"), None);
    }

    #[test]
    fn trait_root_matches_every_impl() {
        let src = "
            impl Classifier for Gbdt { fn fit(&mut self) { helper(); } }
            impl Classifier for Svm { fn fit(&mut self) {} }
            fn helper() {}
        ";
        let g = CallGraph::build(&[file("ml", "crates/ml/src/m.rs", src)]);
        let r = Reachability::compute(&g, &["Classifier::fit"]);
        let reachable: Vec<&str> = g
            .nodes
            .iter()
            .enumerate()
            .filter(|(ix, _)| r.chains[*ix].is_some())
            .map(|(_, n)| n.qname.as_str())
            .collect();
        assert_eq!(
            reachable,
            vec!["ml::m::Gbdt::fit", "ml::m::Svm::fit", "ml::m::helper"]
        );
    }
}
