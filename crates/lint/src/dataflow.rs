//! Intra-procedural dataflow: per-function def-use chains and
//! statement-order facts on top of the [`crate::parser`] item tree.
//!
//! Three rule families consume this layer:
//!
//! * **d10 float-reduction-order** — order-sensitive `f64`
//!   accumulation (`+=`, `x = x + …`, running-mean updates) into a
//!   variable *captured* by a closure passed to an `mfpa-par`
//!   combinator. The serial in-order fold of `map_reduce` (its last
//!   closure argument) is exempt; accumulators local to the closure
//!   are per-item state and stay clean.
//! * **d11 codec-symmetry** — each hand-rolled encoder/decoder pair
//!   (`put_X`/`get_X`, `encode`/`decode`, `to_bytes`/`from_bytes`) is
//!   reduced to its sequence of canonical byte ops (the
//!   `mfpa_bytes` vocabulary: `u8`/`u32`/`u64`/`i64`/`f64`/
//!   `counter`/`flag`/`len`), loops become repetition groups, branch
//!   arms collapse when they agree, sub-codec calls inline — and the
//!   two flattened sequences must match width-for-width, field order
//!   included.
//! * **d12 decoder-bounds** — inside decode-reachable functions every
//!   slice index or subslice must be dominated by a length guard on
//!   the same value chain (a `base.len()`/`base.is_empty()` mention,
//!   a comparison constraining an index operand, or a bounded
//!   `for x in a..b` binder).
//!
//! Like the lexer and parser this layer is *total*: any byte sequence
//! produces a (possibly empty) [`FnFlow`], never a panic. The
//! property tests in `tests/tokenizer_props.rs` drive it with
//! arbitrary bytes.

use crate::lexer::{Token, TokenKind};
use crate::parser::FnItem;
use crate::taint::Site;
use std::collections::BTreeSet;
use std::ops::Range;

/// `mfpa-par` combinators whose closure arguments run the per-item
/// path. All of them preserve submission order on the output side,
/// which is exactly why a *captured* accumulator is the bug: it turns
/// an order-preserving map into an order-dependent reduction.
const PAR_COMBINATORS: &[&str] = &[
    "ordered_map",
    "ordered_collect",
    "ordered_map_mut",
    "map_reduce",
];

/// The canonical byte-op vocabulary (methods of
/// `mfpa_bytes::ByteWriter`/`ByteReader`). `len` is the reader-side
/// bounded length prefix and needs an argument — a bare `.len()` is
/// the std slice method, not a codec op.
const CODEC_VOCAB: &[&str] = &["u8", "u32", "u64", "i64", "f64", "counter", "flag", "len"];

/// Byte-width class of one codec op. Encoder and decoder sequences
/// must agree class-for-class: `counter`, `len`, `u64` and `i64` all
/// move 8 little-endian integer bytes and are interchangeable;
/// `f64` is kept distinct because a float read of an integer write is
/// a real decode bug even at equal width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// `u8` / `flag` — one byte.
    B1,
    /// `u32` — four bytes.
    B4,
    /// `u64` / `i64` / `counter` / `len` — eight integer bytes.
    B8,
    /// `f64` — eight bytes interpreted as IEEE-754 bits.
    F8,
}

impl OpClass {
    fn of(method: &str) -> OpClass {
        match method {
            "u8" | "flag" => OpClass::B1,
            "u32" => OpClass::B4,
            "f64" => OpClass::F8,
            _ => OpClass::B8,
        }
    }

    fn label(self) -> &'static str {
        match self {
            OpClass::B1 => "u8",
            OpClass::B4 => "u32",
            OpClass::B8 => "u64",
            OpClass::F8 => "f64",
        }
    }
}

/// One node of a codec op tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecOp {
    /// A primitive vocabulary call (`.u32(…)`, `.f64(…)`, …).
    Prim {
        /// Byte-width class of the op.
        class: OpClass,
        /// Source line of the call.
        line: u32,
    },
    /// A call to another codec-named function, inlined at comparison
    /// time.
    Call {
        /// Callee name, resolved within the same file.
        name: String,
        /// Source line of the call.
        line: u32,
    },
    /// A `for`/`while`/`loop` body: repeated an unknown number of
    /// times, so only the body sequence is compared.
    Rep(Vec<CodecOp>),
    /// `if`/`match` arms that do not agree (agreeing arms collapse to
    /// their common sequence; error-`return` arms are dropped first).
    Branch(Vec<Vec<CodecOp>>),
}

/// A function recognized as one side of a codec pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecFn {
    /// Function name (`put_serial`, `decode`, `to_bytes`, …).
    pub name: String,
    /// Pairing key shared by both sides (`serial` for
    /// `put_serial`/`get_serial`; `""` for `encode`/`decode`).
    pub pair_key: String,
    /// Writer side (`put_`/`encode`/`to_bytes`) vs reader side.
    pub is_encoder: bool,
    /// Declaration line, for unpaired-codec findings.
    pub line: u32,
    /// The op tree extracted from the body.
    pub ops: Vec<CodecOp>,
}

/// Dataflow facts for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnFlow {
    /// d10 sites: captured float accumulation inside par closures.
    pub par_accums: Vec<Site>,
    /// d11 raw material: the codec op tree, when this function is
    /// codec-named and touches the byte vocabulary.
    pub codec: Option<CodecFn>,
    /// d12 sites: slice indexing with no dominating length guard.
    /// Reported only for decode-reachable functions.
    pub unguarded_indexes: Vec<Site>,
}

/// One d11 problem within a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecIssue {
    /// A codec root (not called by any other codec fn) with no
    /// opposite-side partner.
    Unpaired {
        /// Index of the function in the file's function list.
        fn_ix: usize,
        /// Declaration line.
        line: u32,
        /// Function name.
        name: String,
        /// Writer side?
        is_encoder: bool,
    },
    /// An encoder/decoder pair whose flattened sequences diverge.
    Mismatch {
        /// Index of the encoder in the file's function list.
        enc_ix: usize,
        /// Index of the decoder in the file's function list.
        dec_ix: usize,
        /// Line of the first diverging op on the encoder side.
        enc_line: u32,
        /// Line of the first diverging op on the decoder side.
        dec_line: u32,
        /// Human-readable description of the divergence.
        detail: String,
    },
}

/// Computes the dataflow facts for one function over the comment-free
/// token stream. Total: never panics, any input.
pub fn analyze_fn(code: &[Token], f: &FnItem) -> FnFlow {
    let flow = Flow {
        code,
        sig: f.sig.clone(),
        body: f.body.clone(),
    };
    FnFlow {
        par_accums: flow.par_accums(),
        codec: flow.codec(&f.name),
        unguarded_indexes: flow.unguarded_indexes(),
    }
}

struct Flow<'a> {
    code: &'a [Token],
    sig: Range<usize>,
    body: Range<usize>,
}

fn tok_ident(code: &[Token], i: usize) -> Option<&str> {
    match code.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn tok_punct(code: &[Token], i: usize, c: char) -> bool {
    matches!(code.get(i).map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c)
}

fn tok_line(code: &[Token], i: usize) -> u32 {
    code.get(i).map(|t| t.line).unwrap_or(0)
}

/// Number tokens that denote floats: a decimal point, an `f32`/`f64`
/// suffix, or an exponent. An `e`/`E` counts as an exponent only next
/// to a digit — integer suffixes (`0usize`) carry a bare `e`.
pub(crate) fn is_float_number(text: &str) -> bool {
    if text.starts_with("0x") {
        return false;
    }
    if text.contains('.') || text.contains("f32") || text.contains("f64") {
        return true;
    }
    let b = text.as_bytes();
    b.windows(2)
        .any(|w| (w[0] == b'e' || w[0] == b'E') && w[1].is_ascii_digit())
        || (b.len() >= 2
            && (b[b.len() - 1] == b'e' || b[b.len() - 1] == b'E')
            && b[b.len() - 2].is_ascii_digit())
}

fn is_value_keyword(word: &str) -> bool {
    matches!(
        word,
        "self"
            | "true"
            | "false"
            | "as"
            | "in"
            | "if"
            | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "let"
            | "mut"
            | "ref"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "fn"
            | "usize"
            | "u8"
            | "u16"
            | "u32"
            | "u64"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "f32"
            | "f64"
            | "bool"
    )
}

impl Flow<'_> {
    fn ident(&self, i: usize) -> Option<&str> {
        tok_ident(self.code, i)
    }

    fn punct(&self, i: usize, c: char) -> bool {
        tok_punct(self.code, i, c)
    }

    fn line(&self, i: usize) -> u32 {
        tok_line(self.code, i)
    }

    /// Flat statement span around token `i` (between `;`/`{`/`}`),
    /// clamped to the body.
    fn statement(&self, i: usize) -> Range<usize> {
        let boundary = |k: usize| {
            matches!(
                self.code.get(k).map(|t| &t.kind),
                Some(TokenKind::Punct(';' | '{' | '}'))
            )
        };
        let mut start = i;
        while start > self.body.start && !boundary(start - 1) {
            start -= 1;
        }
        let mut end = i;
        while end < self.body.end && !boundary(end) {
            end += 1;
        }
        start..end
    }

    /// Index one past a balanced bracket group opening at `open`.
    fn skip_group(&self, open: usize, op: char, cl: char) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.body.end {
            if self.punct(i, op) {
                depth += 1;
            } else if self.punct(i, cl) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.body.end
    }

    /// The `let` statement defining `name`, if any, searching the whole
    /// body (first definition wins — good enough for guard lookups).
    /// Tuple and struct patterns bind several names at once, so the
    /// whole pattern side (up to the depth-0 `=`) is searched.
    fn def_statement(&self, name: &str) -> Option<Range<usize>> {
        let mut i = self.body.start;
        while i < self.body.end {
            if self.ident(i) == Some("let") {
                let stmt = self.statement(i);
                let mut depth = 0usize;
                for j in i + 1..stmt.end {
                    match self.code.get(j).map(|t| &t.kind) {
                        Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                        Some(TokenKind::Punct(')' | ']' | '}')) => {
                            depth = depth.saturating_sub(1);
                        }
                        Some(TokenKind::Punct('=')) if depth == 0 => break,
                        Some(TokenKind::Ident(s)) if s == name => return Some(stmt),
                        _ => {}
                    }
                }
            }
            i += 1;
        }
        None
    }

    /// Float evidence inside a token range: a float literal, an
    /// `f64`/`f32` type mention, or an `as f64` cast.
    fn has_float_evidence(&self, r: &Range<usize>) -> bool {
        for k in r.clone() {
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Number(text)) if is_float_number(text) => return true,
                Some(TokenKind::Ident(s)) if s == "f64" || s == "f32" => return true,
                _ => {}
            }
        }
        false
    }

    /// Whether parameter `name` is declared with a float type.
    fn float_param(&self, name: &str) -> bool {
        let mut i = self.sig.start;
        while i < self.sig.end {
            if self.ident(i) == Some(name) && self.punct(i + 1, ':') && !self.punct(i + 2, ':') {
                let mut k = i + 2;
                let mut depth = 0usize;
                while k < self.sig.end {
                    match self.code.get(k).map(|t| &t.kind) {
                        Some(TokenKind::Punct('<' | '(' | '[')) => depth += 1,
                        Some(TokenKind::Punct(')')) if depth == 0 => break,
                        Some(TokenKind::Punct('>' | ')' | ']')) => depth = depth.saturating_sub(1),
                        Some(TokenKind::Punct(',')) if depth == 0 => break,
                        Some(TokenKind::Ident(s)) if s == "f64" || s == "f32" => return true,
                        _ => {}
                    }
                    k += 1;
                }
            }
            i += 1;
        }
        false
    }

    // -- d10: captured float accumulation in par closures -------------

    fn par_accums(&self) -> Vec<Site> {
        let mut sites = Vec::new();
        let mut i = self.body.start;
        while i < self.body.end {
            let is_comb = self.ident(i).is_some_and(|s| PAR_COMBINATORS.contains(&s));
            if is_comb && self.punct(i + 1, '(') {
                let comb = self.ident(i).unwrap_or_default().to_owned();
                let call_end = self.skip_group(i + 1, '(', ')');
                let closures = self.closures_in(i + 2, call_end.saturating_sub(1));
                // The last closure of map_reduce is the serial in-order
                // fold — the one place a float accumulator is sound.
                let keep = if comb == "map_reduce" && !closures.is_empty() {
                    &closures[..closures.len() - 1]
                } else {
                    &closures[..]
                };
                for cl in keep {
                    self.accums_in_closure(cl, &comb, &mut sites);
                }
                i = call_end.max(i + 1);
                continue;
            }
            i += 1;
        }
        sites
    }

    /// Closure spans (params ∪ body) inside `start..end` at any depth.
    fn closures_in(&self, start: usize, end: usize) -> Vec<(Range<usize>, Range<usize>)> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end.min(self.body.end) {
            // A closure's opening `|` follows `,`, `(`, `=` or `move`;
            // a binary `|` follows a value. `||` (empty params) is two
            // adjacent pipes.
            let opens_closure = self.punct(i, '|')
                && (i == start
                    || self.punct(i - 1, ',')
                    || self.punct(i - 1, '(')
                    || self.punct(i - 1, '=')
                    || self.ident(i - 1) == Some("move"));
            if opens_closure {
                let params_end = if self.punct(i + 1, '|') {
                    i + 1
                } else {
                    let mut k = i + 1;
                    while k < end && !self.punct(k, '|') {
                        k += 1;
                    }
                    k
                };
                let mut body_start = params_end + 1;
                // Return-type annotation: `|x| -> T { … }` — the body
                // is the block after the type, not the type itself.
                if self.punct(body_start, '-') && self.punct(body_start + 1, '>') {
                    body_start = self.next_block_open(body_start + 2, end);
                }
                let body_end = if self.punct(body_start, '{') {
                    self.skip_group(body_start, '{', '}')
                } else {
                    // Expression body: up to a depth-0 `,` or the
                    // unbalanced closer that ends the surrounding
                    // argument list.
                    let mut depth = 0usize;
                    let mut k = body_start;
                    while k < end {
                        match self.code.get(k).map(|t| &t.kind) {
                            Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                            Some(TokenKind::Punct(')' | ']' | '}')) => {
                                if depth == 0 {
                                    break;
                                }
                                depth -= 1;
                            }
                            Some(TokenKind::Punct(',')) if depth == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    k
                };
                out.push((i + 1..params_end, body_start..body_end));
                i = body_end.max(i + 1);
                continue;
            }
            i += 1;
        }
        out
    }

    fn accums_in_closure(
        &self,
        (params, body): &(Range<usize>, Range<usize>),
        comb: &str,
        sites: &mut Vec<Site>,
    ) {
        let mut locals: BTreeSet<String> = BTreeSet::new();
        for k in params.clone() {
            if let Some(name) = self.ident(k) {
                if !is_value_keyword(name) {
                    locals.insert(name.to_owned());
                }
            }
        }
        let mut k = body.start;
        while k < body.end {
            if self.ident(k) == Some("let") {
                // Every name on the pattern side (up to the depth-0
                // `=`) is closure-local, tuple patterns included.
                let stmt = self.statement(k);
                let mut depth = 0usize;
                for j in k + 1..stmt.end.min(body.end) {
                    match self.code.get(j).map(|t| &t.kind) {
                        Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                        Some(TokenKind::Punct(')' | ']' | '}')) => {
                            depth = depth.saturating_sub(1);
                        }
                        Some(TokenKind::Punct('=')) if depth == 0 => break,
                        Some(TokenKind::Ident(s)) if !is_value_keyword(s) => {
                            locals.insert(s.clone());
                        }
                        _ => {}
                    }
                }
            }
            k += 1;
        }
        let mut k = body.start;
        while k < body.end {
            if let Some(name) = self.ident(k) {
                // `x += …` / `x -= …` / `x *= …`, or `x = x + …`.
                let compound =
                    (self.punct(k + 1, '+') || self.punct(k + 1, '-') || self.punct(k + 1, '*'))
                        && self.punct(k + 2, '=');
                let rebind = self.punct(k + 1, '=')
                    && !self.punct(k + 2, '=')
                    && self.ident(k + 2) == Some(name)
                    && (self.punct(k + 3, '+') || self.punct(k + 3, '-') || self.punct(k + 3, '*'));
                if (compound || rebind)
                    && !is_value_keyword(name)
                    && !locals.contains(name)
                    && self.accum_is_float(name, k)
                {
                    sites.push(Site {
                        line: self.line(k),
                        what: format!(
                            "order-sensitive float accumulation into captured `{name}` \
                             inside a `{comb}` closure (runs per item, not in serial fold order)"
                        ),
                    });
                    // One site per accumulator per closure is enough.
                    let stmt = self.statement(k);
                    k = stmt.end.max(k + 1);
                    continue;
                }
            }
            k += 1;
        }
    }

    /// Float evidence for an accumulation at token `at`: in the
    /// accumulating statement itself, in the accumulator's `let`
    /// definition, or in its parameter type.
    fn accum_is_float(&self, name: &str, at: usize) -> bool {
        if self.has_float_evidence(&self.statement(at)) {
            return true;
        }
        if let Some(def) = self.def_statement(name) {
            if self.has_float_evidence(&def) {
                return true;
            }
        }
        self.float_param(name)
    }

    // -- d11: codec op extraction -------------------------------------

    fn codec(&self, fn_name: &str) -> Option<CodecFn> {
        let (pair_key, is_encoder) = codec_role(fn_name)?;
        let ops = self.parse_ops(self.body.clone(), 0);
        let mut prims = 0usize;
        let mut calls = 0usize;
        count_ops(&ops, &mut prims, &mut calls);
        if prims == 0 && calls == 0 {
            return None;
        }
        Some(CodecFn {
            name: fn_name.to_owned(),
            pair_key,
            is_encoder,
            line: self.line(self.body.start),
            ops,
        })
    }

    /// Recursive-descent op extraction over a token range. Loops
    /// become [`CodecOp::Rep`]; `if`/`match` arms are collapsed when
    /// they agree after error-`return` arms are dropped.
    fn parse_ops(&self, r: Range<usize>, depth: usize) -> Vec<CodecOp> {
        let mut ops = Vec::new();
        if depth > 24 {
            return ops;
        }
        let mut i = r.start;
        while i < r.end {
            match self.ident(i) {
                Some("for") | Some("while") | Some("loop") => {
                    let open = self.next_block_open(i + 1, r.end);
                    let end = self.skip_group(open, '{', '}');
                    let inner = self.parse_ops(open + 1..end.saturating_sub(1), depth + 1);
                    if !inner.is_empty() {
                        ops.push(CodecOp::Rep(inner));
                    }
                    i = end.max(i + 1);
                    continue;
                }
                Some("if") => {
                    let (cond_ops, arms, next) = self.parse_if(i, r.end, depth);
                    // Condition reads (`if rd.u32()? != MAGIC { … }`)
                    // happen unconditionally, before any arm runs.
                    ops.extend(cond_ops);
                    push_branch(&mut ops, arms);
                    i = next.max(i + 1);
                    continue;
                }
                Some("match") => {
                    let open = self.next_block_open(i + 1, r.end);
                    // Ops in the scrutinee (`match rd.u8()? { … }`) come
                    // before any arm.
                    ops.extend(self.linear_ops(i + 1..open));
                    let end = self.skip_group(open, '{', '}');
                    let arms = self.parse_match_arms(open + 1..end.saturating_sub(1), depth);
                    push_branch(&mut ops, arms);
                    i = end.max(i + 1);
                    continue;
                }
                _ => {}
            }
            if let Some(op) = self.op_at(i) {
                ops.push(op);
            }
            i += 1;
        }
        ops
    }

    /// The next `{` that opens a block at paren/bracket depth 0
    /// (skipping closures' `|…|` is unnecessary: codec headers do not
    /// carry block-bearing closures before the body).
    fn next_block_open(&self, from: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = from;
        while i < end {
            match self.code.get(i).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct('{')) if depth == 0 => return i,
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Primitive or sub-codec-call op at token `i`, if any.
    fn op_at(&self, i: usize) -> Option<CodecOp> {
        let name = self.ident(i)?;
        if !self.punct(i + 1, '(') {
            return None;
        }
        let method = i > 0 && self.punct(i - 1, '.');
        if method && CODEC_VOCAB.contains(&name) {
            // `.len()` with no argument is std's length, not the
            // reader's bounded length prefix.
            if name == "len" && self.punct(i + 2, ')') {
                return None;
            }
            return Some(CodecOp::Prim {
                class: OpClass::of(name),
                line: self.line(i),
            });
        }
        if codec_role(name).is_some() {
            return Some(CodecOp::Call {
                name: name.to_owned(),
                line: self.line(i),
            });
        }
        None
    }

    /// Ops in a flat range, no control-flow recursion (used for
    /// scrutinees and `if` conditions).
    fn linear_ops(&self, r: Range<usize>) -> Vec<CodecOp> {
        let mut out = Vec::new();
        for i in r {
            if let Some(op) = self.op_at(i) {
                out.push(op);
            }
        }
        out
    }

    /// Parses `if … { } [else if …{ }]* [else { }]`; returns the
    /// unconditional condition ops, the kept arm op-lists, and the
    /// index just past the construct. Arms containing a `return` are
    /// error exits and are dropped — they do not contribute to the
    /// success-path byte sequence. Condition reads are emitted
    /// unconditionally: the first one always runs, and codec chains
    /// only ever read in the first condition.
    fn parse_if(
        &self,
        at: usize,
        end: usize,
        depth: usize,
    ) -> (Vec<CodecOp>, Vec<Vec<CodecOp>>, usize) {
        let mut cond_ops = Vec::new();
        let mut arms = Vec::new();
        let mut i = at;
        loop {
            // `i` is at `if` (or the start of an `else` tail handled
            // below). Condition ops are linear.
            let open = self.next_block_open(i + 1, end);
            cond_ops.extend(self.linear_ops(i + 1..open));
            let body_end = self.skip_group(open, '{', '}');
            let body = open + 1..body_end.saturating_sub(1);
            if !self.range_has_return(&body) {
                arms.push(self.parse_ops(body, depth + 1));
            }
            i = body_end;
            if self.ident(i) == Some("else") {
                if self.ident(i + 1) == Some("if") {
                    i += 1;
                    continue;
                }
                let eopen = self.next_block_open(i + 1, end);
                let ebody_end = self.skip_group(eopen, '{', '}');
                let ebody = eopen + 1..ebody_end.saturating_sub(1);
                if !self.range_has_return(&ebody) {
                    arms.push(self.parse_ops(ebody, depth + 1));
                }
                return (cond_ops, arms, ebody_end);
            }
            return (cond_ops, arms, i);
        }
    }

    fn parse_match_arms(&self, r: Range<usize>, depth: usize) -> Vec<Vec<CodecOp>> {
        let mut arms = Vec::new();
        let mut i = r.start;
        while i < r.end {
            // Pattern: up to a depth-0 `=>`.
            let mut pdepth = 0usize;
            while i < r.end {
                match self.code.get(i).map(|t| &t.kind) {
                    Some(TokenKind::Punct('(' | '[' | '{')) => pdepth += 1,
                    Some(TokenKind::Punct(')' | ']' | '}')) => pdepth = pdepth.saturating_sub(1),
                    Some(TokenKind::Punct('=')) if pdepth == 0 && self.punct(i + 1, '>') => {
                        i += 2;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            if i >= r.end {
                break;
            }
            // Body: a block, or an expression up to a depth-0 `,`.
            let body = if self.punct(i, '{') {
                let e = self.skip_group(i, '{', '}');
                let b = i + 1..e.saturating_sub(1);
                i = e;
                b
            } else {
                let start = i;
                let mut bdepth = 0usize;
                while i < r.end {
                    match self.code.get(i).map(|t| &t.kind) {
                        Some(TokenKind::Punct('(' | '[' | '{')) => bdepth += 1,
                        Some(TokenKind::Punct(')' | ']' | '}')) => {
                            bdepth = bdepth.saturating_sub(1);
                        }
                        Some(TokenKind::Punct(',')) if bdepth == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
                let b = start..i;
                i += 1; // past the comma
                b
            };
            if !self.range_has_return(&body) {
                arms.push(self.parse_ops(body, depth + 1));
            }
        }
        arms
    }

    fn range_has_return(&self, r: &Range<usize>) -> bool {
        r.clone().any(|k| self.ident(k) == Some("return"))
    }

    // -- d12: unguarded slice indexing --------------------------------

    fn unguarded_indexes(&self) -> Vec<Site> {
        let mut sites = Vec::new();
        let mut i = self.body.start;
        while i < self.body.end {
            if self.punct(i, '[') && self.index_base_end(i) {
                let base = self.receiver_chain(i);
                let close = self.skip_group(i, '[', ']');
                let operand_idents = self.index_operands(i + 1..close.saturating_sub(1));
                if !self.is_guarded(&base, &operand_idents, i) {
                    let shown = match &base {
                        Some(b) => format!("`{b}`"),
                        None => "an expression result".to_owned(),
                    };
                    sites.push(Site {
                        line: self.line(i),
                        what: format!(
                            "slice indexing into {shown} with no dominating length guard \
                             on the same value chain"
                        ),
                    });
                }
                i = close.max(i + 1);
                continue;
            }
            i += 1;
        }
        sites
    }

    /// Whether the `[` at `i` indexes a value (preceded by an
    /// identifier, `)` or `]`) rather than opening an array literal,
    /// attribute or macro body.
    fn index_base_end(&self, i: usize) -> bool {
        if i == 0 {
            return false;
        }
        if self.punct(i - 1, ')') || self.punct(i - 1, ']') {
            return true;
        }
        match self.ident(i - 1) {
            // A keyword or a macro name (`ident!`) is not a value base.
            Some(w) => !(is_value_keyword(w) || i >= 2 && self.punct(i - 2, '!')),
            None => false,
        }
    }

    /// The dotted receiver chain directly before `[`, e.g.
    /// `self.data` for `self.data[…]`. `None` when the base is a call
    /// or index result.
    fn receiver_chain(&self, open: usize) -> Option<String> {
        if open == 0 || self.punct(open - 1, ')') || self.punct(open - 1, ']') {
            return None;
        }
        let mut parts = Vec::new();
        let mut i = open;
        while let Some(name) = (i >= 1).then(|| self.ident(i - 1)).flatten() {
            parts.push(name.to_owned());
            if i < 2 || !self.punct(i - 2, '.') {
                break;
            }
            i -= 2;
        }
        if parts.is_empty() {
            return None;
        }
        parts.reverse();
        Some(parts.join("."))
    }

    /// Identifiers that feed the index expression (excluding keywords
    /// and method names).
    fn index_operands(&self, r: Range<usize>) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for k in r {
            if let Some(name) = self.ident(k) {
                if is_value_keyword(name) {
                    continue;
                }
                // A name followed by `(` is a method/function, not a
                // value to bound.
                if self.punct(k + 1, '(') {
                    continue;
                }
                out.insert(name.to_owned());
            }
        }
        out
    }

    /// Dominating-guard check for an index site at token `at`.
    ///
    /// Guarded when (a) an earlier-or-same statement mentions
    /// `base.len`/`base.is_empty` on the indexed chain (or on the
    /// chain its `let` definition derives from), or (b) every index
    /// operand is either compared (`<`/`>`) in a dominating statement
    /// or bound by a dominating `for x in a..b` range header.
    fn is_guarded(&self, base: &Option<String>, operands: &BTreeSet<String>, at: usize) -> bool {
        let prefix = self.body.start..self.statement(at).end;
        if let Some(b) = base {
            if self.length_mention(b, &prefix) {
                return true;
            }
            // One def-use hop: `let b = <parent>…;` — a guard on the
            // parent covers the derived binding.
            if let Some(def) = self.def_statement(b.split('.').next().unwrap_or(b)) {
                if def.start < at {
                    for k in def.clone() {
                        if let Some(parent) = self.ident(k) {
                            if parent != b
                                && !is_value_keyword(parent)
                                && self.length_mention(parent, &prefix)
                            {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        !operands.is_empty() && operands.iter().all(|x| self.operand_guarded(x, &prefix))
    }

    /// Any occurrence of `chain.len` / `chain.is_empty` within `r`.
    fn length_mention(&self, chain: &str, r: &Range<usize>) -> bool {
        let parts: Vec<&str> = chain.split('.').collect();
        'outer: for k in r.clone() {
            let mut i = k;
            for (px, p) in parts.iter().enumerate() {
                if self.ident(i) != Some(p) {
                    continue 'outer;
                }
                if px + 1 < parts.len() {
                    if !self.punct(i + 1, '.') {
                        continue 'outer;
                    }
                    i += 2;
                }
            }
            if self.punct(i + 1, '.') && matches!(self.ident(i + 2), Some("len" | "is_empty")) {
                return true;
            }
        }
        false
    }

    fn operand_guarded(&self, x: &str, prefix: &Range<usize>) -> bool {
        for k in prefix.clone() {
            if self.ident(k) != Some(x) {
                continue;
            }
            let stmt = self.statement(k);
            // Comparison guard: the statement constrains some value
            // with `<` or `>` (covers `<=`, `>=`).
            if stmt
                .clone()
                .any(|j| self.punct(j, '<') || self.punct(j, '>'))
            {
                return true;
            }
            // Range-loop binder: `for x in a..b { … }`.
            if self.ident(stmt.start) == Some("for")
                && self.ident(stmt.start + 1) == Some(x)
                && stmt
                    .clone()
                    .any(|j| self.punct(j, '.') && self.punct(j + 1, '.'))
            {
                return true;
            }
        }
        false
    }
}

fn count_ops(ops: &[CodecOp], prims: &mut usize, calls: &mut usize) {
    for op in ops {
        match op {
            CodecOp::Prim { .. } => *prims += 1,
            CodecOp::Call { .. } => *calls += 1,
            CodecOp::Rep(inner) => count_ops(inner, prims, calls),
            CodecOp::Branch(arms) => {
                for a in arms {
                    count_ops(a, prims, calls);
                }
            }
        }
    }
}

/// Collapses a set of branch arms into the op stream: empty arms
/// vanish, agreeing arms inline their common sequence, disagreeing
/// arms survive as a [`CodecOp::Branch`] barrier.
fn push_branch(ops: &mut Vec<CodecOp>, mut arms: Vec<Vec<CodecOp>>) {
    arms.retain(|a| !a.is_empty());
    match arms.len() {
        0 => {}
        1 => ops.extend(arms.remove(0)),
        _ => {
            let all_equal = arms.windows(2).all(|w| ops_shape_eq(&w[0], &w[1]));
            if all_equal {
                ops.extend(arms.remove(0));
            } else {
                ops.push(CodecOp::Branch(arms));
            }
        }
    }
}

/// Structural equality ignoring line numbers.
fn ops_shape_eq(a: &[CodecOp], b: &[CodecOp]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (CodecOp::Prim { class: ca, .. }, CodecOp::Prim { class: cb, .. }) => ca == cb,
            (CodecOp::Call { name: na, .. }, CodecOp::Call { name: nb, .. }) => na == nb,
            (CodecOp::Rep(ia), CodecOp::Rep(ib)) => ops_shape_eq(ia, ib),
            (CodecOp::Branch(aa), CodecOp::Branch(ab)) => {
                aa.len() == ab.len() && aa.iter().zip(ab).all(|(x2, y2)| ops_shape_eq(x2, y2))
            }
            _ => false,
        })
}

/// Name convention for codec pairing. `write_`/`read_` prefixes are
/// deliberately excluded: `write_checkpoint` writes a *file*, not a
/// field sequence.
fn codec_role(name: &str) -> Option<(String, bool)> {
    match name {
        "encode" => return Some((String::new(), true)),
        "decode" => return Some((String::new(), false)),
        "to_bytes" => return Some(("bytes".to_owned(), true)),
        "from_bytes" => return Some(("bytes".to_owned(), false)),
        _ => {}
    }
    for (prefix, enc) in [
        ("put_", true),
        ("encode_", true),
        ("get_", false),
        ("decode_", false),
    ] {
        if let Some(rest) = name.strip_prefix(prefix) {
            if !rest.is_empty() {
                return Some((rest.to_owned(), enc));
            }
        }
    }
    None
}

/// Pairs the codec functions of one file and verifies each pair's
/// flattened op sequences mirror each other. `codecs` carries the
/// in-file function index for chain rendering.
pub fn check_codecs(codecs: &[(usize, CodecFn)]) -> Vec<CodecIssue> {
    let mut issues = Vec::new();
    // Sub-codec calls referenced anywhere mark non-roots.
    let mut called: BTreeSet<&str> = BTreeSet::new();
    for (_, c) in codecs {
        collect_called(&c.ops, &mut called);
    }
    // Group by pairing key, preserving file order.
    let mut keys: Vec<&str> = Vec::new();
    for (_, c) in codecs {
        if !keys.contains(&c.pair_key.as_str()) {
            keys.push(&c.pair_key);
        }
    }
    for key in keys {
        let enc: Vec<&(usize, CodecFn)> = codecs
            .iter()
            .filter(|(_, c)| c.pair_key == key && c.is_encoder)
            .collect();
        let dec: Vec<&(usize, CodecFn)> = codecs
            .iter()
            .filter(|(_, c)| c.pair_key == key && !c.is_encoder)
            .collect();
        match (enc.as_slice(), dec.as_slice()) {
            ([(eix, e)], [(dix, d)]) => {
                let ef = flatten(&e.ops, codecs, 0);
                let df = flatten(&d.ops, codecs, 0);
                if let Some((detail, enc_line, dec_line)) = first_divergence(&ef, &df) {
                    issues.push(CodecIssue::Mismatch {
                        enc_ix: *eix,
                        dec_ix: *dix,
                        enc_line,
                        dec_line,
                        detail,
                    });
                }
            }
            (one_side, []) | ([], one_side) => {
                for (ix, c) in one_side {
                    if !called.contains(c.name.as_str()) {
                        issues.push(CodecIssue::Unpaired {
                            fn_ix: *ix,
                            line: c.line,
                            name: c.name.clone(),
                            is_encoder: c.is_encoder,
                        });
                    }
                }
            }
            _ => {} // several functions on each side: ambiguous, skip
        }
    }
    issues
}

fn collect_called<'a>(ops: &'a [CodecOp], out: &mut BTreeSet<&'a str>) {
    for op in ops {
        match op {
            CodecOp::Call { name, .. } => {
                out.insert(name);
            }
            CodecOp::Rep(inner) => collect_called(inner, out),
            CodecOp::Branch(arms) => {
                for a in arms {
                    collect_called(a, out);
                }
            }
            CodecOp::Prim { .. } => {}
        }
    }
}

/// Inlines sub-codec calls (resolved by name within the file) and
/// re-collapses branches. Unresolvable calls contribute nothing;
/// recursion is cut at depth 16.
fn flatten(ops: &[CodecOp], codecs: &[(usize, CodecFn)], depth: usize) -> Vec<CodecOp> {
    let mut out = Vec::new();
    if depth > 16 {
        return out;
    }
    for op in ops {
        match op {
            CodecOp::Prim { .. } => out.push(op.clone()),
            CodecOp::Call { name, .. } => {
                if let Some((_, c)) = codecs.iter().find(|(_, c)| &c.name == name) {
                    out.extend(flatten(&c.ops, codecs, depth + 1));
                }
            }
            CodecOp::Rep(inner) => {
                let f = flatten(inner, codecs, depth + 1);
                if !f.is_empty() {
                    out.push(CodecOp::Rep(f));
                }
            }
            CodecOp::Branch(arms) => {
                let flat: Vec<Vec<CodecOp>> =
                    arms.iter().map(|a| flatten(a, codecs, depth + 1)).collect();
                push_branch(&mut out, flat);
            }
        }
    }
    out
}

fn op_line(op: &CodecOp) -> u32 {
    match op {
        CodecOp::Prim { line, .. } | CodecOp::Call { line, .. } => *line,
        CodecOp::Rep(inner) => inner.first().map(op_line).unwrap_or(0),
        CodecOp::Branch(arms) => arms
            .first()
            .and_then(|a| a.first())
            .map(op_line)
            .unwrap_or(0),
    }
}

fn op_label(op: &CodecOp) -> String {
    match op {
        CodecOp::Prim { class, .. } => class.label().to_owned(),
        CodecOp::Call { name, .. } => format!("call to `{name}`"),
        CodecOp::Rep(_) => "a repeated group".to_owned(),
        CodecOp::Branch(_) => "diverging branches".to_owned(),
    }
}

/// First field where the two flattened sequences disagree, as
/// (detail, encoder line, decoder line). Unresolvable
/// [`CodecOp::Branch`] barriers end the comparison without a finding
/// (conservative: no false positives from control flow we cannot
/// align).
fn first_divergence(enc: &[CodecOp], dec: &[CodecOp]) -> Option<(String, u32, u32)> {
    let mut field = 0usize;
    for (e, d) in enc.iter().zip(dec) {
        field += 1;
        match (e, d) {
            (CodecOp::Branch(_), _) | (_, CodecOp::Branch(_)) => return None,
            (
                CodecOp::Prim {
                    class: ce,
                    line: le,
                },
                CodecOp::Prim {
                    class: cd,
                    line: ld,
                },
            ) => {
                if ce != cd {
                    return Some((
                        format!(
                            "field {field}: encoder writes {} but decoder reads {}",
                            ce.label(),
                            cd.label()
                        ),
                        *le,
                        *ld,
                    ));
                }
            }
            (CodecOp::Rep(ie), CodecOp::Rep(id)) => {
                if let Some((detail, le, ld)) = first_divergence(ie, id) {
                    return Some((format!("inside a repeated group, {detail}"), le, ld));
                }
            }
            _ => {
                return Some((
                    format!(
                        "field {field}: encoder writes {} but decoder reads {}",
                        op_label(e),
                        op_label(d)
                    ),
                    op_line(e),
                    op_line(d),
                ));
            }
        }
    }
    match enc.len().cmp(&dec.len()) {
        std::cmp::Ordering::Equal => None,
        std::cmp::Ordering::Greater => {
            let extra = &enc[dec.len()];
            Some((
                format!(
                    "field {}: encoder writes {} past the decoder's last read",
                    dec.len() + 1,
                    op_label(extra)
                ),
                op_line(extra),
                dec.last().map(op_line).unwrap_or(0),
            ))
        }
        std::cmp::Ordering::Less => {
            let extra = &dec[enc.len()];
            Some((
                format!(
                    "field {}: decoder reads {} past the encoder's last write",
                    enc.len() + 1,
                    op_label(extra)
                ),
                enc.last().map(op_line).unwrap_or(0),
                op_line(extra),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, parser};

    fn flows(src: &str) -> Vec<FnFlow> {
        let tokens = lexer::tokenize(src);
        let code: Vec<Token> = tokens
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment { .. }))
            .collect();
        let parsed = parser::parse(&code);
        parsed
            .functions
            .iter()
            .map(|f| analyze_fn(&code, f))
            .collect()
    }

    #[test]
    fn captured_float_accum_in_par_closure_is_flagged() {
        let src = "fn f(xs: &[f64], w: Workers) -> f64 {\n\
                   let mut total = 0.0;\n\
                   let _ = ordered_map(xs, w, |_, &x| { total += x; x });\n\
                   total\n}\n";
        let f = flows(src);
        assert_eq!(f[0].par_accums.len(), 1);
        assert!(f[0].par_accums[0].what.contains("total"));
    }

    #[test]
    fn closure_local_accum_is_clean() {
        let src = "fn f(xs: &[Vec<f64>], w: Workers) -> Vec<f64> {\n\
                   ordered_map(xs, w, |_, row| {\n\
                   let mut s = 0.0;\n\
                   for v in row { s += v; }\n\
                   s\n}) }\n";
        assert!(flows(src)[0].par_accums.is_empty());
    }

    #[test]
    fn integer_accum_without_float_evidence_is_clean() {
        let src = "fn f(xs: &[u64], w: Workers) -> u64 {\n\
                   let mut n = 0u64;\n\
                   let _ = ordered_map(xs, w, |_, _x| { n += 1; 0 });\n\
                   n\n}\n";
        assert!(flows(src)[0].par_accums.is_empty());
    }

    #[test]
    fn map_reduce_fold_closure_is_exempt() {
        let src = "fn f(xs: &[f64], w: Workers) -> f64 {\n\
                   let mut acc = 0.0;\n\
                   map_reduce(xs, w, |x| x * 2.0, 0.0, |a, b| { acc += b; a + b });\n\
                   acc\n}\n";
        assert!(flows(src)[0].par_accums.is_empty());
    }

    #[test]
    fn running_mean_rebind_is_flagged() {
        let src = "fn f(xs: &[f64], w: Workers) -> f64 {\n\
                   let mut mean = 0.0;\n\
                   let _ = ordered_collect(4, w, |i| { mean = mean + (xs[i] - mean); i });\n\
                   mean\n}\n";
        assert_eq!(flows(src)[0].par_accums.len(), 1);
    }

    #[test]
    fn codec_pair_with_swapped_fields_diverges() {
        let src = "fn put_h(w: &mut ByteWriter, h: &H) { w.u32(h.a); w.u64(h.b); }\n\
                   fn get_h(r: &mut ByteReader) -> Result<H, String> {\n\
                   Ok(H { b: r.u64()?, a: r.u32()? }) }\n";
        let f = flows(src);
        let codecs: Vec<(usize, CodecFn)> = f
            .iter()
            .enumerate()
            .filter_map(|(i, fl)| fl.codec.clone().map(|c| (i, c)))
            .collect();
        let issues = check_codecs(&codecs);
        assert_eq!(issues.len(), 1);
        match &issues[0] {
            CodecIssue::Mismatch { detail, .. } => {
                assert!(detail.contains("field 1"), "{detail}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn symmetric_pair_with_loops_and_subcalls_is_clean() {
        let src = "fn put_inner(w: &mut W, x: &X) { w.u8(x.t); w.f64(x.v); }\n\
                   fn get_inner(r: &mut R) -> Result<X, String> {\n\
                   Ok(X { t: r.u8()?, v: r.f64()? }) }\n\
                   fn encode(w: &mut W, xs: &[X]) {\n\
                   w.counter(xs.len());\n\
                   for x in xs { put_inner(w, x); } }\n\
                   fn decode(r: &mut R) -> Result<Vec<X>, String> {\n\
                   let n = r.len(9)?;\n\
                   let mut out = Vec::new();\n\
                   for _ in 0..n { out.push(get_inner(r)?); }\n\
                   Ok(out) }\n";
        let f = flows(src);
        let codecs: Vec<(usize, CodecFn)> = f
            .iter()
            .enumerate()
            .filter_map(|(i, fl)| fl.codec.clone().map(|c| (i, c)))
            .collect();
        assert_eq!(codecs.len(), 4);
        assert!(check_codecs(&codecs).is_empty());
    }

    #[test]
    fn unpaired_root_encoder_is_reported_but_subcodecs_are_not() {
        let src = "fn put_inner(w: &mut W, x: &X) { w.u8(x.t); }\n\
                   fn encode(w: &mut W, xs: &[X]) { for x in xs { put_inner(w, x); } }\n";
        let f = flows(src);
        let codecs: Vec<(usize, CodecFn)> = f
            .iter()
            .enumerate()
            .filter_map(|(i, fl)| fl.codec.clone().map(|c| (i, c)))
            .collect();
        let issues = check_codecs(&codecs);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(matches!(
            &issues[0],
            CodecIssue::Unpaired { name, is_encoder: true, .. } if name == "encode"
        ));
    }

    #[test]
    fn error_return_arms_do_not_break_symmetry() {
        let src = "fn put_t(w: &mut W, t: &T) {\n\
                   match t.kind { 0 => { w.u8(0); w.u64(t.a); } _ => { w.u8(1); w.u64(t.b); } } }\n\
                   fn get_t(r: &mut R) -> Result<T, String> {\n\
                   let k = r.u8()?;\n\
                   let v = r.u64()?;\n\
                   match k { 0 | 1 => Ok(T::new(k, v)), bad => return Err(format!(\"{bad}\")) } }\n";
        let f = flows(src);
        let codecs: Vec<(usize, CodecFn)> = f
            .iter()
            .enumerate()
            .filter_map(|(i, fl)| fl.codec.clone().map(|c| (i, c)))
            .collect();
        assert!(check_codecs(&codecs).is_empty());
    }

    #[test]
    fn unguarded_index_is_flagged_and_guarded_is_not() {
        let src = "fn bad(data: &[u8]) -> u8 { data[4] }\n\
                   fn good(data: &[u8]) -> u8 {\n\
                   if data.len() < 5 { return 0; }\n\
                   data[4] }\n";
        let f = flows(src);
        assert_eq!(f[0].unguarded_indexes.len(), 1);
        assert!(f[1].unguarded_indexes.is_empty());
    }

    #[test]
    fn range_loop_binder_counts_as_a_guard() {
        let src = "fn f(xs: &[u64]) -> u64 {\n\
                   let mut s = 0;\n\
                   for i in 0..xs.len() { s += xs[i]; }\n\
                   s }\n";
        assert!(flows(src)[0].unguarded_indexes.is_empty());
    }

    #[test]
    fn comparison_guard_on_operand_counts() {
        let src = "fn f(xs: &[u64], i: usize) -> u64 {\n\
                   if i >= xs.len() { return 0; }\n\
                   xs[i] }\n";
        assert!(flows(src)[0].unguarded_indexes.is_empty());
    }

    #[test]
    fn split_at_derived_binding_inherits_the_parent_guard() {
        let src = "fn f(data: &[u8]) -> u8 {\n\
                   if data.len() < 9 { return 0; }\n\
                   let (head, _tail) = data.split_at(8);\n\
                   head[0] }\n";
        assert!(flows(src)[0].unguarded_indexes.is_empty());
    }

    #[test]
    fn totality_on_garbage_tokens() {
        for src in [
            "fn f( { [ ) } ] |,| if else match => .. for",
            "fn put_x(w){ w.u32( for { .f64( } match { => , => } }",
            "fn f(){ ordered_map(|,|{ x += ",
            "fn f(){ a[b[c[d[",
        ] {
            let _ = flows(src);
        }
    }
}
