//! SARIF 2.1.0 rendering of a [`LintReport`] (`--format sarif`),
//! hand-rolled like the JSON writer — the build environment has no
//! crates.io, so no serde derive helpers beyond the vendored
//! `serde_json` value type.
//!
//! The mapping keeps everything a standard CI viewer can use:
//!
//! * the rule catalog travels as `tool.driver.rules` (id, kebab name,
//!   and the contract summary as `shortDescription`);
//! * each finding becomes a `result` with a `physicalLocation`;
//! * the d7-style `root → … → sink` call chain becomes a `codeFlow`
//!   with one `threadFlow` location per chain hop, so viewers render
//!   the path from the deterministic root to the sink;
//! * `mfpa-lint: allow(...)` waivers become `suppressions` entries of
//!   kind `inSource` carrying the mandatory justification, which is
//!   how SARIF consumers distinguish waived from open results.
//!
//! Output is deterministic: findings arrive already sorted from
//! [`LintReport`] and the rule array follows catalog order.

use crate::{rules, Finding, LintReport};

/// Renders `report` as a SARIF 2.1.0 log with a single run.
#[must_use]
pub fn to_sarif(report: &LintReport) -> serde_json::Value {
    let rules_json: Vec<serde_json::Value> = rules::RULES
        .iter()
        .map(|r| {
            serde_json::json!({
                "id": r.id,
                "name": r.name,
                "shortDescription": { "text": r.summary },
            })
        })
        .collect();
    let results: Vec<serde_json::Value> = report.findings.iter().map(result_json).collect();
    serde_json::json!({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "mfpa-lint",
                    "informationUri": "https://example.invalid/mfpa/DESIGN.md",
                    "version": format!("{}.0.0", crate::SCHEMA_VERSION),
                    "rules": rules_json,
                }
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }]
    })
}

fn result_json(f: &Finding) -> serde_json::Value {
    let mut obj = serde_json::json!({
        "ruleId": f.rule,
        "level": "error",
        "message": { "text": f.message },
        "locations": [{
            "physicalLocation": {
                "artifactLocation": { "uri": f.file },
                "region": { "startLine": f.line },
            }
        }],
    });
    if let serde_json::Value::Object(map) = &mut obj {
        if let Some(ix) = rules::RULES.iter().position(|r| r.id == f.rule) {
            map.insert("ruleIndex".to_owned(), serde_json::json!(ix));
        }
        if f.chain.len() > 1 {
            let hops: Vec<serde_json::Value> = f
                .chain
                .iter()
                .map(|qname| {
                    serde_json::json!({
                        "location": {
                            "physicalLocation": {
                                "artifactLocation": { "uri": f.file },
                                "region": { "startLine": f.line },
                            },
                            "message": { "text": qname },
                        }
                    })
                })
                .collect();
            map.insert(
                "codeFlows".to_owned(),
                serde_json::json!([{ "threadFlows": [{ "locations": hops }] }]),
            );
        }
        if let Some(reason) = &f.suppressed {
            map.insert(
                "suppressions".to_owned(),
                serde_json::json!([{ "kind": "inSource", "justification": reason }]),
            );
        }
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_files, LintOptions, SourceFile};

    #[test]
    fn sarif_log_carries_rules_results_and_suppressions() {
        let files = [SourceFile {
            crate_name: "core".into(),
            label: "crates/core/src/pipeline.rs".into(),
            text: "
                pub struct Mfpa;
                impl Mfpa {
                    pub fn prepare(&self, x: Option<u32>) -> u32 {
                        let a = step(x);
                        // mfpa-lint: allow(d8, \"covered by caller invariant\")
                        let b = x.unwrap();
                        a + b
                    }
                }
                fn step(x: Option<u32>) -> u32 {
                    x.unwrap()
                }
            "
            .into(),
        }];
        let report = lint_files(&files, LintOptions::default());
        let log = to_sarif(&report);
        assert_eq!(log["version"].as_str(), Some("2.1.0"));
        let run = &log["runs"].as_array().expect("runs array")[0];
        let rules = run["tool"]["driver"]["rules"]
            .as_array()
            .expect("rules array");
        assert_eq!(rules.len(), crate::rules::RULES.len());
        let results = run["results"].as_array().expect("results array");
        assert!(!results.is_empty(), "{log:?}");
        let suppressed: Vec<_> = results
            .iter()
            .filter(|r| r.get("suppressions").is_some())
            .collect();
        assert_eq!(suppressed.len(), 1, "{results:?}");
        let sup = &suppressed[0]["suppressions"].as_array().expect("array")[0];
        assert_eq!(sup["kind"].as_str(), Some("inSource"), "{sup:?}");
        // The open d8 result carries the chain as a codeFlow.
        let with_flow = results
            .iter()
            .find(|r| r.get("codeFlows").is_some())
            .expect("a chained result");
        let flow = &with_flow["codeFlows"].as_array().expect("flows")[0];
        let thread = &flow["threadFlows"].as_array().expect("threads")[0];
        let hops = thread["locations"].as_array().expect("locations");
        assert!(!hops.is_empty());
    }
}
