//! The DESIGN §6 / §8 rule catalog and the token-stream scanner.
//!
//! Each rule is a purely lexical pattern over the comment-stripped
//! token stream of one library source file. The scanner is test-aware:
//! `#[cfg(test)]` items and `#[test]` functions are excised before any
//! rule runs, because the contract governs *shipping* code — tests may
//! unwrap and time things freely.

use crate::lexer::{Token, TokenKind};

/// A catalog entry: stable id, human name, and the contract clause the
/// rule enforces (mirrored in DESIGN.md §8).
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id used in findings and `allow(...)` suppressions.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// What the rule forbids.
    pub summary: &'static str,
    /// Crates the rule applies to (crate dir names; `suite` is the
    /// workspace root package). Interprocedural rules carry an empty
    /// crate scope: their domain is reachability, not directories.
    pub scope: &'static [&'static str],
    /// Whether the rule is scoped by reachability from the declared
    /// deterministic roots (d7–d9) instead of by crate directory.
    pub interprocedural: bool,
}

const LIB_CRATES: &[&str] = &[
    "telemetry",
    "fleetsim",
    "dataset",
    "ml",
    "core",
    "par",
    "bytes",
    "lint",
    "suite",
];
const DETERMINISTIC: &[&str] = &[
    "telemetry",
    "fleetsim",
    "dataset",
    "ml",
    "core",
    "par",
    "bytes",
];
const ORDERED_OUTPUT: &[&str] = &["fleetsim", "core", "ml", "dataset"];
const EVERYWHERE: &[&str] = &[
    "telemetry",
    "fleetsim",
    "dataset",
    "ml",
    "core",
    "par",
    "bytes",
    "bench",
    "lint",
    "suite",
];
const NO_PAR: &[&str] = &[
    "telemetry",
    "fleetsim",
    "dataset",
    "ml",
    "core",
    "bytes",
    "bench",
    "lint",
    "suite",
];
const COUNTER_CRATES: &[&str] = &["telemetry", "fleetsim", "dataset", "ml", "core", "bytes"];

/// The contract rules, in catalog order. d1–d6 are the lexical rules
/// scoped by crate directory (d2/d3/d5 now cover only code *not*
/// reachable from a deterministic root); d7–d9 are the interprocedural
/// rules scoped by reachability, and their findings carry the full
/// `root → … → sink` call chain.
pub const RULES: &[Rule] = &[
    Rule {
        id: "d1",
        name: "thread-outside-par",
        summary: "thread spawning (`std::thread::spawn`/`scope`, rayon) outside crates/par",
        scope: NO_PAR,
        interprocedural: false,
    },
    Rule {
        id: "d2",
        name: "unordered-iteration",
        summary: "a value derived from `HashMap`/`HashSet` iteration escapes a function \
                  in a crate feeding ordered/serialized output (lookup-only maps are \
                  machine-verified clean; use `BTreeMap`/`BTreeSet` or collect-and-sort)",
        scope: ORDERED_OUTPUT,
        interprocedural: false,
    },
    Rule {
        id: "d3",
        name: "wall-clock-entropy",
        summary: "`Instant`/`SystemTime` values escaping timing metadata, or entropy \
                  sources, in deterministic crates (elapsed-into-timing-fields is \
                  machine-verified clean)",
        scope: DETERMINISTIC,
        interprocedural: false,
    },
    Rule {
        id: "d4",
        name: "partial-float-order",
        summary: "`partial_cmp` on floats (NaN-unsafe ordering; use `total_cmp`)",
        scope: EVERYWHERE,
        interprocedural: false,
    },
    Rule {
        id: "d5",
        name: "panic-in-library",
        summary: "`unwrap()`/`expect()`/`panic!` in non-test library code \
                  (return structured errors instead)",
        scope: LIB_CRATES,
        interprocedural: false,
    },
    Rule {
        id: "d6",
        name: "truncating-cast",
        summary: "truncating `as` cast to a narrow integer on a counter/timestamp value",
        scope: COUNTER_CRATES,
        interprocedural: false,
    },
    Rule {
        id: "d7",
        name: "unordered-iteration-taint",
        summary: "a value derived from `HashMap`/`HashSet` iteration flows out of a \
                  function reachable from a deterministic root (ordered output, \
                  scores and serialized reports must not observe hash order)",
        scope: &[],
        interprocedural: true,
    },
    Rule {
        id: "d8",
        name: "panic-reachable",
        summary: "`unwrap()`/`expect()`/`panic!` (and, with --index-checks, slice \
                  indexing) in a function reachable from a deterministic root, \
                  in any crate",
        scope: &[],
        interprocedural: true,
    },
    Rule {
        id: "d9",
        name: "clock-entropy-taint",
        summary: "`Instant`/`SystemTime`/entropy/thread-id-derived values reaching \
                  code on a path from a deterministic root to model inputs \
                  (elapsed-into-timing-fields is machine-verified clean)",
        scope: &[],
        interprocedural: true,
    },
    Rule {
        id: "d10",
        name: "float-reduction-order",
        summary: "order-sensitive float accumulation (`+=`, `x = x + …`, running \
                  means) into a variable captured by a closure passed to an \
                  mfpa-par combinator — the per-item path runs in scheduling \
                  order; fold in `map_reduce`'s serial stage instead",
        scope: EVERYWHERE,
        interprocedural: false,
    },
    Rule {
        id: "d11",
        name: "codec-symmetry",
        summary: "a hand-rolled encoder/decoder pair (`put_X`/`get_X`, \
                  `encode`/`decode`, `to_bytes`/`from_bytes`) whose write and \
                  read sequences diverge in field width or order, or a codec \
                  root with no opposite-side partner in its file",
        scope: EVERYWHERE,
        interprocedural: false,
    },
    Rule {
        id: "d12",
        name: "decoder-bounds",
        summary: "slice indexing reachable from a decoder root \
                  (`checkpoint::restore`, `CompiledEnsemble::from_bytes`) with \
                  no dominating length guard on the same value chain — \
                  corrupted input must be refused, never allowed to panic",
        scope: &[],
        interprocedural: true,
    },
    Rule {
        id: "d13",
        name: "counter-arithmetic",
        summary: "counter arithmetic reachable from a deterministic root that the \
                  value-range analysis cannot prove safe: `a - b` where `b ≤ a` is \
                  unproven, `+`/`*`/`<<` whose result interval provably exceeds the \
                  target width, and `as` casts proven to truncate (interval-clean \
                  casts demote the lexical d6 heuristic)",
        scope: &[],
        interprocedural: true,
    },
    Rule {
        id: "d14",
        name: "unguarded-division",
        summary: "`/` or `%` reachable from a deterministic root whose denominator \
                  interval includes 0 and is not dominated by a nonzero guard or \
                  structured-error return (metrics ratios must not NaN/panic on \
                  empty shards)",
        scope: &[],
        interprocedural: true,
    },
    Rule {
        id: "d15",
        name: "unit-mixing",
        summary: "`+`/`-`/comparison between values of different inferred units \
                  (`_ms`, `_days`, `_bytes`, `_gib`, `_ratio`, `wall_*`, `n_*`) \
                  reachable from a deterministic root, without a named conversion \
                  helper on the path",
        scope: &[],
        interprocedural: true,
    },
];

/// Looks up a catalog rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Whether `rule` applies to the crate a file belongs to.
pub fn in_scope(rule: &Rule, crate_name: &str) -> bool {
    rule.scope.contains(&crate_name)
}

/// A rule hit before suppression matching.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Catalog rule id, or `lint` for meta findings (malformed/unused
    /// suppressions).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the hit.
    pub message: String,
}

/// A parsed `// mfpa-lint: allow(rule, "reason")` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Suppressed rule id.
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Trailing comments cover their own line; standalone comments
    /// cover the next line (stacking with adjacent standalone allows).
    pub standalone: bool,
}

/// Marker scanned for inside comments.
pub const SUPPRESS_MARKER: &str = "mfpa-lint:";

/// Removes `#[cfg(test)]` items, `#[test]` functions, and scopes gated
/// by an inner `#![cfg(test)]` attribute from the token stream
/// (comments inside removed items vanish with them).
pub fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_attr_start(tokens, i) {
            let attr = read_attr(tokens, i);
            if attr.is_test {
                if attr.inner {
                    // An inner `#![cfg(test)]` gates the rest of its
                    // enclosing scope: the whole file at top level, or
                    // the remainder of the `{ ... }` block it opens.
                    let mut depth = 0usize;
                    i = attr.end;
                    while i < tokens.len() {
                        match tokens[i].kind {
                            TokenKind::Punct('{') => depth += 1,
                            TokenKind::Punct('}') => {
                                if depth == 0 {
                                    break; // the enclosing scope's closer stays
                                }
                                depth -= 1;
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                    continue;
                }
                i = skip_item(tokens, attr.end);
                continue;
            }
            out.extend_from_slice(&tokens[i..attr.end]);
            i = attr.end;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

fn is_attr_start(tokens: &[Token], i: usize) -> bool {
    if !matches!(tokens.get(i).map(|t| &t.kind), Some(TokenKind::Punct('#'))) {
        return false;
    }
    match next_code(tokens, i + 1).map(|j| &tokens[j].kind) {
        Some(TokenKind::Punct('[')) => true,
        // Inner attribute `#![...]`.
        Some(TokenKind::Punct('!')) => {
            let Some(j) = next_code(tokens, i + 1) else {
                return false;
            };
            matches!(
                next_code(tokens, j + 1).map(|k| &tokens[k].kind),
                Some(TokenKind::Punct('['))
            )
        }
        _ => false,
    }
}

/// First non-comment token index at or after `i`.
fn next_code(tokens: &[Token], mut i: usize) -> Option<usize> {
    while i < tokens.len() {
        if !matches!(tokens[i].kind, TokenKind::Comment { .. }) {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// A parsed attribute: where it ends, whether it gates test-only code,
/// and whether it is an inner (`#![...]`) attribute.
struct Attr {
    end: usize,
    is_test: bool,
    inner: bool,
}

/// Reads an attribute starting at the `#` token; returns the index one
/// past its closing `]`, whether it gates test-only code, and whether
/// it is an inner attribute.
fn read_attr(tokens: &[Token], start: usize) -> Attr {
    let mut i = start + 1;
    let mut depth = 0usize;
    let mut inner = false;
    let mut idents: Vec<&str> = Vec::new();
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('!') if depth == 0 => inner = true,
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            TokenKind::Ident(s) => idents.push(s),
            _ => {}
        }
        i += 1;
    }
    let has = |w: &str| idents.contains(&w);
    let is_test = (idents.as_slice() == ["test"]) || (has("cfg") && has("test") && !has("not"));
    Attr {
        end: i,
        is_test,
        inner,
    }
}

/// Skips one item following a test attribute: any further attributes,
/// then either a `{ ... }` body (with matching brace) or a `;`.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    loop {
        match next_code(tokens, i) {
            Some(j) if is_attr_start(tokens, j) => {
                i = read_attr(tokens, j).end;
            }
            _ => break,
        }
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 && matches!(tokens[i].kind, TokenKind::Punct('}')) {
                    return i + 1;
                }
            }
            TokenKind::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Extracts suppression comments. Malformed suppressions (unknown
/// rule, missing or empty reason) become unsuppressible meta findings.
pub fn extract_suppressions(tokens: &[Token]) -> (Vec<Suppression>, Vec<RawFinding>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for t in tokens {
        let TokenKind::Comment { text, trailing } = &t.kind else {
            continue;
        };
        // Doc comments never suppress: the marker must sit in a plain
        // `//` or `/* */` comment, so documentation can *mention* the
        // syntax without activating it.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        if text.starts_with("/**") || text.starts_with("/*!") {
            continue;
        }
        let Some(pos) = text.find(SUPPRESS_MARKER) else {
            continue;
        };
        // Block comments keep their `*/` terminator in the token text.
        let rest = &text[pos + SUPPRESS_MARKER.len()..];
        let directive = rest.strip_suffix("*/").unwrap_or(rest).trim();
        match parse_allow(directive) {
            Ok((rule, reason)) => allows.push(Suppression {
                rule,
                reason,
                line: t.line,
                standalone: !trailing,
            }),
            Err(why) => malformed.push(RawFinding {
                rule: "lint",
                line: t.line,
                message: format!("malformed suppression: {why}"),
            }),
        }
    }
    (allows, malformed)
}

/// Parses `allow(rule, "reason")`.
fn parse_allow(directive: &str) -> Result<(String, String), String> {
    let rest = directive
        .strip_prefix("allow")
        .ok_or("expected `allow(rule, \"reason\")`")?
        .trim_start();
    let inner = rest
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or("expected parenthesized `allow(rule, \"reason\")`")?;
    let (rule, reason_part) = inner
        .split_once(',')
        .ok_or("a suppression must carry a reason: `allow(rule, \"reason\")`")?;
    let rule = rule.trim().to_owned();
    if rule_by_id(&rule).is_none() {
        return Err(format!("unknown rule id `{rule}`"));
    }
    let reason = reason_part.trim();
    let reason = reason
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(reason)
        .trim();
    if reason.is_empty() {
        return Err("empty reason".into());
    }
    Ok((rule, reason.to_owned()))
}

const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
const COUNTER_WORDS: &[&str] = &[
    "day",
    "days",
    "time",
    "ts",
    "timestamp",
    "hour",
    "hours",
    "count",
    "counts",
    "counter",
    "counters",
    "cycle",
    "cycles",
    "write",
    "writes",
    "read",
    "reads",
    "lba",
    "byte",
    "bytes",
    "serial",
    "seed",
    "epoch",
    "record",
    "records",
    "poh",
];

pub(crate) fn is_counterish(ident: &str) -> bool {
    ident
        .split('_')
        .any(|seg| COUNTER_WORDS.contains(&seg.to_ascii_lowercase().as_str()))
}

/// Runs every in-scope catalog rule over a comment-free token stream.
pub fn scan_rules(crate_name: &str, code: &[Token]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    let on = |id: &str| rule_by_id(id).is_some_and(|r| in_scope(r, crate_name));
    let ident = |i: usize| match code.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, c: char| matches!(code.get(i).map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c);

    for i in 0..code.len() {
        let line = code[i].line;
        let Some(word) = ident(i) else {
            continue;
        };
        match word {
            "rayon" if on("d1") => findings.push(RawFinding {
                rule: "d1",
                line,
                message: "rayon is forbidden; use mfpa_par's deterministic primitives".into(),
            }),
            "spawn" | "scope" if on("d1") => {
                let path_form = i >= 3
                    && punct(i - 1, ':')
                    && punct(i - 2, ':')
                    && ident(i - 3) == Some("thread");
                let method_form =
                    word == "spawn" && i >= 1 && punct(i - 1, '.') && punct(i + 1, '(');
                if path_form || method_form {
                    findings.push(RawFinding {
                        rule: "d1",
                        line,
                        message: format!(
                            "thread {word} outside crates/par; route work through \
                             mfpa_par::ordered_map/map_reduce"
                        ),
                    });
                }
            }
            // `HashMap`/`HashSet` (d2/d7) and `Instant`/`SystemTime`
            // (d3/d9) are no longer flagged on mere mention: the taint
            // analyzer (crate::taint) decides whether the value escapes
            // — lookup-only maps and elapsed-into-timing-metadata
            // clocks are machine-verified clean.
            "thread_rng" | "from_entropy" if on("d3") => findings.push(RawFinding {
                rule: "d3",
                line,
                message: format!("entropy source {word} in a deterministic path; seed explicitly"),
            }),
            "random" if on("d3") && punct(i + 1, '(') => findings.push(RawFinding {
                rule: "d3",
                line,
                message: "entropy source random() in a deterministic path; seed explicitly".into(),
            }),
            "partial_cmp" if on("d4") => findings.push(RawFinding {
                rule: "d4",
                line,
                message: "partial_cmp is NaN-unsafe; use f64::total_cmp (or derive Ord)".into(),
            }),
            "unwrap" | "expect" if on("d5") && i >= 1 && punct(i - 1, '.') && punct(i + 1, '(') => {
                findings.push(RawFinding {
                    rule: "d5",
                    line,
                    message: format!("{word}() in library code; return a structured error instead"),
                });
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if on("d5") && punct(i + 1, '!') => {
                findings.push(RawFinding {
                    rule: "d5",
                    line,
                    message: format!("{word}! in library code; return a structured error instead"),
                });
            }
            "as" if on("d6") => {
                let Some(ty) = ident(i + 1) else { continue };
                if !NARROW_INTS.contains(&ty) {
                    continue;
                }
                // Heuristic: any counter/timestamp-named identifier
                // earlier on the same line marks the cast suspicious.
                let culprit = (0..i)
                    .rev()
                    .take_while(|&j| code[j].line == line)
                    .find_map(|j| ident(j).filter(|s| is_counterish(s)));
                if let Some(name) = culprit {
                    findings.push(RawFinding {
                        rule: "d6",
                        line,
                        message: format!(
                            "truncating cast `as {ty}` near counter/timestamp `{name}`; \
                             widen or bound-check explicitly"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    findings
}
