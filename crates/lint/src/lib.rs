//! `mfpa-lint` — a registry-access-free static-analysis pass that
//! enforces the workspace determinism-and-robustness contract
//! (DESIGN.md §6/§8) at the source level, before any test runs.
//!
//! The tool walks every library `.rs` file in the workspace
//! (`crates/*/src/**`, plus the root package's `src/**`), tokenizes it
//! with a small hand-rolled lexer (no `syn` — the build environment has
//! no crates.io), and applies the [`rules::RULES`] catalog. Violations
//! can be suppressed inline with a mandatory justification:
//!
//! ```text
//! let t = Instant::now(); // mfpa-lint: allow(d3, "timing metadata only")
//! ```
//!
//! A standalone suppression comment covers the next line; adjacent
//! standalone suppressions stack. Suppressions without a reason,
//! with an unknown rule id, or that match nothing are themselves
//! violations — suppression creep must stay visible.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use rules::{RawFinding, Suppression};

/// One lint finding, suppressed or not.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Finding {
    /// Catalog rule id (`d1`..`d6`), or `lint` for meta findings.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was matched.
    pub message: String,
    /// The suppression reason when an `allow` covers this finding.
    pub suppressed: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if let Some(reason) = &self.suppressed {
            write!(f, " (allowed: {reason})")?;
        }
        Ok(())
    }
}

/// Tool-level failure (I/O, bad root), distinct from lint findings.
#[derive(Debug)]
pub struct LintError(String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

/// Aggregated result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, suppressed and unsuppressed, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub n_files: usize,
}

impl LintReport {
    /// Findings not covered by an `allow`.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Findings covered by an `allow`.
    pub fn suppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_some())
    }

    /// Whether the workspace is clean (CI gate).
    pub fn is_clean(&self) -> bool {
        self.unsuppressed().next().is_none()
    }

    /// Human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        let n_bad = self.unsuppressed().count();
        let n_allowed = self.suppressed().count();
        out.push_str(&format!(
            "mfpa-lint: {} file(s) scanned, {} rule(s), {} violation(s), {} allowed\n",
            self.n_files,
            rules::RULES.len(),
            n_bad,
            n_allowed,
        ));
        out
    }

    /// Machine-readable report (`--format json`).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "files_scanned": self.n_files,
            "violations": self.unsuppressed().count(),
            "allowed": self.suppressed().count(),
            "findings": self.findings,
        })
    }

    /// The committed `results/lint_report.json` snapshot: per rule, the
    /// number of suppressions and their reasons, so suppression creep
    /// shows up in diffs.
    pub fn snapshot_json(&self) -> serde_json::Value {
        let mut per_rule: BTreeMap<&str, (usize, Vec<String>)> = BTreeMap::new();
        for r in rules::RULES {
            per_rule.insert(r.id, (0, Vec::new()));
        }
        for f in self.suppressed() {
            let entry = per_rule.entry(f.rule.as_str()).or_default();
            entry.0 += 1;
            if let Some(reason) = &f.suppressed {
                entry.1.push(format!("{}:{}: {}", f.file, f.line, reason));
            }
        }
        let rules_json: Vec<serde_json::Value> = rules::RULES
            .iter()
            .map(|r| {
                let (n, reasons) = per_rule.get(r.id).cloned().unwrap_or_default();
                serde_json::json!({
                    "rule": r.id,
                    "name": r.name,
                    "allows": n,
                    "reasons": reasons,
                })
            })
            .collect();
        serde_json::json!({
            "files_scanned": self.n_files,
            "violations": self.unsuppressed().count(),
            "rules": rules_json,
        })
    }
}

/// Renders a JSON value with two-space indentation (the vendored
/// serde_json only prints compact) so the committed snapshot diffs
/// line-by-line.
pub fn pretty_json(value: &serde_json::Value) -> String {
    let mut out = String::new();
    render(value, 0, &mut out);
    out.push('\n');
    out
}

fn render(value: &serde_json::Value, indent: usize, out: &mut String) {
    use serde_json::Value;
    let pad = "  ".repeat(indent + 1);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                render(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&serde_json::Value::String(k.clone()).to_string());
                out.push_str(": ");
                render(v, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        scalar_or_empty => out.push_str(&scalar_or_empty.to_string()),
    }
}

/// Lints one file's source text as belonging to `crate_name` (the
/// directory name under `crates/`, or `suite` for the root package).
pub fn lint_source(crate_name: &str, file_label: &str, src: &str) -> Vec<Finding> {
    let tokens = lexer::tokenize(src);
    let kept = rules::strip_test_code(&tokens);
    let (allows, malformed) = rules::extract_suppressions(&kept);
    let raw = rules::scan_rules(crate_name, &comment_free(&kept));

    let mut used = vec![false; allows.len()];
    let mut findings: Vec<Finding> = Vec::new();
    for hit in raw {
        let reason = match_suppression(&allows, &mut used, &hit);
        findings.push(Finding {
            rule: hit.rule.to_owned(),
            file: file_label.to_owned(),
            line: hit.line,
            message: hit.message,
            suppressed: reason,
        });
    }
    for m in malformed {
        findings.push(Finding {
            rule: m.rule.to_owned(),
            file: file_label.to_owned(),
            line: m.line,
            message: m.message,
            suppressed: None,
        });
    }
    for (allow, used) in allows.iter().zip(&used) {
        if !used {
            findings.push(Finding {
                rule: "lint".to_owned(),
                file: file_label.to_owned(),
                line: allow.line,
                message: format!(
                    "unused suppression for `{}` (nothing to allow here — remove it)",
                    allow.rule
                ),
                suppressed: None,
            });
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    findings
}

fn comment_free(tokens: &[lexer::Token]) -> Vec<lexer::Token> {
    tokens
        .iter()
        .filter(|t| !matches!(t.kind, lexer::TokenKind::Comment { .. }))
        .cloned()
        .collect()
}

/// Finds the `allow` covering `hit`, marking it used: a trailing
/// suppression on the hit's own line, or a standalone suppression on
/// the line(s) immediately above (standalone allows stack).
fn match_suppression(
    allows: &[Suppression],
    used: &mut [bool],
    hit: &RawFinding,
) -> Option<String> {
    let at = |line: u32, standalone_only: bool| -> Option<usize> {
        allows.iter().position(|a| {
            a.line == line && a.rule == hit.rule && (!standalone_only || a.standalone)
        })
    };
    if let Some(ix) = at(hit.line, false) {
        used[ix] = true;
        return Some(allows[ix].reason.clone());
    }
    // Walk upward through a contiguous block of standalone allows.
    let mut line = hit.line;
    while line > 1 {
        line -= 1;
        let any_standalone_here = allows.iter().any(|a| a.line == line && a.standalone);
        if !any_standalone_here {
            break;
        }
        if let Some(ix) = at(line, true) {
            used[ix] = true;
            return Some(allows[ix].reason.clone());
        }
    }
    None
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Lints every library source file under the workspace root: each
/// `crates/<name>/src/**/*.rs` plus the root package's `src/**/*.rs`.
/// `tests/`, `benches/`, `examples/`, `vendor/` and `target/` are out
/// of scope — the contract governs shipping code.
///
/// # Errors
///
/// Returns [`LintError`] on I/O failures (unreadable directories or
/// files), never on lint findings.
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    let mut report = LintReport::default();
    let mut units: Vec<(String, PathBuf)> = Vec::new();

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| LintError(format!("read {}: {e}", crates_dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError(format!("read crates/: {e}")))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                let name = entry.file_name().to_string_lossy().into_owned();
                units.push((name, src));
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        units.push(("suite".to_owned(), root_src));
    }
    units.sort();

    for (crate_name, src_dir) in units {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| LintError(format!("read {}: {e}", path.display())))?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            report
                .findings
                .extend(lint_source(&crate_name, &label, &text));
            report.n_files += 1;
        }
    }
    report.findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.rule.cmp(&b.rule))
    });
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| LintError(format!("read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError(format!("read {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_allow_covers_its_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // mfpa-lint: allow(d5, \"test invariant\")\n}\n";
        let findings = lint_source("core", "f.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].suppressed.as_deref(), Some("test invariant"));
    }

    #[test]
    fn standalone_allow_covers_next_line_and_stacks() {
        let src = "use std::collections::HashMap;\nfn f(x: Option<u32>) -> u32 {\n    // mfpa-lint: allow(d2, \"lookup only\")\n    // mfpa-lint: allow(d5, \"checked above\")\n    HashMap::<u32, u32>::new().get(&0).copied().unwrap()\n}\n";
        // Line 1's HashMap is unsuppressed; line 5's HashMap + unwrap
        // are covered by the stacked standalone allows.
        let findings = lint_source("core", "f.rs", src);
        let bad: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
        assert_eq!(bad.len(), 1, "{findings:?}");
        assert_eq!(bad[0].line, 1);
        assert_eq!(
            findings.iter().filter(|f| f.suppressed.is_some()).count(),
            2
        );
    }

    #[test]
    fn reasonless_allow_is_a_violation() {
        let src = "// mfpa-lint: allow(d5)\nfn f() {}\n";
        let findings = lint_source("core", "f.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lint");
        assert!(findings[0].message.contains("reason"), "{findings:?}");
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let src = "fn f() {} // mfpa-lint: allow(d5, \"nothing here\")\n";
        let findings = lint_source("core", "f.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lint");
        assert!(findings[0].message.contains("unused"), "{findings:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(lint_source("core", "f.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let findings = lint_source("core", "f.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "d5");
    }

    #[test]
    fn out_of_scope_crate_is_silent() {
        // bench may panic and take wall-clock time freely.
        let src = "fn f(x: Option<u32>) -> u32 { let _t = Instant::now(); x.unwrap() }\n";
        assert!(lint_source("bench", "f.rs", src).is_empty());
    }

    #[test]
    fn workspace_root_is_found() {
        let here = std::env::current_dir().expect("cwd exists");
        let root = find_workspace_root(&here).expect("inside the workspace");
        assert!(root.join("crates").is_dir());
    }
}
