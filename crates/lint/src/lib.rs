//! `mfpa-lint` — a registry-access-free static-analysis pass that
//! enforces the workspace determinism-and-robustness contract
//! (DESIGN.md §6/§8) at the source level, before any test runs.
//!
//! The tool walks every library `.rs` file in the workspace
//! (`crates/*/src/**`, plus the root package's `src/**`), tokenizes it
//! with a small hand-rolled lexer (no `syn` — the build environment has
//! no crates.io), and runs two passes over it:
//!
//! 1. the **lexical** rules d1–d6 over each file's token stream, and
//! 2. the **interprocedural** rules d7–d9: a total parser recovers the
//!    item tree ([`parser`]), a workspace call graph is built with
//!    conservative fallback edges ([`callgraph`]), and per-function
//!    dataflow facts ([`taint`]) are mapped through *reachability from
//!    the declared deterministic roots* ([`ROOT_SPECS`]). A fact inside
//!    a reachable function becomes a d7/d8/d9 finding carrying the full
//!    `root → … → sink` call chain; the same fact in unreachable code
//!    falls back to the crate-scoped d2/d3 rules.
//!
//! Violations can be suppressed inline with a mandatory justification:
//!
//! ```text
//! let t = Instant::now(); // mfpa-lint: allow(d3, "timing metadata only")
//! ```
//!
//! A standalone suppression comment covers the next line; adjacent
//! standalone suppressions stack. Each allow is consumed by exactly one
//! finding line: suppressions without a reason, with an unknown rule
//! id, or that match nothing are themselves violations — suppression
//! creep must stay visible.

#![warn(missing_docs)]

pub mod absint;
pub mod cache;
pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod taint;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use callgraph::{CallGraph, FileItems, Reachability};
use rules::{RawFinding, Suppression};

/// The declared deterministic roots (DESIGN §8): every function
/// reachable from one of these must satisfy d7–d9. A spec's last
/// segment is a function name; preceding segments must match the
/// node's `impl` type, trait, module, or crate.
pub const ROOT_SPECS: &[&str] = &[
    "pipeline::prepare",
    "deploy::score_fleet",
    "DriveMonitor::ingest",
    "FleetMonitor::ingest_batch",
    "checkpoint::restore",
    "fleet::generate",
    "Classifier::fit",
    "Classifier::predict_proba",
    "CompiledEnsemble::predict_proba",
    "SequentialScorer::score_rows",
];

/// The decoder roots for the d12 decoder-bounds rule: the entry points
/// hostile bytes flow through. Everything reachable from these must
/// bounds-guard its slice indexing — corrupted input is refused with a
/// structured error, never a panic. Same spec syntax as [`ROOT_SPECS`].
pub const DECODE_ROOT_SPECS: &[&str] = &["checkpoint::restore", "CompiledEnsemble::from_bytes"];

/// The snapshot/JSON schema version. Bumped to 2 when findings gained
/// the `chain` field and the snapshot per-rule `entries`; to 3 when the
/// dataflow rules d10–d12 joined the catalog; to 4 when the value-range
/// rules d13–d15 joined and d6 became a fallback behind the semantic
/// cast judgment.
pub const SCHEMA_VERSION: u32 = 4;

/// Options controlling the analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Also flag slice/array indexing reachable from a deterministic
    /// root under d8 (`--index-checks`; off by default because bounds-
    /// checked indexing is pervasive and panics there are a severity
    /// tier below unwrap-on-corrupt-telemetry).
    pub index_checks: bool,
}

/// One lint finding, suppressed or not.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Finding {
    /// Catalog rule id (`d1`..`d9`), or `lint` for meta findings.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was matched.
    pub message: String,
    /// The call chain that makes this finding matter: for d7–d9 the
    /// shortest `root → … → sink` path from a deterministic root; for
    /// lexical findings the enclosing function (or the file label for
    /// module-level hits).
    pub chain: Vec<String>,
    /// The suppression reason when an `allow` covers this finding.
    pub suppressed: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if self.chain.len() > 1 {
            write!(f, "\n    chain: {}", self.chain.join(" → "))?;
        }
        if let Some(reason) = &self.suppressed {
            write!(f, " (allowed: {reason})")?;
        }
        Ok(())
    }
}

/// Tool-level failure (I/O, bad root), distinct from lint findings.
#[derive(Debug)]
pub struct LintError(String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

/// Aggregated result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, suppressed and unsuppressed, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub n_files: usize,
}

impl LintReport {
    /// Findings not covered by an `allow`.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Findings covered by an `allow`.
    pub fn suppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_some())
    }

    /// Whether the workspace is clean (CI gate).
    pub fn is_clean(&self) -> bool {
        self.unsuppressed().next().is_none()
    }

    /// Human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        let n_bad = self.unsuppressed().count();
        let n_allowed = self.suppressed().count();
        out.push_str(&format!(
            "mfpa-lint: {} file(s) scanned, {} rule(s), {} violation(s), {} allowed\n",
            self.n_files,
            rules::RULES.len(),
            n_bad,
            n_allowed,
        ));
        out
    }

    /// Machine-readable report (`--format json`).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "schema_version": SCHEMA_VERSION,
            "files_scanned": self.n_files,
            "violations": self.unsuppressed().count(),
            "allowed": self.suppressed().count(),
            "findings": self.findings,
        })
    }

    /// The committed `results/lint_report.json` snapshot: per rule, the
    /// suppressions with their reasons and call chains, so suppression
    /// creep shows up in diffs and every waiver stays attributable to a
    /// deterministic root.
    pub fn snapshot_json(&self) -> serde_json::Value {
        let mut per_rule: BTreeMap<&str, Vec<serde_json::Value>> = BTreeMap::new();
        for r in rules::RULES {
            per_rule.insert(r.id, Vec::new());
        }
        for f in self.suppressed() {
            let entry = serde_json::json!({
                "at": format!("{}:{}", f.file, f.line),
                "reason": f.suppressed.clone().unwrap_or_default(),
                "chain": f.chain,
            });
            per_rule.entry(f.rule.as_str()).or_default().push(entry);
        }
        let rules_json: Vec<serde_json::Value> = rules::RULES
            .iter()
            .map(|r| {
                let entries = per_rule.get(r.id).cloned().unwrap_or_default();
                serde_json::json!({
                    "rule": r.id,
                    "name": r.name,
                    "allows": entries.len(),
                    "entries": entries,
                })
            })
            .collect();
        serde_json::json!({
            "schema_version": SCHEMA_VERSION,
            "files_scanned": self.n_files,
            "violations": self.unsuppressed().count(),
            "rules": rules_json,
        })
    }
}

/// Renders a JSON value with two-space indentation (the vendored
/// serde_json only prints compact) so the committed snapshot diffs
/// line-by-line.
pub fn pretty_json(value: &serde_json::Value) -> String {
    let mut out = String::new();
    render(value, 0, &mut out);
    out.push('\n');
    out
}

fn render(value: &serde_json::Value, indent: usize, out: &mut String) {
    use serde_json::Value;
    let pad = "  ".repeat(indent + 1);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                render(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&serde_json::Value::String(k.clone()).to_string());
                out.push_str(": ");
                render(v, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        scalar_or_empty => out.push_str(&scalar_or_empty.to_string()),
    }
}

/// One source file to lint: crate directory name (`core`, …, `suite`),
/// workspace-relative label, and the source text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Crate directory name under `crates/`, or `suite` for the root
    /// package.
    pub crate_name: String,
    /// Workspace-relative path label used in findings.
    pub label: String,
    /// File contents.
    pub text: String,
}

/// Per-file output of the parallel scan stage. `pub(crate)` so the
/// incremental cache ([`cache`]) can persist and reconstruct it.
pub(crate) struct FileScan {
    pub(crate) crate_name: String,
    pub(crate) label: String,
    pub(crate) allows: Vec<Suppression>,
    pub(crate) malformed: Vec<RawFinding>,
    pub(crate) lexical: Vec<RawFinding>,
    pub(crate) items: FileItems,
}

pub(crate) fn scan_file(sf: &SourceFile) -> FileScan {
    let tokens = lexer::tokenize(&sf.text);
    let kept = rules::strip_test_code(&tokens);
    let (allows, malformed) = rules::extract_suppressions(&kept);
    let code = comment_free(&kept);
    let lexical = rules::scan_rules(&sf.crate_name, &code);
    let parsed = parser::parse(&code);
    let facts = parsed
        .functions
        .iter()
        .map(|f| taint::analyze_fn(&code, f, &parsed.unordered_fields))
        .collect();
    let flows = parsed
        .functions
        .iter()
        .map(|f| dataflow::analyze_fn(&code, f))
        .collect();
    FileScan {
        crate_name: sf.crate_name.clone(),
        label: sf.label.clone(),
        allows,
        malformed,
        lexical,
        items: FileItems {
            crate_name: sf.crate_name.clone(),
            label: sf.label.clone(),
            mod_path: callgraph::module_path_from_label(&sf.label),
            parsed,
            facts,
            flows,
            code,
        },
    }
}

/// Builds the workspace call graph for a set of in-memory files.
/// Per-file parsing runs on the deterministic `mfpa_par` pool, so the
/// graph is bit-identical at any `MFPA_THREADS`.
pub fn build_call_graph(files: &[SourceFile]) -> CallGraph {
    let workers = mfpa_par::Workers::from_config(0);
    let scans = mfpa_par::ordered_map(files, workers, |_, sf| scan_file(sf));
    let items: Vec<FileItems> = scans.into_iter().map(|s| s.items).collect();
    CallGraph::build(&items)
}

/// Lints a set of in-memory source files as one workspace: lexical
/// rules per file, then the interprocedural d7–d9 pass over the whole
/// set. This is the core entry point; [`lint_workspace`] and
/// [`lint_source`] are thin wrappers.
pub fn lint_files(files: &[SourceFile], opts: LintOptions) -> LintReport {
    let workers = mfpa_par::Workers::from_config(0);
    let scans = mfpa_par::ordered_map(files, workers, |_, sf| scan_file(sf));
    assemble_report(&scans, opts)
}

/// The shared back half of a lint run: everything cross-file (call
/// graph, reachability, value-range interpretation) plus suppression
/// matching, over already-scanned files. Both the cold path
/// ([`lint_files`]) and the warm cache path
/// ([`cache::lint_files_cached`]) land here, so the two are findings-
/// identical by construction.
fn assemble_report(scans: &[FileScan], opts: LintOptions) -> LintReport {
    let items: Vec<FileItems> = scans.iter().map(|s| s.items.clone()).collect();
    let graph = CallGraph::build(&items);
    let reach = Reachability::compute(&graph, ROOT_SPECS);
    let reach_decode = Reachability::compute(&graph, DECODE_ROOT_SPECS);
    let abs = absint::analyze(&items, &graph);

    // Node indices per file label, for span lookup.
    let mut nodes_of_file: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (ix, n) in graph.nodes.iter().enumerate() {
        nodes_of_file.entry(n.file.as_str()).or_default().push(ix);
    }

    let mut report = LintReport {
        findings: Vec::new(),
        n_files: scans.len(),
    };
    for scan in scans {
        let file_nodes = nodes_of_file
            .get(scan.label.as_str())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        report.findings.extend(assemble_file(
            scan,
            &graph,
            &reach,
            &reach_decode,
            &abs,
            file_nodes,
            opts,
        ));
    }
    report.findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.rule.cmp(&b.rule))
    });
    report
}

/// A hit plus its chain, before suppression matching.
struct Hit {
    rule: &'static str,
    line: u32,
    message: String,
    chain: Vec<String>,
}

/// Turns one file's lexical hits and per-function facts into findings,
/// applying reachability gating and suppression matching.
fn assemble_file(
    scan: &FileScan,
    graph: &CallGraph,
    reach: &Reachability,
    reach_decode: &Reachability,
    abs: &[absint::FnAbs],
    file_nodes: &[usize],
    opts: LintOptions,
) -> Vec<Finding> {
    let names_of = |r: &Reachability, ix: usize| -> Vec<String> {
        r.chains[ix]
            .as_ref()
            .map(|c| c.iter().map(|&i| graph.nodes[i].qname.clone()).collect())
            .unwrap_or_default()
    };
    let chain_names = |ix: usize| names_of(reach, ix);
    // The innermost function whose span covers `line`.
    let enclosing = |line: u32| -> Option<usize> {
        file_nodes
            .iter()
            .copied()
            .filter(|&ix| {
                let n = &graph.nodes[ix];
                n.line <= line && line <= n.end_line
            })
            .min_by_key(|&ix| graph.nodes[ix].end_line - graph.nodes[ix].line)
    };
    let reachable = |ix: usize| reach.chains[ix].is_some();

    let mut hits: Vec<Hit> = Vec::new();

    // Lexical rules. d3/d5 hits inside a reachable function are
    // superseded by the interprocedural d9/d8 findings for the same
    // tokens (which add the call chain); dropping them here keeps one
    // finding per site.
    for raw in &scan.lexical {
        let encl = enclosing(raw.line);
        if matches!(raw.rule, "d3" | "d5") {
            if let Some(ix) = encl {
                if reachable(ix) {
                    continue;
                }
            }
        }
        // d6 demotion: the name heuristic yields to the semantic cast
        // judgment whenever the value-range analysis reached a verdict
        // on the same line — a proven-fitting cast is silence, a
        // proven-truncating cast in reachable code is the d13 finding
        // (with interval evidence) instead. Only an unjudged line
        // (interval too wide, or code the interpreter never saw)
        // keeps d6 as the fallback.
        if raw.rule == "d6" {
            if let Some(fa) = encl.and_then(|ix| abs.get(ix)) {
                if fa.cast_fit_lines.contains(&raw.line)
                    && !fa.cast_unknown_lines.contains(&raw.line)
                {
                    continue;
                }
                if fa.cast_risk_lines.contains(&raw.line) && encl.is_some_and(&reachable) {
                    continue;
                }
            }
        }
        let chain = match encl {
            Some(ix) => vec![graph.nodes[ix].qname.clone()],
            None => vec![scan.label.clone()],
        };
        hits.push(Hit {
            rule: raw.rule,
            line: raw.line,
            message: raw.message.clone(),
            chain,
        });
    }

    // Interprocedural facts, routed by reachability.
    let crate_scoped = |rule_id: &str| {
        rules::rule_by_id(rule_id).is_some_and(|r| rules::in_scope(r, &scan.crate_name))
    };
    for &ix in file_nodes {
        let n = &graph.nodes[ix];
        if reachable(ix) {
            let chain = chain_names(ix);
            for s in &n.facts.unordered_sites {
                hits.push(Hit {
                    rule: "d7",
                    line: s.line,
                    message: s.what.clone(),
                    chain: chain.clone(),
                });
            }
            for s in &n.facts.panic_sites {
                hits.push(Hit {
                    rule: "d8",
                    line: s.line,
                    message: s.what.clone(),
                    chain: chain.clone(),
                });
            }
            if opts.index_checks {
                for s in &n.facts.index_sites {
                    hits.push(Hit {
                        rule: "d8",
                        line: s.line,
                        message: s.what.clone(),
                        chain: chain.clone(),
                    });
                }
            }
            for s in n.facts.clock_sites.iter().chain(&n.facts.entropy_sites) {
                hits.push(Hit {
                    rule: "d9",
                    line: s.line,
                    message: s.what.clone(),
                    chain: chain.clone(),
                });
            }
        } else {
            // Unreachable code falls back to the crate-scoped lexical
            // rule families (panics and entropy are already covered by
            // the lexical d5/d3 arms above).
            if crate_scoped("d2") {
                for s in &n.facts.unordered_sites {
                    hits.push(Hit {
                        rule: "d2",
                        line: s.line,
                        message: s.what.clone(),
                        chain: vec![n.qname.clone()],
                    });
                }
            }
            if crate_scoped("d3") {
                for s in &n.facts.clock_sites {
                    hits.push(Hit {
                        rule: "d3",
                        line: s.line,
                        message: s.what.clone(),
                        chain: vec![n.qname.clone()],
                    });
                }
            }
        }
    }

    // Dataflow rules. d10 is crate-scoped — an order-sensitive captured
    // accumulator corrupts determinism wherever the closure runs. d12
    // is gated by reachability from the decoder roots and carries that
    // chain, so every finding names the hostile-input entry point.
    for &ix in file_nodes {
        let n = &graph.nodes[ix];
        if crate_scoped("d10") {
            for s in &n.flow.par_accums {
                hits.push(Hit {
                    rule: "d10",
                    line: s.line,
                    message: s.what.clone(),
                    chain: if reachable(ix) {
                        chain_names(ix)
                    } else {
                        vec![n.qname.clone()]
                    },
                });
            }
        }
        if reach_decode.chains[ix].is_some() {
            for s in &n.flow.unguarded_indexes {
                hits.push(Hit {
                    rule: "d12",
                    line: s.line,
                    message: s.what.clone(),
                    chain: names_of(reach_decode, ix),
                });
            }
        }
    }

    // Value-range rules d13–d15: facts from the abstract interpreter,
    // gated by reachability from the deterministic roots (unreachable
    // counter arithmetic cannot corrupt features or metrics) and
    // carrying the root-to-sink chain plus interval evidence.
    for &ix in file_nodes {
        if !reachable(ix) {
            continue;
        }
        let Some(fa) = abs.get(ix) else { continue };
        let chain = chain_names(ix);
        for (rule, sites) in [("d13", &fa.d13), ("d14", &fa.d14), ("d15", &fa.d15)] {
            for s in sites {
                hits.push(Hit {
                    rule,
                    line: s.line,
                    message: s.what.clone(),
                    chain: chain.clone(),
                });
            }
        }
    }

    // d11 codec-symmetry: pair and compare this file's codec functions.
    if crate_scoped("d11") {
        let codecs: Vec<(usize, dataflow::CodecFn)> = file_nodes
            .iter()
            .filter_map(|&ix| graph.nodes[ix].flow.codec.clone().map(|c| (ix, c)))
            .collect();
        for issue in dataflow::check_codecs(&codecs) {
            match issue {
                dataflow::CodecIssue::Unpaired {
                    fn_ix,
                    line: _,
                    name,
                    is_encoder,
                } => {
                    let (side, wanted) = if is_encoder {
                        ("encoder", "decoder")
                    } else {
                        ("decoder", "encoder")
                    };
                    hits.push(Hit {
                        rule: "d11",
                        line: graph.nodes[fn_ix].line,
                        message: format!(
                            "codec {side} `{name}` has no {wanted} counterpart in this file"
                        ),
                        chain: vec![graph.nodes[fn_ix].qname.clone()],
                    });
                }
                dataflow::CodecIssue::Mismatch {
                    enc_ix,
                    dec_ix,
                    enc_line,
                    dec_line,
                    detail,
                } => {
                    let enc = &graph.nodes[enc_ix];
                    let dec = &graph.nodes[dec_ix];
                    hits.push(Hit {
                        rule: "d11",
                        line: enc_line,
                        message: format!(
                            "write sequence of `{}` (line {enc_line}) does not mirror \
                             the read sequence of `{}` (line {dec_line}): {detail}",
                            enc.name, dec.name
                        ),
                        chain: vec![enc.qname.clone(), dec.qname.clone()],
                    });
                }
            }
        }
    }

    hits.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));

    // Suppression matching: hits of one rule on one line form a group,
    // and each group consumes at most one allow — the nearest unused
    // one (same line first, then upward through a contiguous standalone
    // stack). An allow can never cover two finding lines.
    let mut used = vec![false; scan.allows.len()];
    let mut reasons: BTreeMap<(&'static str, u32), Option<String>> = BTreeMap::new();
    for h in &hits {
        let key = (h.rule, h.line);
        if reasons.contains_key(&key) {
            continue;
        }
        let reason = consume_allow(&scan.allows, &mut used, h.rule, h.line);
        reasons.insert(key, reason);
    }

    let mut findings: Vec<Finding> = hits
        .into_iter()
        .map(|h| Finding {
            rule: h.rule.to_owned(),
            file: scan.label.clone(),
            line: h.line,
            message: h.message,
            chain: h.chain,
            suppressed: reasons.get(&(h.rule, h.line)).cloned().flatten(),
        })
        .collect();

    for m in &scan.malformed {
        findings.push(Finding {
            rule: m.rule.to_owned(),
            file: scan.label.clone(),
            line: m.line,
            message: m.message.clone(),
            chain: vec![scan.label.clone()],
            suppressed: None,
        });
    }
    for (allow, used) in scan.allows.iter().zip(&used) {
        if !used {
            findings.push(Finding {
                rule: "lint".to_owned(),
                file: scan.label.clone(),
                line: allow.line,
                message: format!(
                    "unused suppression for `{}` (nothing to allow here — remove it)",
                    allow.rule
                ),
                chain: vec![scan.label.clone()],
                suppressed: None,
            });
        }
    }
    findings
}

fn comment_free(tokens: &[lexer::Token]) -> Vec<lexer::Token> {
    tokens
        .iter()
        .filter(|t| !matches!(t.kind, lexer::TokenKind::Comment { .. }))
        .cloned()
        .collect()
}

/// Finds and consumes the nearest unused `allow` covering a finding
/// group at (`rule`, `line`): first any allow on the line itself
/// (trailing or same-line block comment), then standalone allows
/// walking upward through a contiguous block. Consumed allows are
/// never reused for another finding line — that is the fix for the
/// stacked-allow accounting bug, where a same-line standalone allow
/// could cover both its own line and the next.
fn consume_allow(
    allows: &[Suppression],
    used: &mut [bool],
    rule: &str,
    line: u32,
) -> Option<String> {
    let mut take = |pred: &dyn Fn(&Suppression) -> bool| -> Option<String> {
        let ix = allows
            .iter()
            .enumerate()
            .position(|(i, a)| !used[i] && a.rule == rule && pred(a))?;
        used[ix] = true;
        Some(allows[ix].reason.clone())
    };
    if let Some(reason) = take(&|a| a.line == line) {
        return Some(reason);
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if !allows.iter().any(|a| a.line == l && a.standalone) {
            break;
        }
        if let Some(reason) = take(&|a| a.line == l && a.standalone) {
            return Some(reason);
        }
    }
    None
}

/// Lints one file's source text as belonging to `crate_name` (the
/// directory name under `crates/`, or `suite` for the root package).
/// The file is treated as a one-file workspace: roots it declares are
/// honored, everything else falls to the crate-scoped lexical rules.
pub fn lint_source(crate_name: &str, file_label: &str, src: &str) -> Vec<Finding> {
    let files = [SourceFile {
        crate_name: crate_name.to_owned(),
        label: file_label.to_owned(),
        text: src.to_owned(),
    }];
    lint_files(&files, LintOptions::default()).findings
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collects every library source file under the workspace root: each
/// `crates/<name>/src/**/*.rs` plus the root package's `src/**/*.rs`.
/// `tests/`, `benches/`, `examples/`, `vendor/` and `target/` are out
/// of scope — the contract governs shipping code.
///
/// # Errors
///
/// Returns [`LintError`] on I/O failures (unreadable directories or
/// files).
pub fn collect_workspace(root: &Path) -> Result<Vec<SourceFile>, LintError> {
    let mut units: Vec<(String, PathBuf)> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| LintError(format!("read {}: {e}", crates_dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError(format!("read crates/: {e}")))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                let name = entry.file_name().to_string_lossy().into_owned();
                units.push((name, src));
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        units.push(("suite".to_owned(), root_src));
    }
    units.sort();

    let mut out = Vec::new();
    for (crate_name, src_dir) in units {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| LintError(format!("read {}: {e}", path.display())))?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                crate_name: crate_name.clone(),
                label,
                text,
            });
        }
    }
    Ok(out)
}

/// Lints every library source file under the workspace root.
///
/// # Errors
///
/// Returns [`LintError`] on I/O failures (unreadable directories or
/// files), never on lint findings.
pub fn lint_workspace(root: &Path, opts: LintOptions) -> Result<LintReport, LintError> {
    let files = collect_workspace(root)?;
    Ok(lint_files(&files, opts))
}

/// The lines `--fix` may delete, keyed by repo-relative file label:
/// every unused-suppression finding the report carries, as 1-based
/// line numbers. Malformed allows (missing reason) are *not* included
/// — deleting those silently would hide a directive someone meant to
/// write; they need a human.
pub fn unused_allow_lines(report: &LintReport) -> BTreeMap<String, Vec<u32>> {
    let mut out: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for f in &report.findings {
        if f.rule == "lint" && f.suppressed.is_none() && f.message.contains("unused suppression") {
            out.entry(f.file.clone()).or_default().push(f.line);
        }
    }
    out
}

/// Deletes the unused `// mfpa-lint: allow(...)` comment on each listed
/// 1-based line of `src`. A standalone allow line disappears entirely;
/// a trailing allow is truncated off its code line. Only line comments
/// are touched — a block-comment allow is left for a human — and lines
/// without the marker pass through unchanged, so the transform is
/// idempotent: applying it to already-fixed text is the identity.
pub fn strip_unused_allow_lines(src: &str, lines: &[u32]) -> String {
    let doomed: BTreeSet<u32> = lines.iter().copied().collect();
    let mut out = String::with_capacity(src.len());
    for (ix, line) in src.split_inclusive('\n').enumerate() {
        let n = u32::try_from(ix + 1).unwrap_or(u32::MAX);
        if !doomed.contains(&n) {
            out.push_str(line);
            continue;
        }
        let Some(m) = line.find(rules::SUPPRESS_MARKER) else {
            out.push_str(line);
            continue;
        };
        let Some(slashes) = line[..m].rfind("//") else {
            out.push_str(line);
            continue;
        };
        if line[..m].rfind("/*").is_some_and(|open| open > slashes) {
            // The marker sits in a block comment: not the mechanical
            // case, leave it alone.
            out.push_str(line);
            continue;
        }
        let kept = line[..slashes].trim_end();
        if kept.is_empty() {
            continue; // standalone allow line: drop it outright
        }
        out.push_str(kept);
        if line.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| LintError(format!("read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError(format!("read {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_allow_covers_its_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // mfpa-lint: allow(d5, \"test invariant\")\n}\n";
        let findings = lint_source("core", "f.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].suppressed.as_deref(), Some("test invariant"));
    }

    #[test]
    fn standalone_allow_covers_next_line_and_stacks() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    // mfpa-lint: allow(d2, \"order normalized downstream\")\n    // mfpa-lint: allow(d5, \"checked above\")\n    m.values().map(|v| v.checked_add(1).unwrap()).collect()\n}\n";
        let findings = lint_source("core", "f.rs", src);
        assert!(
            findings.iter().all(|f| f.suppressed.is_some()),
            "{findings:?}"
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn one_allow_covers_exactly_one_finding_line() {
        // A same-line block-comment allow is standalone (no code before
        // it on its line); it must not also cover the next line.
        let src = "fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    /* mfpa-lint: allow(d5, \"first\") */ let a = x.unwrap();\n    let b = y.unwrap();\n    a + b\n}\n";
        let findings = lint_source("core", "f.rs", src);
        let suppressed: Vec<u32> = findings
            .iter()
            .filter(|f| f.suppressed.is_some())
            .map(|f| f.line)
            .collect();
        let open: Vec<u32> = findings
            .iter()
            .filter(|f| f.suppressed.is_none())
            .map(|f| f.line)
            .collect();
        assert_eq!(suppressed, vec![2], "{findings:?}");
        assert_eq!(open, vec![3], "{findings:?}");
    }

    #[test]
    fn stacked_same_rule_allows_distribute_by_line() {
        // Two stacked d5 allows above one finding line: the nearest is
        // consumed, the farther one is reported unused — not silently
        // masked.
        let src = "fn f(x: Option<u32>) -> u32 {\n    // mfpa-lint: allow(d5, \"outer\")\n    // mfpa-lint: allow(d5, \"inner\")\n    x.unwrap()\n}\n";
        let findings = lint_source("core", "f.rs", src);
        let d5: Vec<_> = findings.iter().filter(|f| f.rule == "d5").collect();
        assert_eq!(d5.len(), 1);
        assert_eq!(d5[0].suppressed.as_deref(), Some("inner"));
        let unused: Vec<_> = findings.iter().filter(|f| f.rule == "lint").collect();
        assert_eq!(unused.len(), 1, "{findings:?}");
        assert_eq!(unused[0].line, 2);
    }

    #[test]
    fn reasonless_allow_is_a_violation() {
        let src = "// mfpa-lint: allow(d5)\nfn f() {}\n";
        let findings = lint_source("core", "f.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lint");
        assert!(findings[0].message.contains("reason"), "{findings:?}");
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let src = "fn f() {} // mfpa-lint: allow(d5, \"nothing here\")\n";
        let findings = lint_source("core", "f.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lint");
        assert!(findings[0].message.contains("unused"), "{findings:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(lint_source("core", "f.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let findings = lint_source("core", "f.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "d5");
    }

    #[test]
    fn out_of_scope_crate_is_silent() {
        // bench may panic and take wall-clock time freely (as long as
        // nothing reachable from a deterministic root lives there).
        let src = "fn f(x: Option<u32>) -> u32 { let _t = Instant::now(); x.unwrap() }\n";
        assert!(lint_source("bench", "f.rs", src).is_empty());
    }

    #[test]
    fn reachable_panic_is_d8_with_chain() {
        let src = "
            pub struct MfpaConfig;
            impl MfpaConfig {
                pub fn prepare(&self) { step(); }
            }
            fn step(x: Option<u32>) -> u32 { x.unwrap() }
        ";
        let findings = lint_source("core", "crates/core/src/pipeline.rs", src);
        let d8: Vec<_> = findings.iter().filter(|f| f.rule == "d8").collect();
        assert_eq!(d8.len(), 1, "{findings:?}");
        assert_eq!(
            d8[0].chain,
            vec![
                "core::pipeline::MfpaConfig::prepare".to_owned(),
                "core::pipeline::step".to_owned(),
            ]
        );
        // The lexical d5 hit for the same token is superseded.
        assert!(findings.iter().all(|f| f.rule != "d5"), "{findings:?}");
    }

    #[test]
    fn unordered_iteration_reaching_a_root_is_d7() {
        let src = "
            pub fn score_fleet(m: &HashMap<String, f64>) -> Vec<f64> {
                collect_scores(m)
            }
            fn collect_scores(m: &HashMap<String, f64>) -> Vec<f64> {
                m.values().cloned().collect()
            }
            fn lookup_only(m: &HashMap<String, f64>) -> f64 {
                *m.get(\"a\").unwrap_or(&0.0)
            }
        ";
        let findings = lint_source("core", "crates/core/src/deploy.rs", src);
        let d7: Vec<_> = findings.iter().filter(|f| f.rule == "d7").collect();
        assert_eq!(d7.len(), 1, "{findings:?}");
        assert_eq!(d7[0].chain.len(), 2);
        assert!(d7[0].chain[0].ends_with("score_fleet"));
    }

    #[test]
    fn clock_escape_reaching_a_root_is_d9() {
        let src = "
            pub struct DriveMonitor;
            impl DriveMonitor {
                pub fn ingest(&mut self) -> u64 { seed() }
            }
            fn seed() -> u64 {
                let t = Instant::now();
                hash_of(t)
            }
        ";
        let findings = lint_source("telemetry", "crates/telemetry/src/drive.rs", src);
        let d9: Vec<_> = findings.iter().filter(|f| f.rule == "d9").collect();
        assert_eq!(d9.len(), 1, "{findings:?}");
        assert_eq!(d9[0].chain.len(), 2);
    }

    #[test]
    fn unreachable_facts_fall_back_to_crate_scoped_rules() {
        let src = "
            fn helper(m: &HashMap<String, f64>) -> Vec<f64> {
                m.values().cloned().collect()
            }
        ";
        let findings = lint_source("core", "crates/core/src/util.rs", src);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, vec!["d2"], "{findings:?}");
        // Same fact in a crate outside the d2 scope: silent.
        assert!(lint_source("lint", "crates/lint/src/util.rs", src)
            .iter()
            .all(|f| f.rule != "d2"));
    }

    #[test]
    fn index_checks_are_opt_in() {
        let src = "
            pub fn score_fleet(v: &[f64]) -> f64 { v[0] }
        ";
        let files = [SourceFile {
            crate_name: "core".into(),
            label: "crates/core/src/deploy.rs".into(),
            text: src.into(),
        }];
        let off = lint_files(&files, LintOptions::default());
        assert!(off.findings.is_empty(), "{:?}", off.findings);
        let on = lint_files(&files, LintOptions { index_checks: true });
        assert_eq!(on.findings.len(), 1, "{:?}", on.findings);
        assert_eq!(on.findings[0].rule, "d8");
    }

    #[test]
    fn workspace_root_is_found() {
        let here = std::env::current_dir().expect("cwd exists");
        let root = find_workspace_root(&here).expect("inside the workspace");
        assert!(root.join("crates").is_dir());
    }
}
