//! Interprocedural value-range abstract interpretation over the token
//! stream: the semantic layer behind the d13–d15 rules.
//!
//! The domain is a classic interval lattice over the integers
//! (`[lo, hi]` with saturating endpoint arithmetic), seeded from
//! literal constants, `let` definitions, declared parameter types and
//! range-loop binders, refined by branch guards (`<`/`<=`/`==`/`!=`/
//! `is_empty` conditions), widened at loop heads so every analysis
//! terminates, and propagated bottom-up across the workspace call
//! graph as per-function summaries `(declared param intervals →
//! return interval)` — calls the resolver could only cover with
//! fallback edges conservatively return ⊤.
//!
//! Three light companion domains cover what intervals cannot:
//!
//! * a **relational set** of `a ≥ b` facts from dominating guards, so
//!   `if v < prev { … prev - v … }` is proven safe even when both
//!   operands are ⊤;
//! * a **nonzero set** of guard-checked expressions, so
//!   `if total != 0.0 { part / total }` clears d14 for compound
//!   denominators that have no interval of their own;
//! * a **dimension tag** per identifier (from suffixes/prefixes such
//!   as `_ms`, `_days`, `_bytes`, `_gib`, `_ratio`, `wall_`, `n_`)
//!   feeding the d15 unit-mixing check.
//!
//! The three rules have deliberately opposite polarities, documented
//! in DESIGN.md §12: counter **subtraction** (d13) must be *proven
//! safe* (`rhs ≤ lhs`) because a wrapped cumulative counter is the
//! paper's dominant silent-corruption class; `+`/`*`/`<<` overflow
//! and `as` truncation are flagged only when the interval *proves*
//! the defect (every execution overflows), because possible-overflow
//! on full-range operands would flood every addition in the
//! workspace. Casts whose operand interval fits the target width
//! demote the lexical d6 name-heuristic to silence; unprovable casts
//! leave d6 in place as the fallback.
//!
//! Like every layer below it, this one is *total*: arbitrary token
//! soup produces an (empty) fact set, never a panic, enforced by the
//! fuzz drivers in `tests/tokenizer_props.rs` plus a per-function
//! fuel bound.

use crate::callgraph::{CallGraph, FileItems};
use crate::lexer::{Token, TokenKind};
use crate::parser::FnItem;
use crate::rules::is_counterish;
use crate::taint::Site;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Range;

/// Endpoint cap: interval arithmetic saturates here instead of
/// overflowing `i128`. Wide enough to hold any `u64` product.
const CAP: i128 = i128::MAX / 4;
const U64_MAX: i128 = u64::MAX as i128;

/// A closed integer interval `[lo, hi]`. The lattice top is
/// `[-CAP, CAP]`; there is no bottom — `meet` returns `None` when the
/// intersection is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

fn clamp(v: i128) -> i128 {
    v.clamp(-CAP, CAP)
}

impl Interval {
    /// The unknown-everything element.
    #[must_use]
    pub fn top() -> Interval {
        Interval { lo: -CAP, hi: CAP }
    }

    /// A singleton interval.
    #[must_use]
    pub fn exact(v: i128) -> Interval {
        let v = clamp(v);
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`, swapping the endpoints if they arrive reversed (the
    /// total-analysis promise: garbage in, *an* interval out).
    #[must_use]
    pub fn new(lo: i128, hi: i128) -> Interval {
        let (lo, hi) = (clamp(lo), clamp(hi));
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Whether this is the top element.
    #[must_use]
    pub fn is_top(&self) -> bool {
        self.lo <= -CAP && self.hi >= CAP
    }

    /// Least upper bound (union hull).
    #[must_use]
    pub fn join(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Greatest lower bound; `None` when the intervals are disjoint.
    #[must_use]
    pub fn meet(&self, o: &Interval) -> Option<Interval> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Classic widening: any bound that moved jumps straight to the
    /// cap, so a loop stabilizes after one widening step — the
    /// termination argument is one line long.
    #[must_use]
    pub fn widen(&self, newer: &Interval) -> Interval {
        Interval {
            lo: if newer.lo < self.lo { -CAP } else { self.lo },
            hi: if newer.hi > self.hi { CAP } else { self.hi },
        }
    }

    /// Whether `0` is a member.
    #[must_use]
    pub fn contains_zero(&self) -> bool {
        self.lo <= 0 && 0 <= self.hi
    }

    /// Interval addition (saturating at the caps).
    #[must_use]
    pub fn add(&self, o: &Interval) -> Interval {
        Interval::new(self.lo.saturating_add(o.lo), self.hi.saturating_add(o.hi))
    }

    /// Interval subtraction.
    #[must_use]
    pub fn sub(&self, o: &Interval) -> Interval {
        Interval::new(self.lo.saturating_sub(o.hi), self.hi.saturating_sub(o.lo))
    }

    /// Interval multiplication (endpoint products, saturating).
    #[must_use]
    pub fn mul(&self, o: &Interval) -> Interval {
        let ps = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        let lo = ps.iter().copied().min().unwrap_or(-CAP);
        let hi = ps.iter().copied().max().unwrap_or(CAP);
        Interval::new(lo, hi)
    }

    /// Interval negation.
    #[must_use]
    pub fn neg(&self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }

    /// Left shift by a bounded amount; ⊤ when the shift is unknown or
    /// enormous.
    #[must_use]
    pub fn shl(&self, o: &Interval) -> Interval {
        if o.lo < 0 || o.hi > 127 {
            return Interval::top();
        }
        let Ok(a) = u32::try_from(o.lo) else {
            return Interval::top();
        };
        let Ok(b) = u32::try_from(o.hi) else {
            return Interval::top();
        };
        let shifted = |v: i128, s: u32| v.checked_shl(s).map_or(CAP * v.signum(), clamp);
        let ps = [
            shifted(self.lo, a),
            shifted(self.lo, b),
            shifted(self.hi, a),
            shifted(self.hi, b),
        ];
        let lo = ps.iter().copied().min().unwrap_or(-CAP);
        let hi = ps.iter().copied().max().unwrap_or(CAP);
        Interval::new(lo, hi)
    }
}

impl fmt::Display for Interval {
    /// Renders `[lo, hi]`, with full power-of-two upper bounds written
    /// half-open (`[0, 2^64)`) the way the evidence reads best, and
    /// top as `⊤`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            return write!(f, "⊤");
        }
        let hi_next = self.hi.saturating_add(1);
        if self.hi >= (1 << 16) && hi_next.count_ones() == 1 {
            let k = hi_next.trailing_zeros();
            write!(f, "[{}, 2^{k})", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// The interval a declared integer type spans, when `name` is one.
#[must_use]
pub fn type_range(name: &str) -> Option<Interval> {
    let r = match name {
        "u8" => Interval::new(0, u8::MAX as i128),
        "u16" => Interval::new(0, u16::MAX as i128),
        "u32" => Interval::new(0, u32::MAX as i128),
        "u64" | "usize" | "u128" => Interval::new(0, U64_MAX),
        "i8" => Interval::new(i8::MIN as i128, i8::MAX as i128),
        "i16" => Interval::new(i16::MIN as i128, i16::MAX as i128),
        "i32" => Interval::new(i32::MIN as i128, i32::MAX as i128),
        "i64" | "isize" | "i128" => Interval::new(i64::MIN as i128, i64::MAX as i128),
        _ => return None,
    };
    Some(r)
}

/// Value-range facts for one function, parallel to the call-graph
/// node list. All containers are BTree-ordered so reports are
/// bit-identical at any `MFPA_THREADS`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnAbs {
    /// d13 sites: unproven counter subtraction, proven `+`/`*`/`<<`
    /// overflow, proven truncating cast.
    pub d13: Vec<Site>,
    /// d14 sites: `/` or `%` whose denominator interval includes 0
    /// with no dominating nonzero guard.
    pub d14: Vec<Site>,
    /// d15 sites: `+`/`-`/comparison across different inferred units.
    pub d15: Vec<Site>,
    /// Lines where every narrow cast is proven to fit its target
    /// width: the lexical d6 hit there is demoted to silence.
    pub cast_fit_lines: BTreeSet<u32>,
    /// Lines where a cast's operand interval is too wide to judge:
    /// d6 stays on as the name-heuristic fallback.
    pub cast_unknown_lines: BTreeSet<u32>,
    /// Lines where a cast is proven to truncate (a d13 site exists):
    /// the lexical d6 hit is superseded by the semantic finding.
    pub cast_risk_lines: BTreeSet<u32>,
    /// Summary: the return-value interval at declared param ranges.
    pub ret: Interval,
}

impl Default for Interval {
    fn default() -> Interval {
        Interval::top()
    }
}

/// Runs the abstract interpreter over every function in the
/// workspace: one quiet pass to seed the per-function summaries
/// (calls read ⊤), then a reporting pass that reads pass-one
/// summaries through the call graph. `files` must be the exact list
/// [`CallGraph::build`] consumed — node order is the shared index.
#[must_use]
pub fn analyze(files: &[FileItems], graph: &CallGraph) -> Vec<FnAbs> {
    // Node index -> (file, fn) in CallGraph::build order.
    let mut meta: Vec<(usize, usize)> = Vec::with_capacity(graph.nodes.len());
    for (fx, file) in files.iter().enumerate() {
        for ix in 0..file.parsed.functions.len() {
            meta.push((fx, ix));
        }
    }
    let n = graph.nodes.len().min(meta.len());
    let mut summaries: Vec<Interval> = vec![Interval::top(); n];
    let mut out: Vec<FnAbs> = vec![FnAbs::default(); n];
    for pass in 0..2 {
        let quiet = pass == 0;
        for node in 0..n {
            let (fx, ix) = meta[node];
            let Some(file) = files.get(fx) else { continue };
            let Some(f) = file.parsed.functions.get(ix) else {
                continue;
            };
            let call_rets = call_returns(graph, node, &summaries);
            let abs = interpret(&file.code, f, &call_rets, quiet);
            summaries[node] = abs.ret;
            if !quiet {
                out[node] = abs;
            }
        }
    }
    out
}

/// Joins the summaries of every resolved callee per call line;
/// fallback edges poison the line to ⊤ (the resolver could not pin
/// the callee down, so neither can we).
fn call_returns(graph: &CallGraph, node: usize, summaries: &[Interval]) -> BTreeMap<u32, Interval> {
    let mut rets: BTreeMap<u32, Interval> = BTreeMap::new();
    let Some(out) = graph.out_edges.get(node) else {
        return rets;
    };
    for &ex in out {
        let Some(e) = graph.edges.get(ex) else {
            continue;
        };
        let ret = if e.fallback {
            Interval::top()
        } else {
            summaries
                .get(e.callee)
                .copied()
                .unwrap_or_else(Interval::top)
        };
        rets.entry(e.line)
            .and_modify(|r| *r = r.join(&ret))
            .or_insert(ret);
    }
    rets
}

/// Interprets one function body. Public for the unit/property tests;
/// the lint pipeline goes through [`analyze`].
#[must_use]
pub fn interpret(
    code: &[Token],
    f: &FnItem,
    call_rets: &BTreeMap<u32, Interval>,
    quiet: bool,
) -> FnAbs {
    let mut itp = Interp {
        code,
        body: f.body.clone(),
        env: BTreeMap::new(),
        tys: BTreeMap::new(),
        rel_ge: BTreeSet::new(),
        nonzero: BTreeSet::new(),
        int_vars: BTreeSet::new(),
        call_rets,
        quiet_depth: usize::from(quiet),
        fuel: 200_000,
        ret: None,
        diverged: false,
        d13: BTreeSet::new(),
        d14: BTreeSet::new(),
        d15: BTreeSet::new(),
        out: FnAbs::default(),
    };
    itp.seed_params(&f.sig);
    let tail = itp.block(f.body.clone());
    let mut ret = match itp.ret {
        Some(r) => {
            if itp.diverged {
                r
            } else {
                r.join(&tail)
            }
        }
        None => tail,
    };
    if let Some(declared) = itp.return_type_range(&f.sig) {
        ret = ret.meet(&declared).unwrap_or(declared);
    }
    let mut out = itp.out;
    out.ret = ret;
    out.d13 = sites(itp.d13);
    out.d14 = sites(itp.d14);
    out.d15 = sites(itp.d15);
    out
}

fn sites(set: BTreeSet<(u32, String)>) -> Vec<Site> {
    set.into_iter()
        .map(|(line, what)| Site { line, what })
        .collect()
}

struct Interp<'a> {
    code: &'a [Token],
    body: Range<usize>,
    /// Variable (and dotted-path / `x.len`) intervals.
    env: BTreeMap<String, Interval>,
    /// Declared integer type range per variable, for width checks.
    tys: BTreeMap<String, Interval>,
    /// Guard-proven `a >= b` facts over simple operand texts.
    rel_ge: BTreeSet<(String, String)>,
    /// Guard-proven nonzero expression texts.
    nonzero: BTreeSet<String>,
    /// Variables bound to integer-derived values (lengths, counters,
    /// int-literal seeds) without a declared type annotation; the d14
    /// evidence gate treats them like declared-integer idents.
    int_vars: BTreeSet<String>,
    call_rets: &'a BTreeMap<u32, Interval>,
    /// Facts are recorded only at depth 0 (loop pre-passes and the
    /// summary pass analyze quietly).
    quiet_depth: usize,
    fuel: u32,
    ret: Option<Interval>,
    diverged: bool,
    d13: BTreeSet<(u32, String)>,
    d14: BTreeSet<(u32, String)>,
    d15: BTreeSet<(u32, String)>,
    out: FnAbs,
}

/// One branch's refinement snapshot, for save/restore around `if`.
#[derive(Clone)]
struct State {
    env: BTreeMap<String, Interval>,
    rel_ge: BTreeSet<(String, String)>,
    nonzero: BTreeSet<String>,
    int_vars: BTreeSet<String>,
}

impl<'a> Interp<'a> {
    fn ident(&self, i: usize) -> Option<&'a str> {
        match self.code.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.code.get(i).map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c)
    }

    fn line(&self, i: usize) -> u32 {
        self.code.get(i).map(|t| t.line).unwrap_or(0)
    }

    fn spend(&mut self) -> bool {
        if self.fuel == 0 {
            return false;
        }
        self.fuel -= 1;
        true
    }

    fn record_d13(&mut self, line: u32, what: String) {
        if self.quiet_depth == 0 {
            self.d13.insert((line, what));
        }
    }

    fn record_d14(&mut self, line: u32, what: String) {
        if self.quiet_depth == 0 {
            self.d14.insert((line, what));
        }
    }

    fn record_d15(&mut self, line: u32, what: String) {
        if self.quiet_depth == 0 {
            self.d15.insert((line, what));
        }
    }

    fn save(&self) -> State {
        State {
            env: self.env.clone(),
            rel_ge: self.rel_ge.clone(),
            nonzero: self.nonzero.clone(),
            int_vars: self.int_vars.clone(),
        }
    }

    fn restore(&mut self, s: State) {
        self.env = s.env;
        self.rel_ge = s.rel_ge;
        self.nonzero = s.nonzero;
        self.int_vars = s.int_vars;
    }

    /// Seeds the environment from the declared parameter types.
    fn seed_params(&mut self, sig: &Range<usize>) {
        let mut i = sig.start;
        while i < sig.end {
            if let Some(name) = self.ident(i) {
                if self.punct(i + 1, ':')
                    && !self.punct(i + 2, ':')
                    && !self.punct(i.wrapping_sub(1), ':')
                {
                    // `name: TY` — scan the type for an integer base,
                    // skipping reference/mut sigils.
                    let mut k = i + 2;
                    while k < sig.end
                        && (self.punct(k, '&')
                            || self.punct(k, '\'')
                            || self.ident(k) == Some("mut")
                            || matches!(
                                self.code.get(k).map(|t| &t.kind),
                                Some(TokenKind::Lifetime)
                            ))
                    {
                        k += 1;
                    }
                    if let Some(ty) = self.ident(k) {
                        if let Some(r) = type_range(ty) {
                            self.env.insert(name.to_owned(), r);
                            self.tys.insert(name.to_owned(), r);
                        }
                    }
                }
            }
            i += 1;
        }
    }

    /// The declared `-> TY` return range, when TY is a plain integer.
    fn return_type_range(&self, sig: &Range<usize>) -> Option<Interval> {
        let mut i = sig.start;
        while i + 2 < sig.end {
            if self.punct(i, '-') && self.punct(i + 1, '>') {
                return self.ident(i + 2).and_then(type_range);
            }
            i += 1;
        }
        None
    }

    /// Drops every derived fact that mentions `name` — called on any
    /// assignment, so stale guards never outlive their variables.
    fn clobber_facts(&mut self, name: &str) {
        self.rel_ge
            .retain(|(a, b)| !word_in(a, name) && !word_in(b, name));
        self.int_vars.remove(name);
        let stale: Vec<String> = self
            .nonzero
            .iter()
            .filter(|k| word_in(k, name))
            .cloned()
            .collect();
        for k in stale {
            self.nonzero.remove(&k);
        }
        let stale: Vec<String> = self
            .env
            .keys()
            .filter(|k| k.as_str() != name && word_in(k, name))
            .cloned()
            .collect();
        for k in stale {
            self.env.remove(&k);
        }
    }

    /// Index one past a balanced bracket group opening at `open`.
    fn skip_group(&self, open: usize, op: char, cl: char) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.body.end {
            if self.punct(i, op) {
                depth += 1;
            } else if self.punct(i, cl) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.body.end
    }

    /// End of the flat statement starting at `i`: the index of the
    /// depth-0 `;`, or of a depth-0 `{`/`}` boundary.
    fn stmt_end(&self, i: usize, limit: usize) -> usize {
        let mut depth = 0usize;
        let mut k = i;
        while k < limit {
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct(';')) if depth == 0 => return k,
                Some(TokenKind::Punct('{' | '}')) if depth == 0 => return k,
                _ => {}
            }
            k += 1;
        }
        limit
    }

    // ----- statement walking -------------------------------------

    /// Walks the statements of `r`, returning the interval of the
    /// trailing expression (the body's value position).
    fn block(&mut self, r: Range<usize>) -> Interval {
        let mut last = Interval::top();
        let mut i = r.start;
        while i < r.end {
            if !self.spend() {
                return Interval::top();
            }
            if self.punct(i, ';') || self.punct(i, '}') || self.punct(i, ',') {
                i += 1;
                continue;
            }
            if self.punct(i, '{') {
                let end = self.skip_group(i, '{', '}');
                last = self.block(i + 1..end.saturating_sub(1).max(i + 1));
                i = end;
                continue;
            }
            match self.ident(i) {
                Some("let") => {
                    i = self.handle_let(i, r.end);
                    last = Interval::top();
                }
                Some("if") => {
                    last = self.handle_if(&mut i, r.end);
                }
                Some("for") => {
                    i = self.handle_for(i, r.end);
                    last = Interval::top();
                }
                Some("while") | Some("loop") => {
                    i = self.handle_loop(i, r.end);
                    last = Interval::top();
                }
                Some("match") => {
                    i = self.handle_match(i, r.end);
                    last = Interval::top();
                }
                Some("return") => {
                    let end = self.stmt_end(i + 1, r.end);
                    let v = if end > i + 1 {
                        self.eval(i + 1..end)
                    } else {
                        Interval::top()
                    };
                    self.ret = Some(match self.ret {
                        Some(prev) => prev.join(&v),
                        None => v,
                    });
                    self.diverged = true;
                    i = end + 1;
                }
                Some("break") | Some("continue") => {
                    self.diverged = true;
                    i = self.stmt_end(i + 1, r.end) + 1;
                }
                _ => {
                    let end = self.stmt_end(i, r.end);
                    // A statement ending at `{` is a headed block we do
                    // not model (unsafe, labeled loops…): walk the
                    // block, clobbering nothing.
                    if self.punct(end, '{') && end > i && self.is_block_header(i, end) {
                        let close = self.skip_group(end, '{', '}');
                        let _ = self.eval(i..end);
                        last = self.block(end + 1..close.saturating_sub(1).max(end + 1));
                        i = close;
                        continue;
                    }
                    last = self.statement_expr(i..end);
                    i = end + 1;
                }
            }
        }
        last
    }

    /// Whether `start..end` looks like a block header rather than an
    /// expression followed by a struct literal (we only accept plain
    /// `unsafe` / label headers; everything else is evaluated flat).
    fn is_block_header(&self, start: usize, end: usize) -> bool {
        end == start + 1 && matches!(self.ident(start), Some("unsafe") | Some("else"))
    }

    /// One flat expression statement: assignment handling plus fact
    /// extraction.
    fn statement_expr(&mut self, r: Range<usize>) -> Interval {
        // Find a depth-0 assignment operator.
        let mut depth = 0usize;
        let mut k = r.start;
        while k < r.end {
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct('=')) if depth == 0 => {
                    let compound = k > r.start
                        && matches!(
                            self.code.get(k - 1).map(|t| &t.kind),
                            Some(TokenKind::Punct('+' | '-' | '*' | '/' | '%' | '<' | '>'))
                        )
                        && !self.punct(k - 1, '<') // `<=` is a comparison
                        && !self.punct(k - 1, '>');
                    let shift_compound = k > r.start + 1
                        && ((self.punct(k - 1, '<') && self.punct(k - 2, '<'))
                            || (self.punct(k - 1, '>') && self.punct(k - 2, '>')));
                    let plain = !compound
                        && !shift_compound
                        && !self.punct(k + 1, '=') // `==`
                        && !self.punct(k + 1, '>') // `=>`
                        && !self.punct(k.wrapping_sub(1), '=')
                        && !self.punct(k.wrapping_sub(1), '!')
                        && !self.punct(k.wrapping_sub(1), '<')
                        && !self.punct(k.wrapping_sub(1), '>');
                    if plain || compound || shift_compound {
                        let lhs_end = if shift_compound {
                            k - 2
                        } else if compound {
                            k - 1
                        } else {
                            k
                        };
                        return self.handle_assign(
                            r.start..lhs_end,
                            k,
                            k + 1..r.end,
                            compound.then(|| self.op_char(k - 1)).flatten(),
                            shift_compound,
                        );
                    }
                }
                _ => {}
            }
            k += 1;
        }
        self.eval(r)
    }

    fn op_char(&self, i: usize) -> Option<char> {
        match self.code.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn handle_assign(
        &mut self,
        lhs: Range<usize>,
        at: usize,
        rhs: Range<usize>,
        compound: Option<char>,
        shift: bool,
    ) -> Interval {
        let rv = self.eval(rhs.clone());
        let key = simple_key(self.code, &lhs);
        let line = self.line(at);
        let new = match (compound, &key) {
            (Some(op), Some(k)) => {
                let cur = self.env.get(k).copied().unwrap_or_else(Interval::top);
                match op {
                    '+' => {
                        self.check_units(&lhs, &rhs, "+", line);
                        cur.add(&rv)
                    }
                    '-' => {
                        self.check_units(&lhs, &rhs, "-", line);
                        self.check_sub(&lhs, &rhs, &cur, &rv, line);
                        cur.sub(&rv)
                    }
                    '*' => cur.mul(&rv),
                    '/' | '%' => {
                        self.check_div(&rhs, &rv, line);
                        Interval::top()
                    }
                    _ => Interval::top(),
                }
            }
            _ if shift => {
                if let Some(k) = &key {
                    let cur = self.env.get(k).copied().unwrap_or_else(Interval::top);
                    self.check_shift(k, &cur, &rv, line);
                }
                Interval::top()
            }
            _ => rv,
        };
        if let Some(k) = key {
            // Width check on compound growth into a declared narrow
            // type: only a *certain* overflow fires (DESIGN §12).
            if let Some(ty) = self.tys.get(&k).copied() {
                if new.lo > ty.hi {
                    self.record_d13(
                        line,
                        format!(
                            "`{k}` ∈ {new} no longer fits its declared range {ty} \
                             — every execution overflows"
                        ),
                    );
                }
            }
            let bound = match self.tys.get(&k) {
                Some(ty) => new.meet(ty).unwrap_or(*ty),
                None => new,
            };
            // Compound ops keep the variable's integer provenance
            // (`count += 1`); a plain re-bind takes the rhs's.
            let int_now = match compound {
                Some(_) => self.int_vars.contains(&k),
                None if !shift => self.int_evidence(&rhs, true),
                None => self.int_vars.contains(&k),
            };
            self.clobber_facts(&k);
            if int_now {
                self.int_vars.insert(k.clone());
            }
            self.env.insert(k, bound);
        }
        Interval::top()
    }

    fn handle_let(&mut self, i: usize, limit: usize) -> usize {
        let end = self.stmt_end(i + 1, limit);
        // Pattern side: up to the depth-0 `=`.
        let mut depth = 0usize;
        let mut eq = None;
        for k in i + 1..end {
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[' | '{' | '<')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}' | '>')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct('=')) if depth == 0 && !self.punct(k + 1, '=') => {
                    eq = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let Some(eq) = eq else {
            // `let x;` or a pattern we cannot see through.
            return end + 1;
        };
        // Simple binder: `let [mut] name [: TY] = …`.
        let mut p = i + 1;
        if self.ident(p) == Some("mut") {
            p += 1;
        }
        let name = self.ident(p).filter(|w| !crate::parser::is_keyword(w));
        let simple = name.is_some() && (p + 1 == eq || self.punct(p + 1, ':'));
        let ty = if simple && self.punct(p + 1, ':') {
            self.ident(p + 2).and_then(type_range)
        } else {
            None
        };
        let rhs = eq + 1..end;
        let v = match self.ident(eq + 1) {
            Some("if") => {
                let mut k = eq + 1;
                self.handle_if(&mut k, end)
            }
            Some("match") => {
                self.handle_match(eq + 1, end);
                Interval::top()
            }
            _ => self.eval(rhs.clone()),
        };
        match (simple, name) {
            (true, Some(name)) => {
                let name = name.to_owned();
                if let Some(ty) = ty {
                    if v.lo > ty.hi {
                        self.record_d13(
                            self.line(eq),
                            format!(
                                "`{name}` ∈ {v} does not fit its declared range {ty} \
                                 — every execution overflows"
                            ),
                        );
                    }
                    self.tys.insert(name.clone(), ty);
                }
                let bound = match ty {
                    Some(ty) => v.meet(&ty).unwrap_or(ty),
                    None => v,
                };
                self.clobber_facts(&name);
                if ty.is_none() && self.int_evidence(&rhs, true) {
                    self.int_vars.insert(name.clone());
                }
                self.env.insert(name, bound);
            }
            _ => {
                // Destructuring: conservatively clobber every bound
                // ident on the pattern side.
                for k in i + 1..eq {
                    if let Some(w) = self.ident(k) {
                        if !crate::parser::is_keyword(w) {
                            let w = w.to_owned();
                            self.clobber_facts(&w);
                            self.env.insert(w, Interval::top());
                        }
                    }
                }
            }
        }
        end + 1
    }

    /// `if` / `else if` / `else` chain starting at `*i` (the `if`
    /// ident). Advances `*i` past the chain; returns the joined value
    /// of the branch blocks (for `let x = if …` bindings).
    fn handle_if(&mut self, i: &mut usize, limit: usize) -> Interval {
        let if_at = *i;
        let mut cond_end = if_at + 1;
        let mut depth = 0usize;
        while cond_end < limit {
            match self.code.get(cond_end).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct('{')) if depth == 0 => break,
                _ => {}
            }
            cond_end += 1;
        }
        let cond = if_at + 1..cond_end;
        let is_if_let = self.ident(if_at + 1) == Some("let");
        if !is_if_let {
            let _ = self.eval(cond.clone());
        }
        let then_open = cond_end;
        let then_close = self.skip_group(then_open, '{', '}');
        let base = self.save();

        // Then branch under the positive refinement.
        let saved_div = self.diverged;
        self.diverged = false;
        if !is_if_let {
            self.refine(&cond, true);
        }
        let then_val = self.block(then_open + 1..then_close.saturating_sub(1).max(then_open + 1));
        let then_diverged = self.diverged;
        let then_state = self.save();
        self.restore(base.clone());
        self.diverged = false;

        // Else branch (if any) under the negative refinement.
        let mut else_state = None;
        let mut else_diverged = false;
        let mut else_val = None;
        let mut after = then_close;
        if self.ident(then_close) == Some("else") {
            if !is_if_let {
                self.refine(&cond, false);
            }
            if self.ident(then_close + 1) == Some("if") {
                let mut k = then_close + 1;
                else_val = Some(self.handle_if(&mut k, limit));
                after = k;
            } else {
                let open = then_close + 1;
                let close = self.skip_group(open, '{', '}');
                else_val = Some(self.block(open + 1..close.saturating_sub(1).max(open + 1)));
                after = close;
            }
            else_diverged = self.diverged;
            else_state = Some(self.save());
            self.restore(base.clone());
            self.diverged = false;
        }

        // Merge.
        match (else_state, then_diverged, else_diverged) {
            (None, true, _) => {
                // Guard-with-early-exit: the negation holds after.
                if !is_if_let {
                    self.refine(&cond, false);
                }
            }
            (None, false, _) => {
                self.merge_from(&then_state);
            }
            (Some(es), true, false) => self.restore(es),
            (Some(_), false, true) => self.restore(then_state),
            (Some(_), true, true) => {
                self.diverged = true;
            }
            (Some(es), false, false) => {
                self.restore(then_state);
                self.merge_from(&es);
            }
        }
        self.diverged = self.diverged || saved_div;
        *i = after;
        match else_val {
            Some(e) => then_val.join(&e),
            None => Interval::top(),
        }
    }

    /// Var-wise join of the current state with another branch's.
    fn merge_from(&mut self, other: &State) {
        let keys: BTreeSet<String> = self.env.keys().chain(other.env.keys()).cloned().collect();
        for k in keys {
            let a = self.env.get(&k).copied().unwrap_or_else(Interval::top);
            let b = other.env.get(&k).copied().unwrap_or_else(Interval::top);
            self.env.insert(k, a.join(&b));
        }
        self.rel_ge = self.rel_ge.intersection(&other.rel_ge).cloned().collect();
        self.nonzero = self.nonzero.intersection(&other.nonzero).cloned().collect();
        self.int_vars = self
            .int_vars
            .intersection(&other.int_vars)
            .cloned()
            .collect();
    }

    /// Applies a branch condition to the state. `positive` selects
    /// the then-side; the negative side applies negated conjuncts
    /// only when the logic stays sound (¬(A ∧ B) refines nothing;
    /// ¬(A ∨ B) refines both).
    fn refine(&mut self, cond: &Range<usize>, positive: bool) {
        let conjuncts = split_bool(self.code, cond, '&');
        let disjuncts = split_bool(self.code, cond, '|');
        if positive {
            if disjuncts.len() > 1 {
                return;
            }
            for c in conjuncts {
                self.refine_atom(&c, true);
            }
        } else if conjuncts.len() > 1 {
            // ¬(A ∧ B) tells us nothing per conjunct.
        } else if disjuncts.len() > 1 {
            for d in disjuncts {
                self.refine_atom(&d, false);
            }
        } else {
            self.refine_atom(cond, false);
        }
    }

    /// One comparison / `is_empty` atom, possibly under a leading `!`.
    fn refine_atom(&mut self, r: &Range<usize>, mut positive: bool) {
        let mut r = r.clone();
        while self.punct(r.start, '!') && !self.punct(r.start + 1, '=') {
            positive = !positive;
            r.start += 1;
        }
        // `x.is_empty()` refines the pseudo-var `x.len`.
        if let Some(base) = self.is_empty_base(&r) {
            let key = format!("{base}.len");
            let v = if positive {
                Interval::exact(0)
            } else {
                Interval::new(1, U64_MAX)
            };
            self.env.insert(key.clone(), v);
            if !positive {
                self.nonzero.insert(key);
            }
            return;
        }
        let Some((op, at)) = find_comparison(self.code, &r) else {
            return;
        };
        let lhs = r.start..at;
        let rhs = at + op.len()..r.end;
        let op_eff = if positive { op } else { negate(op) };
        self.apply_cmp(&lhs, op_eff, &rhs);
        // Mirror: `a < b` is `b > a`.
        self.apply_cmp(&rhs, mirror(op_eff), &lhs);
    }

    /// Applies `lhs OP rhs` to lhs's entry (interval meet + relation
    /// + nonzero bookkeeping).
    fn apply_cmp(&mut self, lhs: &Range<usize>, op: &str, rhs: &Range<usize>) {
        let rv = self.eval_quiet(rhs.clone());
        let key = simple_key(self.code, lhs);
        let ltext = norm_text(self.code, lhs);
        let rtext = norm_text(self.code, rhs);
        // Relational facts over simple operand texts.
        match op {
            ">" | ">=" | "==" => {
                self.rel_ge.insert((ltext.clone(), rtext.clone()));
            }
            _ => {}
        }
        // Nonzero facts over arbitrary expression texts.
        let rhs_is_zero = rv == Interval::exact(0) || is_zero_literal(self.code, rhs);
        match op {
            "!=" if rhs_is_zero => {
                self.nonzero.insert(ltext.clone());
            }
            ">" if rv.lo >= 0 => {
                self.nonzero.insert(ltext.clone());
            }
            ">=" if rv.lo >= 1 => {
                self.nonzero.insert(ltext.clone());
            }
            "<" if rv.hi <= 0 => {
                self.nonzero.insert(ltext.clone());
            }
            _ => {}
        }
        let Some(key) = key else { return };
        let cur = self.env.get(&key).copied().unwrap_or_else(Interval::top);
        let bound = match op {
            "<" => Interval::new(-CAP, rv.hi.saturating_sub(1)),
            "<=" => Interval::new(-CAP, rv.hi),
            ">" => Interval::new(rv.lo.saturating_add(1), CAP),
            ">=" => Interval::new(rv.lo, CAP),
            "==" => rv,
            "!=" => {
                // Only the endpoint cases shrink an interval.
                if rv == Interval::exact(cur.lo) {
                    Interval::new(cur.lo.saturating_add(1), cur.hi)
                } else if rv == Interval::exact(cur.hi) {
                    Interval::new(cur.lo, cur.hi.saturating_sub(1))
                } else {
                    cur
                }
            }
            _ => cur,
        };
        if let Some(m) = cur.meet(&bound) {
            self.env.insert(key, m);
        }
    }

    /// When `r` is `base.is_empty()`, the base text.
    fn is_empty_base(&self, r: &Range<usize>) -> Option<String> {
        let mut k = r.end;
        while k > r.start && self.punct(k - 1, ')') {
            k -= 1;
        }
        while k > r.start && self.punct(k - 1, '(') {
            k -= 1;
        }
        if k == r.start || self.ident(k - 1) != Some("is_empty") {
            return None;
        }
        if k < 2 || !self.punct(k - 2, '.') {
            return None;
        }
        Some(norm_text(self.code, &(r.start..k - 2)))
    }

    fn handle_for(&mut self, i: usize, limit: usize) -> usize {
        // `for PAT in EXPR { body }`
        let mut in_at = None;
        let mut k = i + 1;
        let mut depth = 0usize;
        while k < limit {
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct('{')) if depth == 0 => break,
                Some(TokenKind::Ident(w)) if w == "in" && depth == 0 => {
                    in_at = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(in_at) = in_at else {
            return self.skip_group(self.stmt_end(i, limit), '{', '}');
        };
        let mut open = in_at + 1;
        depth = 0;
        while open < limit {
            match self.code.get(open).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct('{')) if depth == 0 => break,
                _ => {}
            }
            open += 1;
        }
        let iter = in_at + 1..open;
        let binder = self
            .ident(i + 1)
            .filter(|w| !crate::parser::is_keyword(w) && in_at == i + 2)
            .map(str::to_owned);
        let binder_iv = self.range_binder_interval(&iter);
        let close = self.skip_group(open, '{', '}');
        let body = open + 1..close.saturating_sub(1).max(open + 1);
        self.run_loop_body(body, binder.as_deref(), binder_iv);
        close
    }

    /// The binder interval of a `a..b` / `a..=b` iterator, else ⊤.
    fn range_binder_interval(&mut self, iter: &Range<usize>) -> Interval {
        let mut depth = 0usize;
        for k in iter.start..iter.end {
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct('.'))
                    if depth == 0
                        && self.punct(k + 1, '.')
                        && !self.punct(k.wrapping_sub(1), '.') =>
                {
                    let inclusive = self.punct(k + 2, '=');
                    let lo = self.eval_quiet(iter.start..k);
                    let hi_start = if inclusive { k + 3 } else { k + 2 };
                    let hi = self.eval_quiet(hi_start..iter.end);
                    let hi_end = if inclusive {
                        hi.hi
                    } else {
                        hi.hi.saturating_sub(1)
                    };
                    return Interval::new(lo.lo, hi_end.max(lo.lo));
                }
                _ => {}
            }
        }
        let _ = self.eval(iter.clone());
        Interval::top()
    }

    /// `while`/`loop` starting at `i`.
    fn handle_loop(&mut self, i: usize, limit: usize) -> usize {
        let is_while = self.ident(i) == Some("while");
        let mut open = i + 1;
        let mut depth = 0usize;
        while open < limit {
            match self.code.get(open).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct('{')) if depth == 0 => break,
                _ => {}
            }
            open += 1;
        }
        let cond = i + 1..open;
        if is_while && self.ident(i + 1) != Some("let") {
            let _ = self.eval(cond.clone());
        }
        let close = self.skip_group(open, '{', '}');
        let body = open + 1..close.saturating_sub(1).max(open + 1);
        self.run_loop_body(body, None, Interval::top());
        if is_while && self.ident(i + 1) != Some("let") {
            // After a `while c {}` that exits normally, ¬c holds.
            self.refine(&cond, false);
        }
        close
    }

    /// The widening protocol: one quiet pass to find the mutated
    /// variables, widen those, then one reporting pass over the
    /// stabilized environment. Terminates because `widen` jumps any
    /// moved bound straight to the cap.
    fn run_loop_body(&mut self, body: Range<usize>, binder: Option<&str>, binder_iv: Interval) {
        let pre = self.save();
        if let Some(b) = binder {
            self.env.insert(b.to_owned(), binder_iv);
        }
        let seeded = self.save();
        self.quiet_depth += 1;
        let saved_div = self.diverged;
        let _ = self.block(body.clone());
        self.quiet_depth -= 1;
        // Widen every variable the body moved; drop derived facts on
        // them (the guard that proved them may be loop-varying).
        let mut widened = seeded.env.clone();
        for (k, after) in &self.env {
            let before = seeded.env.get(k).copied().unwrap_or_else(Interval::top);
            if *after != before {
                widened.insert(k.clone(), before.widen(after));
            }
        }
        self.restore(pre);
        for (k, v) in &widened {
            let before = seeded.env.get(k).copied().unwrap_or_else(Interval::top);
            if *v != before {
                let k = k.clone();
                self.clobber_facts(&k);
                self.env.insert(k, *v);
            } else if !self.env.contains_key(k) {
                self.env.insert(k.clone(), *v);
            }
        }
        if let Some(b) = binder {
            self.env.insert(b.to_owned(), binder_iv);
        }
        let _ = self.block(body);
        self.diverged = saved_div;
        // The binder goes out of scope; its last interval is harmless.
    }

    /// `match` starting at `i`: arms are walked for facts with the
    /// current environment; every variable assigned anywhere inside is
    /// clobbered afterwards (arms are not modeled individually).
    fn handle_match(&mut self, i: usize, limit: usize) -> usize {
        let mut open = i + 1;
        let mut depth = 0usize;
        while open < limit {
            match self.code.get(open).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct('{')) if depth == 0 => break,
                _ => {}
            }
            open += 1;
        }
        let _ = self.eval(i + 1..open);
        let close = self.skip_group(open, '{', '}');
        let body = open + 1..close.saturating_sub(1).max(open + 1);
        let pre = self.save();
        let saved_div = self.diverged;
        let _ = self.block(body.clone());
        self.restore(pre);
        self.diverged = saved_div;
        // Clobber assigned variables.
        let mut k = body.start;
        while k < body.end {
            if self.punct(k, '=')
                && !self.punct(k + 1, '=')
                && !self.punct(k + 1, '>')
                && !self.punct(k.wrapping_sub(1), '=')
                && !self.punct(k.wrapping_sub(1), '!')
                && !self.punct(k.wrapping_sub(1), '<')
                && !self.punct(k.wrapping_sub(1), '>')
            {
                let mut b = k;
                if matches!(
                    self.code.get(k.wrapping_sub(1)).map(|t| &t.kind),
                    Some(TokenKind::Punct('+' | '-' | '*' | '/' | '%'))
                ) {
                    b = k - 1;
                }
                // Walk back over a dotted chain to its head ident.
                let mut h = b;
                while h > body.start && (self.ident(h - 1).is_some() || self.punct(h - 1, '.')) {
                    h -= 1;
                }
                if let Some(w) = self.ident(h) {
                    if !crate::parser::is_keyword(w) {
                        let key = norm_text(self.code, &(h..b));
                        let w = w.to_owned();
                        self.clobber_facts(&w);
                        self.env.insert(key, Interval::top());
                        self.env.insert(w, Interval::top());
                    }
                }
            }
            k += 1;
        }
        close
    }

    // ----- expression evaluation ---------------------------------

    fn eval_quiet(&mut self, r: Range<usize>) -> Interval {
        self.quiet_depth += 1;
        let v = self.eval(r);
        self.quiet_depth -= 1;
        v
    }

    /// Evaluates an expression range to an interval, recording d13/
    /// d14/d15 facts at the operators it passes. Total and fuelled.
    fn eval(&mut self, mut r: Range<usize>) -> Interval {
        if !self.spend() {
            return Interval::top();
        }
        // Trim stray terminators and full paren wrapping.
        while r.end > r.start && self.punct(r.end - 1, ';') {
            r.end -= 1;
        }
        while r.end > r.start
            && self.punct(r.start, '(')
            && self.skip_group(r.start, '(', ')') == r.end
        {
            r.start += 1;
            r.end -= 1;
        }
        if r.is_empty() {
            return Interval::top();
        }
        // Leading unary operators.
        if self.punct(r.start, '-') && r.len() > 1 {
            return self.eval(r.start + 1..r.end).neg();
        }
        if (self.punct(r.start, '!') && !self.punct(r.start + 1, '='))
            || self.punct(r.start, '*')
            || self.punct(r.start, '&')
        {
            return self.eval(r.start + 1..r.end);
        }
        if let Some(v) = self.split_binary(&r) {
            return v;
        }
        self.eval_atom(&r)
    }

    /// Finds the lowest-precedence depth-0 binary operator (rightmost
    /// occurrence, matching left associativity) and recurses.
    fn split_binary(&mut self, r: &Range<usize>) -> Option<Interval> {
        // Lowest precedence first: bool ops, comparisons, ranges,
        // shifts, + -, * / %, `as`.
        if let Some(at) = self.find_bool_op(r) {
            let _ = self.eval(r.start..at.0);
            let _ = self.eval(at.1..r.end);
            return Some(Interval::top());
        }
        if let Some((op, at)) = find_comparison(self.code, r) {
            let lhs = r.start..at;
            let rhs = at + op.len()..r.end;
            let line = self.line(at);
            self.check_units(&lhs, &rhs, op, line);
            let _ = self.eval(lhs);
            let _ = self.eval(rhs);
            return Some(Interval::new(0, 1));
        }
        if let Some(k) = self.find_depth0(r, |s, k| {
            s.punct(k, '.') && s.punct(k + 1, '.') && !s.punct(k.wrapping_sub(1), '.')
        }) {
            let _ = self.eval(r.start..k);
            let skip = if self.punct(k + 2, '=') { 3 } else { 2 };
            let _ = self.eval(k + skip..r.end);
            return Some(Interval::top());
        }
        if let Some(k) = self.find_shift(r) {
            let lv = self.eval(r.start..k);
            let rv = self.eval(k + 2..r.end);
            let line = self.line(k);
            if self.punct(k, '<') {
                if let Some(key) = simple_key(self.code, &(r.start..k)) {
                    self.check_shift(&key, &lv, &rv, line);
                }
                return Some(lv.shl(&rv));
            }
            return Some(Interval::top());
        }
        if let Some(k) = self.find_addsub(r) {
            let lhs = r.start..k;
            let rhs = k + 1..r.end;
            let line = self.line(k);
            let lv = self.eval(lhs.clone());
            let rv = self.eval(rhs.clone());
            self.check_units(&lhs, &rhs, if self.punct(k, '+') { "+" } else { "-" }, line);
            if self.punct(k, '-') {
                self.check_sub(&lhs, &rhs, &lv, &rv, line);
                return Some(lv.sub(&rv));
            }
            return Some(lv.add(&rv));
        }
        if let Some(k) = self.find_muldiv(r) {
            let lhs = r.start..k;
            let rhs = k + 1..r.end;
            let line = self.line(k);
            let lv = self.eval(lhs);
            let rv = self.eval(rhs.clone());
            if self.punct(k, '*') {
                return Some(lv.mul(&rv));
            }
            self.check_div(&rhs, &rv, line);
            if self.punct(k, '/') {
                return Some(div_interval(&lv, &rv));
            }
            return Some(rem_interval(&lv, &rv));
        }
        if let Some(k) = self.find_depth0(r, |s, k| s.ident(k) == Some("as")) {
            let lv = self.eval(r.start..k);
            let ty = self.ident(k + 1).unwrap_or("");
            return Some(self.check_cast(&(r.start..k), &lv, ty, self.line(k)));
        }
        None
    }

    /// Rightmost depth-0 position matching `pred`, scanning right to
    /// left with bracket tracking.
    fn find_depth0(&self, r: &Range<usize>, pred: impl Fn(&Self, usize) -> bool) -> Option<usize> {
        let mut depth = 0usize;
        let mut k = r.end;
        while k > r.start {
            k -= 1;
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Punct(')' | ']' | '}')) => depth += 1,
                Some(TokenKind::Punct('(' | '[' | '{')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct('|')) if depth == 0 => return None, // closure: bail
                _ if depth == 0 && pred(self, k) => return Some(k),
                _ => {}
            }
        }
        None
    }

    /// Depth-0 `&&` / `||` / single `&`-as-and: bool context. Returns
    /// (lhs_end, rhs_start).
    fn find_bool_op(&self, r: &Range<usize>) -> Option<(usize, usize)> {
        let k = self.find_depth0_raw(r, |s, k| {
            (s.punct(k, '&') && s.punct(k + 1, '&')) || (s.punct(k, '|') && s.punct(k + 1, '|'))
        })?;
        Some((k, k + 2))
    }

    /// Like `find_depth0` but without the closure bail (used to find
    /// the bool ops themselves).
    fn find_depth0_raw(
        &self,
        r: &Range<usize>,
        pred: impl Fn(&Self, usize) -> bool,
    ) -> Option<usize> {
        let mut depth = 0usize;
        let mut k = r.end;
        while k > r.start {
            k -= 1;
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Punct(')' | ']' | '}')) => depth += 1,
                Some(TokenKind::Punct('(' | '[' | '{')) => depth = depth.saturating_sub(1),
                _ if depth == 0 && pred(self, k) => return Some(k),
                _ => {}
            }
        }
        None
    }

    fn find_shift(&self, r: &Range<usize>) -> Option<usize> {
        self.find_depth0(r, |s, k| {
            ((s.punct(k, '<') && s.punct(k + 1, '<')) || (s.punct(k, '>') && s.punct(k + 1, '>')))
                && k > r.start
                && s.is_value_end(k - 1)
                && !s.punct(k.wrapping_sub(1), ':')
        })
    }

    fn find_addsub(&self, r: &Range<usize>) -> Option<usize> {
        self.find_depth0(r, |s, k| {
            (s.punct(k, '+') || s.punct(k, '-'))
                && k > r.start
                && s.is_value_end(k - 1)
                && !s.punct(k + 1, '=')      // compound handled upstream
                && !s.punct(k + 1, '>') // `->`
        })
    }

    fn find_muldiv(&self, r: &Range<usize>) -> Option<usize> {
        self.find_depth0(r, |s, k| {
            (s.punct(k, '*') || s.punct(k, '/') || s.punct(k, '%'))
                && k > r.start
                && s.is_value_end(k - 1)
                && !s.punct(k + 1, '=')
        })
    }

    /// Whether token `i` can end a value (making a following `-`/`*`
    /// binary rather than unary).
    fn is_value_end(&self, i: usize) -> bool {
        match self.code.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(w)) => {
                !crate::parser::is_keyword(w) || w == "self" || w == "true" || w == "false"
            }
            Some(TokenKind::Number(_)) | Some(TokenKind::Literal) => true,
            Some(TokenKind::Punct(')' | ']')) => true,
            _ => false,
        }
    }

    /// Atoms: literals, idents, dotted chains, calls, indexing,
    /// `TY::MAX`, method intrinsics.
    fn eval_atom(&mut self, r: &Range<usize>) -> Interval {
        if r.len() == 1 {
            return match self.code.get(r.start).map(|t| &t.kind) {
                Some(TokenKind::Number(text)) => parse_number(text),
                Some(TokenKind::Ident(w)) if w == "true" || w == "false" => Interval::new(0, 1),
                Some(TokenKind::Ident(w)) => self
                    .env
                    .get(w.as_str())
                    .copied()
                    .unwrap_or_else(Interval::top),
                _ => Interval::top(),
            };
        }
        // `TY::MAX` / `TY::MIN`.
        if r.len() == 4 && self.punct(r.start + 1, ':') && self.punct(r.start + 2, ':') {
            if let (Some(ty), Some(which)) = (self.ident(r.start), self.ident(r.start + 3)) {
                if let Some(range) = type_range(ty) {
                    match which {
                        "MAX" => return Interval::exact(range.hi),
                        "MIN" => return Interval::exact(range.lo),
                        _ => {}
                    }
                }
            }
        }
        // Trailing `?` / `.await`-ish postfix: peel and retry.
        if self.punct(r.end - 1, '?') {
            return self.eval(r.start..r.end - 1);
        }
        // Trailing call/index group?
        if self.punct(r.end - 1, ')') || self.punct(r.end - 1, ']') {
            let (op, cl) = if self.punct(r.end - 1, ')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            // Find the matching opener.
            let mut depth = 0usize;
            let mut open = r.end;
            while open > r.start {
                open -= 1;
                if self.punct(open, cl) {
                    depth += 1;
                } else if self.punct(open, op) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            if open <= r.start {
                return Interval::top();
            }
            // Evaluate each depth-0 comma-separated argument.
            let args = self.eval_args(open + 1..r.end - 1);
            if cl == ']' {
                let _ = self.eval(r.start..open);
                return Interval::top();
            }
            // Method call: `recv.name(args)`.
            if let Some(name) = self.ident(open - 1) {
                if open >= 2 && self.punct(open - 2, '.') {
                    let recv = r.start..open - 2;
                    return self.eval_method(&recv, name, &args, r);
                }
                // Free/path call: `name(args)` or `a::b::name(args)`.
                return self.eval_call(name, &(r.start..open - 1), &args, self.line(open - 1));
            }
            return Interval::top();
        }
        // Dotted field chain (no trailing call): env lookup by text.
        let text = norm_text(self.code, r);
        self.env.get(&text).copied().unwrap_or_else(Interval::top)
    }

    fn eval_args(&mut self, r: Range<usize>) -> Vec<Interval> {
        let mut out = Vec::new();
        let mut depth = 0usize;
        let mut start = r.start;
        let mut k = r.start;
        while k < r.end {
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => depth = depth.saturating_sub(1),
                Some(TokenKind::Punct(',')) if depth == 0 => {
                    if k > start {
                        out.push(self.eval(start..k));
                    }
                    start = k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        if start < r.end {
            out.push(self.eval(start..r.end));
        }
        out
    }

    /// Known interval-preserving methods; everything else is ⊤ (with
    /// args already evaluated for facts).
    fn eval_method(
        &mut self,
        recv: &Range<usize>,
        name: &str,
        args: &[Interval],
        _whole: &Range<usize>,
    ) -> Interval {
        let rv = self.eval(recv.clone());
        let arg = args.first().copied().unwrap_or_else(Interval::top);
        match name {
            "len" if args.is_empty() => {
                let key = format!("{}.len", norm_text(self.code, recv));
                self.env
                    .get(&key)
                    .copied()
                    .unwrap_or_else(|| Interval::new(0, U64_MAX))
            }
            "min" => Interval::new(rv.lo.min(arg.lo), rv.hi.min(arg.hi)),
            "max" => Interval::new(rv.lo.max(arg.lo), rv.hi.max(arg.hi)),
            "clamp" => {
                let hi = args.get(1).copied().unwrap_or_else(Interval::top);
                Interval::new(arg.lo, hi.hi)
            }
            "abs" => Interval::new(0, rv.hi.abs().max(rv.lo.abs())),
            "saturating_sub" if rv.lo >= 0 => Interval::new(
                (rv.lo.saturating_sub(arg.hi)).max(0),
                (rv.hi.saturating_sub(arg.lo)).max(0),
            ),
            "unwrap_or" | "unwrap_or_default" => Interval::top(),
            _ => Interval::top(),
        }
    }

    /// Free/path call: summaries via the call graph by line, plus the
    /// `From`-style identity conversions.
    fn eval_call(
        &mut self,
        name: &str,
        path: &Range<usize>,
        args: &[Interval],
        line: u32,
    ) -> Interval {
        if (name == "from" || name == "try_from") && args.len() == 1 {
            // `u64::from(x)` etc: the value passes through; meet with
            // the target type when the path names one.
            if path.len() >= 3 {
                if let Some(ty) = self.ident(path.start).and_then(type_range) {
                    return args[0].meet(&ty).unwrap_or(ty);
                }
            }
            return args[0];
        }
        let ret = self
            .call_rets
            .get(&line)
            .copied()
            .unwrap_or_else(Interval::top);
        ret
    }

    // ----- the three checks --------------------------------------

    /// d13: `a - b` on counter-typed operands must prove `b ≤ a`.
    fn check_sub(
        &mut self,
        lhs: &Range<usize>,
        rhs: &Range<usize>,
        lv: &Interval,
        rv: &Interval,
        line: u32,
    ) {
        if self.quiet_depth > 0 {
            return;
        }
        // Signed or float arithmetic may legitimately go negative.
        if lv.lo < 0 {
            return;
        }
        if self.has_float_tokens(lhs) || self.has_float_tokens(rhs) {
            return;
        }
        if !self.span_counterish(lhs) && !self.span_counterish(rhs) {
            return;
        }
        // Proofs: interval, identity, or a dominating relational guard.
        if rv.hi <= lv.lo {
            return;
        }
        let lt = norm_text(self.code, lhs);
        let rt = norm_text(self.code, rhs);
        if lt == rt || self.rel_ge.contains(&(lt.clone(), rt.clone())) {
            return;
        }
        self.record_d13(
            line,
            format!(
                "counter subtraction `{} - {}`: rhs ∈ {rv} not proven ≤ lhs (lhs ∈ {lv}); \
                 guard the order, or use saturating_sub/checked_sub",
                clip(&lt),
                clip(&rt)
            ),
        );
    }

    /// d13 shifts: flag only a *proven* out-of-width shift amount.
    fn check_shift(&mut self, key: &str, lv: &Interval, rv: &Interval, line: u32) {
        if self.quiet_depth > 0 {
            return;
        }
        let width = self
            .tys
            .get(key)
            .map(|t| if t.hi > u32::MAX as i128 { 64 } else { 32 })
            .unwrap_or(64);
        if rv.lo >= width {
            self.record_d13(
                line,
                format!(
                    "shift of `{}` by ∈ {rv}: every execution shifts past the {width}-bit \
                     width (lhs ∈ {lv})",
                    clip(key)
                ),
            );
        }
    }

    /// d13 casts: judged semantically, with the verdict lines driving
    /// the d6 demotion in `assemble_file`.
    fn check_cast(
        &mut self,
        operand: &Range<usize>,
        lv: &Interval,
        ty: &str,
        line: u32,
    ) -> Interval {
        let Some(tr) = type_range(ty) else {
            // `as f64` and friends: value-preserving for our purposes.
            return *lv;
        };
        if self.quiet_depth == 0 {
            if lv.lo >= tr.lo && lv.hi <= tr.hi {
                self.out.cast_fit_lines.insert(line);
            } else if lv.lo > tr.hi || lv.hi < tr.lo {
                self.out.cast_risk_lines.insert(line);
                self.record_d13(
                    line,
                    format!(
                        "`{} as {ty}` truncates: value ∈ {lv} lies outside {ty}'s \
                         range {tr} in every execution",
                        clip(&norm_text(self.code, operand)),
                    ),
                );
            } else {
                self.out.cast_unknown_lines.insert(line);
            }
        }
        lv.meet(&tr).unwrap_or(tr)
    }

    /// d14: the denominator interval must exclude zero, or a
    /// dominating guard must have proven the expression nonzero.
    ///
    /// Scope (DESIGN §12): integer-derived denominators only — counts,
    /// lengths, counters, and their `as f64` views. Pure float
    /// expressions (`1.0 + e^x`, EMA states, learned weights) are out:
    /// interval arithmetic over transcendental float math proves
    /// nothing, and flagging every float division would bury the real
    /// divide-by-count hazards the rule exists for.
    fn check_div(&mut self, den: &Range<usize>, dv: &Interval, line: u32) {
        if self.quiet_depth > 0 {
            return;
        }
        if !dv.contains_zero() {
            return;
        }
        if !self.div_int_evidence(den) {
            return;
        }
        // A guard-proven expression clears the check.
        let dt = norm_text(self.code, den);
        if self.nonzero.contains(&dt) {
            return;
        }
        self.record_d14(
            line,
            format!(
                "denominator `{}` ∈ {dv} may be zero; dominate it with a nonzero \
                 guard (`== 0` early-return, `> 0`, `!= 0`) or `.max(1)`",
                clip(&dt)
            ),
        );
    }

    /// d15: `+`/`-`/comparison across two *different* inferred units.
    fn check_units(&mut self, lhs: &Range<usize>, rhs: &Range<usize>, op: &str, line: u32) {
        if self.quiet_depth > 0 {
            return;
        }
        let (Some(ld), Some(rd)) = (self.span_dimension(lhs), self.span_dimension(rhs)) else {
            return;
        };
        if ld == rd {
            return;
        }
        self.record_d15(
            line,
            format!(
                "unit mismatch: `{}` carries {ld} but `{}` carries {rd} across `{op}`; \
                 route one side through a named conversion helper",
                clip(&norm_text(self.code, lhs)),
                clip(&norm_text(self.code, rhs)),
            ),
        );
    }

    /// The dimension an operand carries: the first dimensioned
    /// identifier in its span, unless a conversion-helper call
    /// (`to_*` / `from_*` / `*_to_*` / `as_*`) launders it.
    fn span_dimension(&self, r: &Range<usize>) -> Option<&'static str> {
        let mut dim = None;
        for k in r.clone() {
            if let Some(w) = self.ident(k) {
                if self.punct(k + 1, '(') && is_conversion_name(w) {
                    return None;
                }
                if dim.is_none() {
                    dim = dimension_of(w);
                }
            }
        }
        dim
    }

    fn span_counterish(&self, r: &Range<usize>) -> bool {
        r.clone().any(|k| self.ident(k).is_some_and(is_counterish))
    }

    /// Whether a denominator span is integer-derived: it mentions a
    /// declared-integer variable, an int-derived `let` binding, or a
    /// `.len()` call — and carries no float literal or float-typed
    /// ident (an `as f64`/`as f32` *view* of an integer is fine; the
    /// cast target ident after `as` is not float evidence).
    fn div_int_evidence(&self, r: &Range<usize>) -> bool {
        self.int_evidence(r, false)
    }

    /// The shared scanner. `literals_count` is true when classifying a
    /// `let` rhs (so `let mut count = 0;` marks `count` int-derived)
    /// and false for denominators, where a bare literal divisor is
    /// either non-zero (clean) or a compile error.
    fn int_evidence(&self, r: &Range<usize>, literals_count: bool) -> bool {
        let mut evidence = false;
        for k in r.clone() {
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Number(text)) => {
                    if crate::dataflow::is_float_number(text) {
                        return false;
                    }
                    if literals_count {
                        evidence = true;
                    }
                }
                Some(TokenKind::Ident(s))
                    if (s == "f64" || s == "f32")
                        && self.ident(k.wrapping_sub(1)) != Some("as") =>
                {
                    return false;
                }
                Some(TokenKind::Ident(s))
                    if self.tys.contains_key(s.as_str())
                        || self.int_vars.contains(s.as_str())
                        || (s == "len" && self.punct(k + 1, '(')) =>
                {
                    evidence = true;
                }
                _ => {}
            }
        }
        evidence
    }

    fn has_float_tokens(&self, r: &Range<usize>) -> bool {
        for k in r.clone() {
            match self.code.get(k).map(|t| &t.kind) {
                Some(TokenKind::Number(text)) if crate::dataflow::is_float_number(text) => {
                    return true
                }
                Some(TokenKind::Ident(s)) if s == "f64" || s == "f32" => return true,
                _ => {}
            }
        }
        false
    }
}

/// Splits a boolean condition at depth-0 doubled `c` puncts (`&&` or
/// `||`); returns the single whole range when none exist.
fn split_bool(code: &[Token], r: &Range<usize>, c: char) -> Vec<Range<usize>> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = r.start;
    let mut k = r.start;
    let at = |k: usize, ch: char| matches!(code.get(k).map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == ch);
    while k < r.end {
        match code.get(k).map(|t| &t.kind) {
            Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
            Some(TokenKind::Punct(')' | ']' | '}')) => depth = depth.saturating_sub(1),
            _ if depth == 0 && at(k, c) && at(k + 1, c) => {
                parts.push(start..k);
                start = k + 2;
                k += 1;
            }
            _ => {}
        }
        k += 1;
    }
    parts.push(start..r.end);
    parts
}

/// Finds the depth-0 comparison operator in `r`: returns the operator
/// text and its token index. `<`/`>` are accepted only between value
/// tokens (turbofish and generics sit next to `:` or idents that are
/// type-ish — the value-end test filters most of them).
fn find_comparison<'a>(code: &[Token], r: &Range<usize>) -> Option<(&'a str, usize)> {
    let punct = |k: usize, c: char| matches!(code.get(k).map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c);
    let value_end = |k: usize| match code.get(k).map(|t| &t.kind) {
        Some(TokenKind::Ident(w)) => !crate::parser::is_keyword(w) || w == "self",
        Some(TokenKind::Number(_)) | Some(TokenKind::Literal) => true,
        Some(TokenKind::Punct(')' | ']')) => true,
        _ => false,
    };
    let mut depth = 0usize;
    let mut k = r.start;
    while k < r.end {
        match code.get(k).map(|t| &t.kind) {
            Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
            Some(TokenKind::Punct(')' | ']' | '}')) => depth = depth.saturating_sub(1),
            Some(TokenKind::Punct(c)) if depth == 0 => match c {
                '=' if punct(k + 1, '=') => return Some(("==", k)),
                '!' if punct(k + 1, '=') => return Some(("!=", k)),
                '<' | '>'
                    if k > r.start
                        && value_end(k - 1)
                        && !punct(k.wrapping_sub(1), ':')
                        && !punct(k + 1, *c) // shift
                        && !(*c == '>' && punct(k.wrapping_sub(1), '-')) =>
                {
                    if punct(k + 1, '=') {
                        return Some((if *c == '<' { "<=" } else { ">=" }, k));
                    }
                    return Some((if *c == '<' { "<" } else { ">" }, k));
                }
                _ => {}
            },
            _ => {}
        }
        k += 1;
    }
    None
}

fn negate(op: &str) -> &'static str {
    match op {
        "<" => ">=",
        "<=" => ">",
        ">" => "<=",
        ">=" => "<",
        "==" => "!=",
        _ => "==",
    }
}

fn mirror(op: &str) -> &'static str {
    match op {
        "<" => ">",
        "<=" => ">=",
        ">" => "<",
        ">=" => "<=",
        "==" => "==",
        _ => "!=",
    }
}

/// When `r` is a simple environment key — a bare identifier or a
/// dotted ident chain — its normalized text.
fn simple_key(code: &[Token], r: &Range<usize>) -> Option<String> {
    if r.is_empty() || r.len() > 9 {
        return None;
    }
    for (pos, k) in r.clone().enumerate() {
        let want_ident = pos % 2 == 0;
        match code.get(k).map(|t| &t.kind) {
            Some(TokenKind::Ident(w)) if want_ident && !crate::parser::is_keyword(w) => {}
            Some(TokenKind::Ident(w)) if want_ident && w == "self" => {}
            Some(TokenKind::Punct('.')) if !want_ident => {}
            _ => return None,
        }
    }
    if r.len().is_multiple_of(2) {
        return None;
    }
    Some(norm_text(code, r))
}

/// Whether `r` is the literal `0` / `0.0` / `0usize`-style zero.
fn is_zero_literal(code: &[Token], r: &Range<usize>) -> bool {
    if r.len() != 1 {
        return false;
    }
    match code.get(r.start).map(|t| &t.kind) {
        Some(TokenKind::Number(text)) => parse_number(text) == Interval::exact(0),
        _ => false,
    }
}

/// Canonical text of a token span, for keys and messages.
fn norm_text(code: &[Token], r: &Range<usize>) -> String {
    let mut out = String::new();
    for k in r.clone() {
        let piece = match code.get(k).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => s.as_str(),
            Some(TokenKind::Number(s)) => s.as_str(),
            Some(TokenKind::Literal) => "\"…\"",
            Some(TokenKind::Lifetime) => "'_",
            Some(TokenKind::Comment { .. }) | None => "",
            Some(TokenKind::Punct(c)) => {
                out.push(*c);
                continue;
            }
        };
        let need_gap = out
            .chars()
            .last()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
            && piece
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if need_gap {
            out.push(' ');
        }
        out.push_str(piece);
    }
    out
}

/// Clips long expression texts for messages.
fn clip(s: &str) -> String {
    if s.chars().count() <= 48 {
        return s.to_owned();
    }
    let head: String = s.chars().take(47).collect();
    format!("{head}…")
}

/// Whether whole-word `name` occurs in the normalized key `text`.
fn word_in(text: &str, name: &str) -> bool {
    text.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .any(|w| w == name)
}

/// Parses an integer literal (decimal/hex/octal/binary, `_`
/// separators, type suffixes). Float literals map off zero unless
/// they are exactly zero — only their zero-membership matters (d14).
fn parse_number(text: &str) -> Interval {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if crate::dataflow::is_float_number(text) {
        let mantissa = cleaned.split(['e', 'E', 'f']).next().unwrap_or("");
        let nonzero = mantissa.chars().any(|c| ('1'..='9').contains(&c));
        return if nonzero {
            Interval::exact(1)
        } else {
            Interval::exact(0)
        };
    }
    let (radix, digits) = if let Some(d) = cleaned.strip_prefix("0x") {
        (16, d)
    } else if let Some(d) = cleaned.strip_prefix("0o") {
        (8, d)
    } else if let Some(d) = cleaned.strip_prefix("0b") {
        (2, d)
    } else {
        (10, cleaned.as_str())
    };
    // Strip a type suffix (`u8`, `usize`, `i64`…).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    match i128::from_str_radix(&digits[..end], radix) {
        Ok(v) => Interval::exact(v),
        Err(_) => Interval::top(),
    }
}

/// Names that read as explicit unit conversions and therefore launder
/// a dimension for d15.
fn is_conversion_name(name: &str) -> bool {
    name.contains("_to_")
        || name.starts_with("to_")
        || name.starts_with("from_")
        || name.starts_with("as_")
        || name.contains("convert")
}

/// The inferred dimension of an identifier, from the catalog of
/// suffix/prefix markers. Suffixes win over prefixes so `wall_ms`
/// reads as milliseconds.
#[must_use]
pub fn dimension_of(ident: &str) -> Option<&'static str> {
    const SUFFIXES: &[(&str, &str)] = &[
        ("_ms", "milliseconds"),
        ("_days", "days"),
        ("_bytes", "bytes"),
        ("_gib", "gibibytes"),
        ("_ratio", "a ratio"),
    ];
    for (suf, dim) in SUFFIXES {
        if ident.ends_with(suf) && ident.len() > suf.len() {
            return Some(dim);
        }
    }
    const PREFIXES: &[(&str, &str)] = &[("wall_", "wall-clock time"), ("n_", "a count")];
    for (pre, dim) in PREFIXES {
        if ident.starts_with(pre) && ident.len() > pre.len() {
            return Some(dim);
        }
    }
    None
}

fn div_interval(lv: &Interval, rv: &Interval) -> Interval {
    if rv.contains_zero() {
        return Interval::top();
    }
    let ps = [
        lv.lo.checked_div(rv.lo),
        lv.lo.checked_div(rv.hi),
        lv.hi.checked_div(rv.lo),
        lv.hi.checked_div(rv.hi),
    ];
    let mut lo = i128::MAX;
    let mut hi = i128::MIN;
    for p in ps.into_iter().flatten() {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    if lo > hi {
        return Interval::top();
    }
    Interval::new(lo, hi)
}

fn rem_interval(lv: &Interval, rv: &Interval) -> Interval {
    if rv.contains_zero() || lv.lo < 0 {
        return Interval::top();
    }
    let m = rv.hi.abs().max(rv.lo.abs());
    Interval::new(0, m.saturating_sub(1).max(0))
}
