//! A minimal line/comment/string-aware Rust tokenizer.
//!
//! The build environment has no crates.io, so `syn` is off the table;
//! the rule catalog only needs identifier sequences with line numbers,
//! which a hand-rolled lexer provides. The lexer never fails: any byte
//! sequence produces a token stream (unterminated strings and comments
//! are closed at end of input), which is what the "tokenizer never
//! panics on arbitrary input" property test locks down.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Token payloads. Comments are kept (the suppression parser reads
/// them); string/char literals are kept opaquely so identifier rules
/// can never match inside them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `as`, `unwrap`, ...).
    Ident(String),
    /// Integer/float literal text (value is irrelevant to the rules).
    Number(String),
    /// `"..."`, `r#"..."#`, `b"..."` or char/byte-char literal.
    Literal,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// `// ...` or `/* ... */` comment, full text including markers.
    Comment {
        /// Raw comment text.
        text: String,
        /// Whether any non-comment token precedes it on its line.
        trailing: bool,
    },
    /// Any other single character (`{`, `.`, `!`, `:`, ...).
    Punct(char),
}

/// Tokenizes Rust-ish source. Total: consumes every byte, never panics.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
        line_has_code: false,
    }
    .run()
}

/// Whether a char can start an identifier.
fn ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
    line_has_code: bool,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.line_has_code = false;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        if !matches!(kind, TokenKind::Comment { .. }) {
            self.line_has_code = true;
        }
        self.out.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        // A shebang line (`#!...` not starting an inner attribute) is
        // consumed as a comment so its payload can never match a rule.
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            self.line_comment(1);
        }
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal(line);
                }
                'r' if self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string(line);
                }
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(ident_start) => {
                    // Raw identifier `r#type`: the `r#` escape is lexer
                    // noise; the token is the identifier proper.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string(line);
                }
                '\'' => self.quote(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    /// Whether `r`/`br` at the current position starts a raw string:
    /// zero or more `#` then `"`.
    fn raw_string_ahead(&self, from: usize) -> bool {
        let mut k = from;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        let trailing = self.line_has_code;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.push(Token {
            kind: TokenKind::Comment { text, trailing },
            line,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let trailing = self.line_has_code;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth = depth.saturating_sub(1);
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.push(Token {
            kind: TokenKind::Comment { text, trailing },
            line,
        });
    }

    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, line);
    }

    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Literal, line);
    }

    /// `'` starts either a char literal or a lifetime; disambiguate the
    /// way rustc does: `'x'` (or an escape) is a char, `'ident` not
    /// followed by a closing quote is a lifetime.
    fn quote(&mut self, line: u32) {
        self.bump(); // '
        match self.peek(0) {
            Some('\\') => {
                self.bump();
                self.bump(); // escaped char
                             // consume up to the closing quote (\u{...} etc.)
                while let Some(c) = self.peek(0) {
                    if c == '\'' || c == '\n' {
                        break;
                    }
                    self.bump();
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Literal, line);
            }
            Some(c) if c == '_' || c.is_alphabetic() => {
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Literal, line);
                } else {
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Lifetime, line);
                }
            }
            Some(_) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Literal, line);
            }
            None => self.push(TokenKind::Literal, line),
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident(text), line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Good enough for rule matching: glue digits, `_`, hex
            // letters and exponent chars into one opaque number token.
            // A `.` belongs to the number only as a decimal point
            // (digit follows): `0..n` ranges and `0.max(x)` method
            // calls end the token so their operands stay visible to
            // the dataflow layer.
            let decimal_point = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if c.is_ascii_alphanumeric() || c == '_' || decimal_point {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number(text), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<(String, u32)> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some((s, t.line)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_carry_line_numbers() {
        let got = idents("let a = 1;\nlet bb = a;\n");
        assert_eq!(
            got,
            vec![
                ("let".into(), 1),
                ("a".into(), 1),
                ("let".into(), 2),
                ("bb".into(), 2),
                ("a".into(), 2)
            ]
        );
    }

    #[test]
    fn strings_hide_identifiers() {
        let got = idents("let s = \"HashMap::unwrap()\";");
        assert_eq!(got, vec![("let".into(), 1), ("s".into(), 1)]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let got = idents("let s = r##\"unwrap \" inner\"##; after");
        assert_eq!(
            got,
            vec![("let".into(), 1), ("s".into(), 1), ("after".into(), 1)]
        );
    }

    #[test]
    fn comments_are_kept_with_trailing_flag() {
        let toks = tokenize("x(); // tail\n// alone\n");
        let comments: Vec<(bool, u32)> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Comment { trailing, .. } => Some((*trailing, t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(comments, vec![(true, 1), (false, 2)]);
    }

    #[test]
    fn nested_block_comments() {
        let got = idents("/* a /* b */ still comment */ code");
        assert_eq!(got, vec![("code".into(), 1)]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let got = idents("fn r#type(r#fn: u32) {}");
        assert_eq!(
            got,
            vec![
                ("fn".into(), 1),
                ("type".into(), 1),
                ("fn".into(), 1),
                ("u32".into(), 1)
            ]
        );
    }

    #[test]
    fn raw_identifier_does_not_break_raw_strings() {
        let got = idents("let s = r#\"unwrap\"#; r#match");
        assert_eq!(
            got,
            vec![("let".into(), 1), ("s".into(), 1), ("match".into(), 1)]
        );
    }

    #[test]
    fn shebang_line_is_a_comment() {
        let toks = tokenize("#!/usr/bin/env run-cargo-script\nfn f() {}\n");
        assert!(matches!(
            toks.first().map(|t| &t.kind),
            Some(TokenKind::Comment { .. })
        ));
        let got: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(got, vec![("fn".into(), 2), ("f".into(), 2)]);
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let toks = tokenize("#![warn(missing_docs)]\n");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Punct('#')));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident("warn".into())));
    }

    #[test]
    fn unterminated_input_is_fine() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'a", "b\"x", "'\\"] {
            let _ = tokenize(src); // must not panic
        }
    }
}
