//! Incremental scan cache (`--cache <path>`): per-file lexer facts
//! keyed on FNV-1a-64 content hashes, so re-linting an unchanged tree
//! skips the expensive per-file front half (tokenize → test-strip →
//! suppression extraction → lexical rules) and only re-derives the
//! cheap token-level passes.
//!
//! What is cached per file: the content hash, the parsed suppressions,
//! malformed-allow findings, lexical rule hits, and the comment-free
//! token stream. What is *never* cached: anything cross-file — the
//! call graph, reachability, and the value-range summaries are rebuilt
//! on every run, because an edit in one file changes what is reachable
//! (and therefore reportable) in every other file.
//!
//! The on-disk format reuses the workspace codec vocabulary
//! (`mfpa-bytes`) and its FNV-1a-64 seal; any damage — truncation, a
//! bit flip, a version bump, an unknown token tag — degrades to a cold
//! scan for every file, never to an error and never to stale facts.
//! The cache file is rewritten after any run that rescanned a file, so
//! a corrupt cache heals itself; a fully-warm run leaves it untouched.

use crate::callgraph::FileItems;
use crate::lexer::{Token, TokenKind};
use crate::rules::{RawFinding, Suppression};
use crate::{
    assemble_report, callgraph, dataflow, parser, scan_file, taint, FileScan, LintOptions,
    LintReport, SourceFile,
};
use mfpa_bytes::{fnv1a64, unseal, ByteReader, ByteWriter};
use std::collections::BTreeMap;
use std::path::Path;

/// Format magic (`MFLC`) and version; either mismatching discards the
/// whole cache. The lint schema version rides along so a rule-catalog
/// change also invalidates cached lexical hits.
const MAGIC: u32 = 0x4D46_4C43;
const VERSION: u32 = 1;

/// How a cached run went, for benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Files whose facts were reused from the cache.
    pub reused: usize,
    /// Files scanned cold (changed, new, or cache miss).
    pub rescanned: usize,
}

/// One file's persisted facts.
struct Entry {
    hash: u64,
    allows: Vec<Suppression>,
    malformed: Vec<RawFinding>,
    lexical: Vec<RawFinding>,
    code: Vec<Token>,
}

/// Lints `files` like [`crate::lint_files`], reusing per-file facts
/// from the cache at `path` for files whose content hash is unchanged,
/// and rewriting the cache afterwards. The cross-file half (call
/// graph, reachability, value-range interpretation) always runs, so a
/// warm run's report is identical to a cold run's by construction.
#[must_use]
pub fn lint_files_cached(
    files: &[SourceFile],
    opts: LintOptions,
    path: &Path,
) -> (LintReport, CacheStats) {
    let old = load_cache(path).unwrap_or_default();
    let workers = mfpa_par::Workers::from_config(0);
    let scans: Vec<(FileScan, bool)> = mfpa_par::ordered_map(files, workers, |_, sf| {
        let hash = fnv1a64(sf.text.as_bytes());
        match old.get(sf.label.as_str()) {
            Some(e) if e.hash == hash => (rebuild_scan(sf, e), true),
            _ => (scan_file(sf), false),
        }
    });
    let mut stats = CacheStats::default();
    for (_, reused) in &scans {
        if *reused {
            stats.reused += 1;
        } else {
            stats.rescanned += 1;
        }
    }
    let scans: Vec<FileScan> = scans.into_iter().map(|(s, _)| s).collect();
    // A fully-warm run would rewrite byte-identical entries (they are
    // pure functions of file content); skip the seal-and-write unless
    // something changed or stale entries linger.
    if stats.rescanned > 0 || old.len() != scans.len() {
        store_cache(path, files, &scans);
    }
    (assemble_report(&scans, opts), stats)
}

/// Rebuilds a [`FileScan`] from cached facts: the parse tree and the
/// per-function taint/dataflow facts are pure functions of the cached
/// token stream, so re-deriving them cannot go stale.
fn rebuild_scan(sf: &SourceFile, e: &Entry) -> FileScan {
    let code = e.code.clone();
    let parsed = parser::parse(&code);
    let facts = parsed
        .functions
        .iter()
        .map(|f| taint::analyze_fn(&code, f, &parsed.unordered_fields))
        .collect();
    let flows = parsed
        .functions
        .iter()
        .map(|f| dataflow::analyze_fn(&code, f))
        .collect();
    FileScan {
        crate_name: sf.crate_name.clone(),
        label: sf.label.clone(),
        allows: e.allows.clone(),
        malformed: e.malformed.clone(),
        lexical: e.lexical.clone(),
        items: FileItems {
            crate_name: sf.crate_name.clone(),
            label: sf.label.clone(),
            mod_path: callgraph::module_path_from_label(&sf.label),
            parsed,
            facts,
            flows,
            code,
        },
    }
}

/// Reads the cache file; any failure (missing file, bad seal, version
/// skew, decode error) yields `None` and the run goes fully cold.
fn load_cache(path: &Path) -> Option<BTreeMap<String, Entry>> {
    let raw = std::fs::read(path).ok()?;
    let payload = unseal(&raw).ok()?;
    let mut r = ByteReader::new(payload);
    if r.u32().ok()? != MAGIC || r.u32().ok()? != VERSION || r.u32().ok()? != crate::SCHEMA_VERSION
    {
        return None;
    }
    let n = r.len(1).ok()?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let label = read_str(&mut r).ok()?;
        let hash = r.u64().ok()?;
        let allows = read_vec(&mut r, read_allow).ok()?;
        let malformed = read_vec(&mut r, read_finding).ok()?;
        let lexical = read_vec(&mut r, read_finding).ok()?;
        let code = read_vec(&mut r, read_token).ok()?;
        out.insert(
            label,
            Entry {
                hash,
                allows,
                malformed,
                lexical,
                code,
            },
        );
    }
    if !r.done() {
        return None;
    }
    Some(out)
}

/// Writes the cache for this run's scans. Best-effort: an unwritable
/// path costs the next run its warm start, nothing else.
fn store_cache(path: &Path, files: &[SourceFile], scans: &[FileScan]) {
    let mut w = ByteWriter::new();
    w.u32(MAGIC);
    w.u32(VERSION);
    w.u32(crate::SCHEMA_VERSION);
    w.counter(scans.len().min(files.len()));
    for (sf, scan) in files.iter().zip(scans) {
        write_str(&mut w, &scan.label);
        w.u64(fnv1a64(sf.text.as_bytes()));
        w.counter(scan.allows.len());
        for a in &scan.allows {
            write_allow(&mut w, a);
        }
        w.counter(scan.malformed.len());
        for m in &scan.malformed {
            write_finding(&mut w, m);
        }
        w.counter(scan.lexical.len());
        for l in &scan.lexical {
            write_finding(&mut w, l);
        }
        w.counter(scan.items.code.len());
        for t in &scan.items.code {
            write_token(&mut w, t);
        }
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let _ = std::fs::write(path, w.into_sealed());
}

fn write_str(w: &mut ByteWriter, s: &str) {
    let bytes = s.as_bytes();
    w.counter(bytes.len());
    for &b in bytes {
        w.u8(b);
    }
}

fn read_str(r: &mut ByteReader<'_>) -> Result<String, String> {
    let n = r.len(1)?;
    let mut bytes = Vec::with_capacity(n);
    for _ in 0..n {
        bytes.push(r.u8()?);
    }
    String::from_utf8(bytes).map_err(|e| format!("cached string is not UTF-8: {e}"))
}

fn read_vec<T>(
    r: &mut ByteReader<'_>,
    item: impl Fn(&mut ByteReader<'_>) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let n = r.len(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(item(r)?);
    }
    Ok(out)
}

fn write_allow(w: &mut ByteWriter, a: &Suppression) {
    write_str(w, &a.rule);
    write_str(w, &a.reason);
    w.u32(a.line);
    w.flag(a.standalone);
}

fn read_allow(r: &mut ByteReader<'_>) -> Result<Suppression, String> {
    Ok(Suppression {
        rule: read_str(r)?,
        reason: read_str(r)?,
        line: r.u32()?,
        standalone: r.flag()?,
    })
}

fn write_finding(w: &mut ByteWriter, f: &RawFinding) {
    write_str(w, f.rule);
    w.u32(f.line);
    write_str(w, &f.message);
}

fn read_finding(r: &mut ByteReader<'_>) -> Result<RawFinding, String> {
    let rule = read_str(r)?;
    // Map back to the catalog's 'static id; the only non-catalog rule
    // findings carry is the meta id `lint`.
    let rule = crate::rules::rule_by_id(&rule).map_or("lint", |c| c.id);
    Ok(RawFinding {
        rule,
        line: r.u32()?,
        message: read_str(r)?,
    })
}

fn write_token(w: &mut ByteWriter, t: &Token) {
    match &t.kind {
        TokenKind::Ident(s) => {
            w.u8(0);
            w.u32(t.line);
            write_str(w, s);
        }
        TokenKind::Number(s) => {
            w.u8(1);
            w.u32(t.line);
            write_str(w, s);
        }
        TokenKind::Literal => {
            w.u8(2);
            w.u32(t.line);
        }
        TokenKind::Lifetime => {
            w.u8(3);
            w.u32(t.line);
        }
        TokenKind::Comment { text, trailing } => {
            // Comment-free streams never hit this arm, but the codec
            // stays total for arbitrary token input.
            w.u8(4);
            w.u32(t.line);
            w.flag(*trailing);
            write_str(w, text);
        }
        TokenKind::Punct(c) => {
            w.u8(5);
            w.u32(t.line);
            w.u32(*c as u32);
        }
    }
}

fn read_token(r: &mut ByteReader<'_>) -> Result<Token, String> {
    let tag = r.u8()?;
    let line = r.u32()?;
    let kind = match tag {
        0 => TokenKind::Ident(read_str(r)?),
        1 => TokenKind::Number(read_str(r)?),
        2 => TokenKind::Literal,
        3 => TokenKind::Lifetime,
        4 => {
            let trailing = r.flag()?;
            TokenKind::Comment {
                text: read_str(r)?,
                trailing,
            }
        }
        5 => {
            let cp = r.u32()?;
            let c = char::from_u32(cp).ok_or_else(|| format!("invalid punct code point {cp}"))?;
            TokenKind::Punct(c)
        }
        other => return Err(format!("unknown token tag {other}")),
    };
    Ok(Token { kind, line })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_codec_roundtrips_every_kind() {
        let src = "fn f<'a>(x: &'a u64) -> u64 { // trailing\n    x * 0x2B + \"s\".len() as u64\n}";
        let tokens = crate::lexer::tokenize(src);
        assert!(!tokens.is_empty());
        let mut w = ByteWriter::new();
        for t in &tokens {
            write_token(&mut w, t);
        }
        let sealed = w.into_sealed();
        let payload = unseal(&sealed).expect("seal verifies");
        let mut r = ByteReader::new(payload);
        let back: Vec<Token> = (0..tokens.len())
            .map(|_| read_token(&mut r).expect("token decodes"))
            .collect();
        assert!(r.done());
        assert_eq!(back, tokens);
    }

    #[test]
    fn unknown_token_tag_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u8(9);
        w.u32(1);
        let sealed = w.into_sealed();
        let mut r = ByteReader::new(unseal(&sealed).expect("seal verifies"));
        assert!(read_token(&mut r).is_err());
    }
}
