//! Intra-function fact extraction for the interprocedural rules.
//!
//! For every parsed function this pass computes `FnFacts`: the lines
//! where a determinism-relevant value is created and *escapes*. The
//! call graph then decides which facts matter — facts inside functions
//! reachable from a deterministic root become d7/d8/d9 findings with a
//! call chain; facts in unreachable functions fall back to the crate-
//! scoped d2/d3 rules.
//!
//! The analysis is deliberately conservative in the safe direction:
//!
//! - **unordered iteration** (d7/d2): a `HashMap`/`HashSet` local,
//!   parameter or `self` field is clean while only lookup methods
//!   touch it. Iterating it (`iter`, `keys`, `values`, `drain`, a
//!   `for` loop) is clean only when the chain provably cannot observe
//!   hash order: an order-insensitive terminal (`count`, `any`,
//!   `max_by_key`, …), a `collect::<BTree…>()`, or a collect whose
//!   binding is later sorted. `sum()` is *not* order-insensitive:
//!   float addition does not associate. Everything else escapes.
//! - **clock values** (d9/d3): `let t = Instant::now()` is clean when
//!   every later use of `t` is `t.elapsed()` assigned into a
//!   timing-named target (`*_secs`, `duration`, …). Any other use —
//!   passing `t` onward, binding `now()` into a non-timing slot —
//!   escapes.
//! - **entropy** (d9): `thread_rng`, `from_entropy`, `random()`,
//!   `thread::current`, `available_parallelism` are always sites; the
//!   contract requires explicit seeding and pinned thread counts.
//! - **panics** (d8/d5): `.unwrap()` / `.expect()` / `panic!`-family
//!   macros, mirroring the lexical d5 matcher token for token so a
//!   waiver written against d5 stays line-accurate when the finding is
//!   re-tagged d8. Slice indexing is collected separately (opt-in via
//!   `--index-checks`).

use crate::lexer::{Token, TokenKind};
use crate::parser::FnItem;
use std::collections::BTreeSet;
use std::ops::Range;

/// One fact site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of what escapes.
    pub what: String,
}

/// Determinism-relevant facts for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnFacts {
    /// Unordered-container iteration whose result can observe hash
    /// order (d7 when reachable, d2 otherwise).
    pub unordered_sites: Vec<Site>,
    /// Clock values escaping timing metadata (d9 / d3).
    pub clock_sites: Vec<Site>,
    /// Entropy sources (d9 when reachable; lexical d3 otherwise).
    pub entropy_sites: Vec<Site>,
    /// Panic sites, token-compatible with the lexical d5 matcher
    /// (d8 when reachable, d5 otherwise).
    pub panic_sites: Vec<Site>,
    /// Slice/array indexing sites (d8, only with `--index-checks`).
    pub index_sites: Vec<Site>,
}

/// Iterator-producing methods on unordered containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
    "into_values",
];

/// Terminal adapters that cannot observe element order. `sum` and
/// `fold` are deliberately absent: float accumulation is
/// order-sensitive.
const CLEAN_TERMINALS: &[&str] = &[
    "count",
    "len",
    "is_empty",
    "any",
    "all",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
];

/// Identifier segments that mark an assignment target as timing
/// metadata (diagnostics, not model input).
const TIMING_WORDS: &[&str] = &[
    "sec", "secs", "ms", "millis", "micros", "nanos", "time", "timing", "timings", "elapsed",
    "duration", "wall",
];

/// Always-flagged entropy sources.
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "available_parallelism"];

/// Computes the facts for one function over the same comment-free
/// token stream the parser consumed. Total: never panics.
pub fn analyze_fn(code: &[Token], f: &FnItem, unordered_fields: &BTreeSet<String>) -> FnFacts {
    let a = Analyzer {
        code,
        body: f.body.clone(),
        unordered_fields,
        unordered_locals: collect_unordered_locals(code, f),
    };
    let mut facts = FnFacts::default();
    a.unordered(&mut facts);
    a.clocks(&mut facts);
    a.entropy_and_panics(&mut facts);
    facts
}

struct Analyzer<'a> {
    code: &'a [Token],
    body: Range<usize>,
    unordered_fields: &'a BTreeSet<String>,
    unordered_locals: BTreeSet<String>,
}

fn tok_ident(code: &[Token], i: usize) -> Option<&str> {
    match code.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn tok_punct(code: &[Token], i: usize, c: char) -> bool {
    matches!(code.get(i).map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c)
}

fn tok_line(code: &[Token], i: usize) -> u32 {
    code.get(i).map(|t| t.line).unwrap_or(0)
}

fn is_unordered_type(word: &str) -> bool {
    word == "HashMap" || word == "HashSet"
}

/// Unordered locals: parameters and `let` bindings whose declared type
/// or initializer mentions `HashMap`/`HashSet`.
fn collect_unordered_locals(code: &[Token], f: &FnItem) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    // Parameters: `name: ...HashMap...` up to a depth-0 comma.
    let mut i = f.sig.start;
    while i < f.sig.end {
        if let Some(name) = tok_ident(code, i) {
            if tok_punct(code, i + 1, ':') && !tok_punct(code, i + 2, ':') {
                let mut depth = 0usize;
                let mut k = i + 2;
                let mut unordered = false;
                while k < f.sig.end {
                    match code.get(k).map(|t| &t.kind) {
                        Some(TokenKind::Punct('<' | '(' | '[')) => depth += 1,
                        // A depth-0 `)` closes the parameter list: stop so
                        // the return type cannot taint the last parameter.
                        Some(TokenKind::Punct(')')) if depth == 0 => break,
                        Some(TokenKind::Punct('>' | ')' | ']')) => depth = depth.saturating_sub(1),
                        Some(TokenKind::Punct(',')) if depth == 0 => break,
                        Some(TokenKind::Ident(s)) if is_unordered_type(s) => unordered = true,
                        _ => {}
                    }
                    k += 1;
                }
                if unordered {
                    out.insert(name.to_owned());
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    // Let bindings: `let [mut] name ... = ...HashMap...;`
    let mut i = f.body.start;
    while i < f.body.end {
        if tok_ident(code, i) == Some("let") {
            let mut j = i + 1;
            if tok_ident(code, j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = tok_ident(code, j) {
                let mut k = j + 1;
                let mut unordered = false;
                while k < f.body.end && !tok_punct(code, k, ';') {
                    if tok_ident(code, k).is_some_and(is_unordered_type) {
                        unordered = true;
                    }
                    k += 1;
                }
                if unordered {
                    out.insert(name.to_owned());
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

impl Analyzer<'_> {
    fn ident(&self, i: usize) -> Option<&str> {
        tok_ident(self.code, i)
    }

    fn punct(&self, i: usize, c: char) -> bool {
        tok_punct(self.code, i, c)
    }

    fn line(&self, i: usize) -> u32 {
        tok_line(self.code, i)
    }

    /// Flat statement span around token `i`: from the token after the
    /// previous `;`/`{`/`}` to the next one (exclusive).
    fn statement(&self, i: usize) -> Range<usize> {
        let boundary = |k: usize| {
            matches!(
                self.code.get(k).map(|t| &t.kind),
                Some(TokenKind::Punct(';' | '{' | '}'))
            )
        };
        let mut start = i;
        while start > self.body.start && !boundary(start - 1) {
            start -= 1;
        }
        let mut end = i;
        while end < self.body.end && !boundary(end) {
            end += 1;
        }
        start..end
    }

    /// Whether a statement assigns into a timing-named target: an `=`
    /// (excluding `==`/`<=`/`>=`/`!=`) whose left side names an
    /// identifier with a timing word among its snake segments.
    fn assigns_to_timing_target(&self, stmt: &Range<usize>) -> bool {
        for k in stmt.clone() {
            if !self.punct(k, '=') || self.punct(k + 1, '=') {
                continue;
            }
            if k > stmt.start {
                if let Some(TokenKind::Punct(p)) = self.code.get(k - 1).map(|t| &t.kind) {
                    if matches!(p, '=' | '<' | '>' | '!') {
                        continue;
                    }
                }
            }
            return (stmt.start..k).any(|j| {
                self.ident(j).is_some_and(|name| {
                    name.split('_')
                        .any(|seg| TIMING_WORDS.contains(&seg.to_ascii_lowercase().as_str()))
                })
            });
        }
        false
    }

    /// Index one past a balanced `( ... )` group opening at `open`.
    fn skip_parens(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.body.end {
            match self.code.get(i).map(|t| &t.kind) {
                Some(TokenKind::Punct('(')) => depth += 1,
                Some(TokenKind::Punct(')')) => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.body.end
    }

    /// Index one past a balanced `< ... >` group opening at `open`.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.body.end {
            match self.code.get(i).map(|t| &t.kind) {
                Some(TokenKind::Punct('<')) => depth += 1,
                Some(TokenKind::Punct('>')) => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.body.end
    }

    /// d7/d2: unordered-container iteration that can observe hash
    /// order.
    fn unordered(&self, facts: &mut FnFacts) {
        let mut i = self.body.start;
        while i < self.body.end {
            // `recv.iter()`-family chain heads.
            if let Some(m) = self.ident(i) {
                if ITER_METHODS.contains(&m) && i >= 1 && self.punct(i - 1, '.') {
                    if let Some(recv) = self.receiver_name(i) {
                        if self.is_unordered(&recv) {
                            if let Some(what) = self.chain_escapes(i, &recv, m) {
                                facts.unordered_sites.push(Site {
                                    line: self.line(i),
                                    what,
                                });
                            }
                        }
                    }
                }
                // Bare `for x in map` / `for x in &map { ... }`.
                if m == "for" {
                    if let Some((line, recv)) = self.bare_for_source(i) {
                        if self.is_unordered(&recv) {
                            facts.unordered_sites.push(Site {
                                line,
                                what: format!(
                                    "`for` loop iterates unordered `{recv}` directly; hash \
                                     order is observable"
                                ),
                            });
                        }
                    }
                }
            }
            i += 1;
        }
    }

    /// Whether `name` (a local, parameter, or `self.field` field name)
    /// is an unordered container.
    fn is_unordered(&self, name: &str) -> bool {
        if let Some(field) = name.strip_prefix("self.") {
            return self.unordered_fields.contains(field);
        }
        self.unordered_locals.contains(name)
    }

    /// The receiver of a method call at `at` (index of the method
    /// name, preceded by `.`): `map.iter()` → `map`, `self.field.
    /// iter()` → `self.field`. `None` for computed receivers
    /// (`f().iter()`), which this pass cannot type.
    fn receiver_name(&self, at: usize) -> Option<String> {
        if at < 2 {
            return None;
        }
        let first = self.ident(at - 2)?;
        if at >= 4 && self.punct(at - 3, '.') && self.ident(at - 4) == Some("self") {
            return Some(format!("self.{first}"));
        }
        // A plain identifier receiver must not itself be a field of
        // something else (`other.map.iter()`).
        if at >= 3 && self.punct(at - 3, '.') {
            return None;
        }
        Some(first.to_owned())
    }

    /// Whether the iterator chain headed by the method at `head` can
    /// observe hash order; returns the finding message when it can.
    fn chain_escapes(&self, head: usize, recv: &str, method: &str) -> Option<String> {
        // Walk `.m1(..).m2::<T>(..)...`, recording method names.
        let mut chain: Vec<(String, usize)> = vec![(method.to_owned(), head)];
        let mut i = head + 1;
        loop {
            if self.punct(i, ':') && self.punct(i + 1, ':') && self.punct(i + 2, '<') {
                i = self.skip_angles(i + 2);
            }
            if self.punct(i, '(') {
                i = self.skip_parens(i);
            }
            if self.punct(i, '.') {
                if let Some(m) = self.ident(i + 1) {
                    chain.push((m.to_owned(), i + 1));
                    i += 2;
                    continue;
                }
            }
            break;
        }
        let (terminal, _) = chain.last().cloned().unwrap_or_default();
        if CLEAN_TERMINALS.contains(&terminal.as_str()) {
            return None;
        }
        if let Some(&(_, at)) = chain.iter().find(|(m, _)| m == "collect") {
            // `collect::<BTreeMap<..>>()` restores a total order.
            if self.punct(at + 1, ':') && self.punct(at + 2, ':') && self.punct(at + 3, '<') {
                let close = self.skip_angles(at + 3);
                for k in at + 4..close {
                    if self
                        .ident(k)
                        .is_some_and(|s| s == "BTreeMap" || s == "BTreeSet")
                    {
                        return None;
                    }
                }
            }
            // `let v = ...collect(); ... v.sort*()` re-establishes order.
            let stmt = self.statement(head);
            if self.ident(stmt.start) == Some("let") {
                let mut j = stmt.start + 1;
                if self.ident(j) == Some("mut") {
                    j += 1;
                }
                if let Some(bound) = self.ident(j) {
                    let sorted_later = (stmt.end..self.body.end).any(|k| {
                        self.ident(k) == Some(bound)
                            && self.punct(k + 1, '.')
                            && self.ident(k + 2).is_some_and(|m| m.starts_with("sort"))
                    });
                    if sorted_later {
                        return None;
                    }
                }
            }
        }
        Some(format!(
            "`{recv}.{method}()` iterates an unordered container and `{terminal}` can \
             observe hash order; use BTreeMap/BTreeSet or collect-and-sort"
        ))
    }

    /// For a `for` keyword at `at`, the loop source when it is a bare
    /// identifier or `self.field` (chained sources are handled by the
    /// method-chain matcher).
    fn bare_for_source(&self, at: usize) -> Option<(u32, String)> {
        let mut i = at + 1;
        let mut guard = 0usize;
        while i < self.body.end && self.ident(i) != Some("in") {
            i += 1;
            guard += 1;
            if guard > 64 {
                return None; // malformed; give up on this `for`
            }
        }
        let mut j = i + 1;
        while self.punct(j, '&') || self.ident(j) == Some("mut") {
            j += 1;
        }
        let name = self.ident(j)?;
        let (name, after) = if name == "self" && self.punct(j + 1, '.') {
            let field = self.ident(j + 2)?;
            (format!("self.{field}"), j + 3)
        } else {
            (name.to_owned(), j + 1)
        };
        // Only the bare form: the next token must open the loop body.
        if self.punct(after, '{') {
            Some((self.line(j), name))
        } else {
            None
        }
    }

    /// d9/d3: clock values escaping timing metadata.
    fn clocks(&self, facts: &mut FnFacts) {
        let mut clock_vars: Vec<(String, usize)> = Vec::new();
        let mut i = self.body.start;
        while i < self.body.end {
            let word = match self.ident(i) {
                Some(w) if w == "Instant" || w == "SystemTime" => w,
                _ => {
                    i += 1;
                    continue;
                }
            };
            let stmt = self.statement(i);
            // `let [mut] t = Instant::now();` binds a clock var.
            if self.ident(stmt.start) == Some("let") {
                let mut j = stmt.start + 1;
                if self.ident(j) == Some("mut") {
                    j += 1;
                }
                if let (Some(name), true) = (self.ident(j), self.punct(j + 1, '=')) {
                    let bare_now = j + 2 == i
                        && self.punct(i + 1, ':')
                        && self.punct(i + 2, ':')
                        && self.ident(i + 3) == Some("now")
                        && self.punct(i + 4, '(')
                        && self.punct(i + 5, ')')
                        && i + 6 == stmt.end;
                    if bare_now {
                        clock_vars.push((name.to_owned(), stmt.end));
                        i = stmt.end;
                        continue;
                    }
                }
            }
            // Any other appearance must land in timing metadata.
            if !self.assigns_to_timing_target(&stmt) {
                facts.clock_sites.push(Site {
                    line: self.line(i),
                    what: format!(
                        "`{word}` value escapes outside timing metadata; deterministic \
                         paths must not observe wall-clock readings"
                    ),
                });
            }
            i = stmt.end.max(i + 1);
        }
        // Every later use of a clock var must be `t.elapsed()` assigned
        // into a timing-named target.
        for (name, from) in clock_vars {
            let mut i = from;
            while i < self.body.end {
                if self.ident(i) == Some(&name)
                    && !self.punct(i.wrapping_sub(1), '.')
                    && !self.punct(i + 1, ':')
                {
                    let conforming = self.punct(i + 1, '.')
                        && self.ident(i + 2) == Some("elapsed")
                        && self.assigns_to_timing_target(&self.statement(i));
                    if !conforming {
                        facts.clock_sites.push(Site {
                            line: self.line(i),
                            what: format!(
                                "clock value `{name}` escapes beyond `elapsed()`-into-\
                                 timing-metadata; deterministic paths must not observe it"
                            ),
                        });
                    }
                }
                i += 1;
            }
        }
    }

    /// d9 entropy sources, d8/d5 panic sites, and indexing.
    fn entropy_and_panics(&self, facts: &mut FnFacts) {
        for i in self.body.clone() {
            let line = self.line(i);
            match self.code.get(i).map(|t| &t.kind) {
                Some(TokenKind::Ident(word)) => match word.as_str() {
                    w if ENTROPY_IDENTS.contains(&w) => facts.entropy_sites.push(Site {
                        line,
                        what: format!(
                            "entropy source {w} on a deterministic path; seed/pin explicitly"
                        ),
                    }),
                    "random" if self.punct(i + 1, '(') => facts.entropy_sites.push(Site {
                        line,
                        what: "entropy source random() on a deterministic path; seed explicitly"
                            .into(),
                    }),
                    "current"
                        if i >= 3
                            && self.punct(i - 1, ':')
                            && self.punct(i - 2, ':')
                            && self.ident(i - 3) == Some("thread") =>
                    {
                        facts.entropy_sites.push(Site {
                            line,
                            what: "thread::current() identity on a deterministic path".into(),
                        })
                    }
                    "unwrap" | "expect"
                        if i >= 1 && self.punct(i - 1, '.') && self.punct(i + 1, '(') =>
                    {
                        facts.panic_sites.push(Site {
                            line,
                            what: format!(
                                "{word}() on a path reachable from a deterministic root; \
                                 return a structured error instead"
                            ),
                        })
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if self.punct(i + 1, '!') =>
                    {
                        facts.panic_sites.push(Site {
                            line,
                            what: format!(
                                "{word}! on a path reachable from a deterministic root; \
                                 return a structured error instead"
                            ),
                        })
                    }
                    _ => {}
                },
                // Indexing: `ident[...]`, `)[...]`, `][...]`.
                Some(TokenKind::Punct('[')) if i > self.body.start => {
                    let indexing = match self.code.get(i - 1).map(|t| &t.kind) {
                        Some(TokenKind::Ident(w)) => !crate::parser::is_keyword(w),
                        Some(TokenKind::Punct(')' | ']')) => true,
                        _ => false,
                    };
                    if indexing {
                        facts.index_sites.push(Site {
                            line,
                            what: "slice/array indexing can panic; use get() on a path \
                                   reachable from a deterministic root"
                                .into(),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser;

    fn facts(src: &str) -> FnFacts {
        let code: Vec<Token> = tokenize(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment { .. }))
            .collect();
        let parsed = parser::parse(&code);
        let f = parsed.functions.first().expect("fixture has a fn");
        analyze_fn(&code, f, &parsed.unordered_fields)
    }

    #[test]
    fn lookup_only_maps_are_clean() {
        let src = "
            fn f(cache: &HashMap<String, u32>) -> u32 {
                let mut local = HashMap::new();
                local.insert(1, 2);
                *cache.get(\"k\").unwrap_or(&0) + local.len() as u32
            }
        ";
        assert!(facts(src).unordered_sites.is_empty());
    }

    #[test]
    fn return_type_does_not_taint_the_last_parameter() {
        let src = "
            fn f(days: &[i64]) -> HashMap<i64, usize> {
                days.iter().map(|&d| (d, 1)).collect()
            }
        ";
        assert!(facts(src).unordered_sites.is_empty());
    }

    #[test]
    fn escaping_iteration_is_a_site() {
        let src = "
            fn f(m: &HashMap<String, f64>) -> Vec<f64> {
                m.values().cloned().collect()
            }
        ";
        let got = facts(src);
        assert_eq!(got.unordered_sites.len(), 1);
        assert_eq!(got.unordered_sites[0].line, 3);
    }

    #[test]
    fn order_insensitive_terminals_are_clean() {
        let src = "
            fn f(m: &HashMap<u32, f64>) -> bool {
                let n = m.values().count();
                m.iter().any(|(_, v)| *v > 0.5) && n > 0
            }
        ";
        assert!(facts(src).unordered_sites.is_empty());
    }

    #[test]
    fn collect_into_btree_or_sort_is_clean() {
        let src = "
            fn f(m: &HashMap<String, f64>) -> Vec<String> {
                let ordered = m.keys().cloned().collect::<BTreeSet<String>>();
                let mut v: Vec<String> = m.keys().cloned().collect();
                v.sort();
                v
            }
        ";
        assert!(facts(src).unordered_sites.is_empty());
    }

    #[test]
    fn sum_is_not_order_insensitive() {
        let src = "
            fn f(m: &HashMap<u32, f64>) -> f64 {
                m.values().sum()
            }
        ";
        assert_eq!(facts(src).unordered_sites.len(), 1);
    }

    #[test]
    fn bare_for_loop_over_map_is_a_site() {
        let src = "
            fn f(m: HashMap<u32, u32>) {
                for kv in &m {
                    emit(kv);
                }
            }
        ";
        assert_eq!(facts(src).unordered_sites.len(), 1);
    }

    #[test]
    fn self_field_iteration_uses_struct_facts() {
        let src = "
            struct Encoder { forward: HashMap<String, usize> }
            impl Encoder {
                fn dump(&self) -> Vec<String> {
                    self.forward.keys().cloned().collect()
                }
            }
        ";
        assert_eq!(facts(src).unordered_sites.len(), 1);
    }

    #[test]
    fn elapsed_into_timing_metadata_is_clean() {
        let src = "
            fn f(out: &mut Report) {
                let ts = Instant::now();
                work();
                out.sanitize_secs = ts.elapsed().as_secs_f64();
            }
        ";
        assert!(facts(src).clock_sites.is_empty());
    }

    #[test]
    fn clock_value_escaping_is_a_site() {
        let src = "
            fn f() -> u64 {
                let ts = Instant::now();
                seed_from(ts)
            }
        ";
        let got = facts(src);
        assert_eq!(got.clock_sites.len(), 1);
        assert_eq!(got.clock_sites[0].line, 4);
    }

    #[test]
    fn unbound_clock_use_checks_its_statement_target() {
        let clean = "
            fn f(out: &mut Report) {
                out.wall_ms = SystemTime::now().duration_since(EPOCH).as_millis();
            }
        ";
        assert!(facts(clean).clock_sites.is_empty());
        let dirty = "
            fn f() -> u64 {
                let seed = SystemTime::now().subsec_nanos();
                seed
            }
        ";
        assert_eq!(facts(dirty).clock_sites.len(), 1);
    }

    #[test]
    fn entropy_and_panic_sites_are_collected() {
        let src = "
            fn f(v: &[u32]) -> u32 {
                let mut rng = thread_rng();
                let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                let first = v.first().unwrap();
                if v.is_empty() { panic!(\"empty\"); }
                v[0] + first + n as u32
            }
        ";
        let got = facts(src);
        assert_eq!(got.entropy_sites.len(), 2);
        assert_eq!(got.panic_sites.len(), 2);
        assert_eq!(got.index_sites.len(), 1);
    }
}
