//! CLI for the workspace determinism-and-robustness lint pass.
//!
//! ```text
//! mfpa-lint [--root PATH] [--format human|json|sarif] [--report PATH]
//!           [--cache PATH] [--index-checks] [--verbose] [--fix]
//! ```
//!
//! Exit codes (CI semantics): `0` clean, `1` unsuppressed violations,
//! `2` usage or I/O error.
//!
//! A plain run is always a dry run: unused `allow(...)` comments are
//! reported as `lint` findings and nothing is touched. `--fix` deletes
//! those lines in place (the one mechanical case) and reports the
//! post-fix state.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    format: Format,
    report: Option<PathBuf>,
    cache: Option<PathBuf>,
    index_checks: bool,
    verbose: bool,
    fix: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Human,
        report: None,
        cache: None,
        index_checks: false,
        verbose: false,
        fix: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--root" => args.root = Some(PathBuf::from(grab("--root")?)),
            "--format" => {
                args.format = match grab("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--report" => args.report = Some(PathBuf::from(grab("--report")?)),
            "--cache" => args.cache = Some(PathBuf::from(grab("--cache")?)),
            "--index-checks" => args.index_checks = true,
            "--verbose" => args.verbose = true,
            "--fix" => args.fix = true,
            "--help" | "-h" => {
                println!(
                    "mfpa-lint [--root PATH] [--format human|json|sarif] [--report PATH] \
                     [--cache PATH] [--index-checks] [--verbose] [--fix]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            mfpa_lint::find_workspace_root(&cwd)
                .ok_or("no workspace Cargo.toml above the current directory (use --root)")?
        }
    };
    let opts = mfpa_lint::LintOptions {
        index_checks: args.index_checks,
    };
    let scan = |root: &std::path::Path| -> Result<mfpa_lint::LintReport, String> {
        match &args.cache {
            Some(cache_path) => {
                let files = mfpa_lint::collect_workspace(root).map_err(|e| e.to_string())?;
                let (report, stats) = mfpa_lint::cache::lint_files_cached(&files, opts, cache_path);
                if args.verbose {
                    eprintln!(
                        "mfpa-lint: cache {} reused, {} rescanned",
                        stats.reused, stats.rescanned
                    );
                }
                Ok(report)
            }
            None => mfpa_lint::lint_workspace(root, opts).map_err(|e| e.to_string()),
        }
    };
    let mut report = scan(&root)?;
    if args.fix {
        let targets = mfpa_lint::unused_allow_lines(&report);
        let mut removed = 0usize;
        for (label, lines) in &targets {
            let path = root.join(label);
            let before = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let after = mfpa_lint::strip_unused_allow_lines(&before, lines);
            if after != before {
                std::fs::write(&path, &after)
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
                removed += lines.len();
            }
        }
        if removed > 0 {
            eprintln!(
                "mfpa-lint: --fix removed {removed} unused allow(s) across {} file(s)",
                targets.len()
            );
            // Report the post-fix state, not the stale pre-fix one.
            report = scan(&root)?;
        }
    }
    match args.format {
        Format::Human => {
            if args.verbose {
                for f in report.suppressed() {
                    println!("{f}");
                }
            }
            print!("{}", report.render_human());
        }
        Format::Json => println!("{}", report.to_json()),
        Format::Sarif => print!(
            "{}",
            mfpa_lint::pretty_json(&mfpa_lint::sarif::to_sarif(&report))
        ),
    }
    if let Some(path) = args.report {
        let snapshot = mfpa_lint::pretty_json(&report.snapshot_json());
        std::fs::write(&path, snapshot).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("mfpa-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
